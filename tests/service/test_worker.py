"""Worker tests: cache-tier resolution and the never-cached trusted path.

The central claim (docs/SERVICE.md § Trust): the disk tier stores only
*untrusted* artifacts, and the kernel re-derives every verdict, so a
poisoned cache entry can cause at most a spurious rejection — never a
false acceptance.  ``TestKernelIsNeverCached`` exercises that directly by
planting a checksum-valid but semantically wrong certificate through the
legitimate store API (the strongest position an attacker with cache-dir
write access holds).
"""

from __future__ import annotations

import pytest

from repro.pipeline.cache import source_digest
from repro.service import worker
from repro.service.diskcache import DiskCache, options_digest

SOURCE = """
field val: Int

method get(self: Ref) returns (r: Int)
  requires acc(self.val)
  ensures acc(self.val) && r == self.val
{
  r := self.val
}
"""

OTHER_SOURCE = """
field num: Int

method put(self: Ref)
  requires acc(self.num)
  ensures acc(self.num) && self.num == 7
{
  self.num := 7
}
"""


@pytest.fixture
def disk_worker(tmp_path):
    """A worker configured with a disk tier; state is reset afterwards."""
    worker.configure({"cache_dir": str(tmp_path)})
    yield tmp_path
    worker.configure({})


def certify(source: str = SOURCE, **extra):
    return worker.handle_job({"action": "certify", "source": source, **extra})


class TestCacheTiers:
    def test_first_request_misses_then_memory_hits(self, disk_worker):
        first = certify()
        assert first["ok"] and first["cache"] == "miss"
        second = certify()
        assert second["ok"] and second["cache"] == "memory"

    def test_restart_serves_from_disk_then_promotes(self, disk_worker):
        assert certify()["ok"]
        # Reconfigure = simulated restart: fresh memory tier, same disk.
        worker.configure({"cache_dir": str(disk_worker)})
        warm = certify()
        assert warm["ok"] and warm["cache"] == "disk"
        # The disk hit skipped the untrusted stages but ran the kernel.
        assert "check" in warm["stage_seconds"]
        assert "reparse" in warm["stage_seconds"]
        assert "translate" not in warm["stage_seconds"]
        promoted = certify()
        assert promoted["ok"] and promoted["cache"] == "memory"

    def test_translate_serves_boogie_from_disk(self, disk_worker):
        assert certify()["ok"]
        worker.configure({"cache_dir": str(disk_worker)})
        response = worker.handle_job({"action": "translate", "source": SOURCE})
        assert response["ok"] and response["cache"] == "disk"
        assert "procedure" in response["boogie"]

    def test_without_disk_tier_restart_is_cold(self, tmp_path):
        worker.configure({})
        try:
            assert certify()["cache"] == "miss"
            assert certify()["cache"] == "memory"
            worker.configure({})
            assert certify()["cache"] == "miss"
        finally:
            worker.configure({})


class TestKernelIsNeverCached:
    def _poison(self, cache_dir, artifacts):
        """Write a checksum-valid envelope under SOURCE's key."""
        disk = DiskCache(cache_dir)
        key = (source_digest(SOURCE), options_digest(None))
        disk.store(key, artifacts)

    def test_swapped_certificate_is_rejected_not_accepted(self, disk_worker):
        """A valid-for-another-program certificate must fail the kernel."""
        mine = certify(include_boogie=True)
        other = certify(OTHER_SOURCE, include_certificate=True)
        assert mine["ok"] and other["ok"]
        self._poison(disk_worker, {
            "boogie_text": mine["boogie"],
            "certificate_text": other["certificate"],
        })
        worker.configure({"cache_dir": str(disk_worker)})  # fresh memory
        poisoned = certify()
        assert poisoned["cache"] == "disk"
        assert poisoned["ok"] is False
        assert poisoned["rejected"] is True
        assert poisoned["error"]

    def test_poisoned_entry_is_quarantined_then_recomputed(self, disk_worker):
        mine = certify(include_boogie=True)
        other = certify(OTHER_SOURCE, include_certificate=True)
        self._poison(disk_worker, {
            "boogie_text": mine["boogie"],
            "certificate_text": other["certificate"],
        })
        worker.configure({"cache_dir": str(disk_worker)})
        assert certify()["ok"] is False
        # The rejection quarantined the whole-file entry; the next request
        # re-certifies successfully.  The still-valid per-unit envelopes
        # (written by the original good run) serve it from the unit tier —
        # and the kernel re-derived the verdict fresh either way.
        recovered = certify()
        assert recovered["ok"] is True
        assert recovered["cache"] == "disk"
        assert "check" in recovered["stage_seconds"]
        disk = DiskCache(disk_worker)
        assert list(disk.quarantine_dir.glob("*.bad"))

    def test_poisoned_unit_envelope_is_rejected_quarantined_recomputed(
        self, disk_worker
    ):
        """A unit envelope with a swapped certificate block can never be
        accepted: the kernel re-checks every unit it serves."""
        from repro.pipeline import run_pipeline, unit_keys as pipeline_unit_keys

        assert certify()["ok"]
        other = certify(OTHER_SOURCE, include_certificate=True)
        assert other["ok"]
        # Overwrite SOURCE's unit envelope with OTHER's certificate block
        # (checksum-valid envelope, semantically wrong content).
        ctx = run_pipeline(SOURCE, upto="units")
        keys = pipeline_unit_keys(ctx.units, ctx.program, ctx.options)
        (unit_key,) = keys.values()
        disk = DiskCache(disk_worker)
        original = disk.load_unit(unit_key)
        assert original is not None
        other_block = "\n".join(
            other["certificate"].splitlines()[1:-1]
        )
        disk.store_unit(unit_key, "get", {
            "procedure_text": original.procedure_text,
            "certificate_block": other_block,
        })
        worker.configure({"cache_dir": str(disk_worker)})  # fresh memory
        # Make the whole-file entry miss so the unit tier is consulted.
        disk.quarantine((source_digest(SOURCE), options_digest(None)))
        poisoned = certify()
        assert poisoned["ok"] is False and poisoned["rejected"] is True
        # The rejection quarantined the served envelope; the next request
        # recomputes from scratch and re-certifies successfully.
        recovered = certify()
        assert recovered["ok"] is True
        assert recovered["cache"] == "miss"


class TestValidation:
    def setup_method(self):
        worker.configure({})

    def teardown_method(self):
        worker.configure({})

    def test_unknown_action_is_a_400(self):
        response = worker.handle_job({"action": "mine-bitcoin", "source": SOURCE})
        assert response["status"] == 400 and not response["ok"]

    def test_missing_source_is_a_400(self):
        response = worker.handle_job({"action": "certify"})
        assert response["status"] == 400
        response = worker.handle_job({"action": "certify", "source": "   "})
        assert response["status"] == 400

    def test_oversized_source_is_a_413(self):
        worker.configure({"max_source_bytes": 64})
        response = certify("x" * 65)
        assert response["status"] == 413
        assert "64" in response["error"]

    def test_unknown_option_is_a_400_naming_known_fields(self):
        response = worker.handle_job({
            "action": "certify", "source": SOURCE,
            "options": {"turbo_mode": True},
        })
        assert response["status"] == 400
        assert "turbo_mode" in response["error"]

    def test_parse_failure_is_a_422_with_the_stage(self):
        response = certify("method oops(")
        assert response["status"] == 422
        assert response["error_stage"] == "parse"
        assert response["error"]

    def test_options_from_dict_round_trips_known_fields(self):
        options = worker.options_from_dict(None)
        assert options == worker.options_from_dict({})
        field = next(iter(type(options).__dataclass_fields__))
        flipped = worker.options_from_dict({field: not getattr(options, field)})
        assert getattr(flipped, field) is not getattr(options, field)
