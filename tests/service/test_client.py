"""Client connection-management tests against hostile tiny servers.

The production failure mode: a keep-alive client sits idle past the
server's idle timeout, the server closes the socket, and the client's
next request lands on the corpse — ``BadStatusLine('')`` / ECONNRESET.
That says nothing about server health, so :class:`ServiceClient` must
reconnect and retry exactly once — and only when the connection was
*reused*; a failure on a fresh connection surfaces immediately.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import List

import pytest

from repro.service.client import ServiceClient, ServiceError


class OneShotServer:
    """Accepts connections; serves ``limit`` requests per connection, then
    silently closes the socket *without* a ``Connection: close`` header —
    exactly how an idle-timeout reaper looks to the client."""

    def __init__(self, per_connection_limit: int = 1, respond: bool = True):
        self.limit = per_connection_limit
        self.respond = respond
        self.accepts: List[int] = []
        self.requests_served = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.accepts.append(len(self.accepts))
            with conn:
                for _ in range(self.limit):
                    if not self.respond:
                        break  # connection dropped with no response at all
                    try:
                        if not self._serve_one(conn):
                            break
                    except OSError:
                        break

    def _serve_one(self, conn: socket.socket) -> bool:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return False
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(rest) < length:
            rest += conn.recv(65536)
        body = json.dumps({"ok": True, "served": self.requests_served}).encode()
        conn.sendall(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        self.requests_served += 1
        return True

    def close(self) -> None:
        self._stop.set()
        self._sock.close()


class TestStaleKeepAliveRetry:
    def test_request_on_a_server_closed_connection_retries_once(self):
        """Request 1 succeeds; the server then closes the socket without
        telling the client.  Request 2 hits the stale connection, and the
        client must transparently reconnect — two accepts, two answers,
        zero client-visible errors."""
        server = OneShotServer(per_connection_limit=1)
        try:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                first = client.healthz()
                assert first["ok"] is True
                second = client.healthz()
                assert second["ok"] is True
        finally:
            server.close()
        assert len(server.accepts) == 2
        assert server.requests_served == 2

    def test_a_healthy_keepalive_connection_is_not_reconnected(self):
        server = OneShotServer(per_connection_limit=100)
        try:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                for _ in range(3):
                    assert client.healthz()["ok"] is True
        finally:
            server.close()
        assert len(server.accepts) == 1

    def test_failure_on_a_fresh_connection_is_not_retried(self):
        """A server that accepts and drops without answering: the first
        (fresh) connection's failure must surface immediately — exactly
        one accept, no blind second attempt."""
        server = OneShotServer(respond=True)
        server.respond = False
        try:
            with ServiceClient(port=server.port, timeout=5.0) as client:
                with pytest.raises(ServiceError):
                    client.healthz()
        finally:
            server.close()
        assert len(server.accepts) == 1

    def test_connect_refused_surfaces_as_service_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with ServiceClient(port=dead_port, timeout=2.0) as client:
            with pytest.raises(ServiceError):
                client.healthz()
