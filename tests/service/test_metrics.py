"""Metrics registry tests: histograms, counters, gauges, Prometheus text."""

from __future__ import annotations

import pytest

from repro.service.metrics import DEFAULT_BUCKETS, Histogram, ServiceMetrics


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.005)   # <= 0.01
        histogram.observe(0.05)    # <= 0.1
        histogram.observe(0.5)     # <= 1.0
        histogram.observe(7.0)     # overflow -> only +Inf
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(7.555)

    def test_cumulative_ends_with_inf_and_total(self):
        histogram = Histogram(buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(99.0)
        cumulative = histogram.cumulative()
        assert cumulative[-1] == (float("inf"), 3)
        assert [c for _, c in cumulative] == [1, 2, 3]

    def test_boundary_value_counts_in_its_bucket(self):
        """Prometheus buckets are `le` (inclusive upper bounds)."""
        histogram = Histogram(buckets=(0.01, 0.1))
        histogram.observe(0.01)
        assert histogram.counts == [1, 0]

    def test_default_buckets_are_sorted_and_nonempty(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestServiceMetrics:
    def test_counters_accumulate_per_label_set(self):
        metrics = ServiceMetrics()
        metrics.inc("repro_requests_total", labels={"endpoint": "/v1/certify"})
        metrics.inc("repro_requests_total", labels={"endpoint": "/v1/certify"})
        metrics.inc("repro_requests_total", labels={"endpoint": "/healthz"})
        assert metrics.counter_value(
            "repro_requests_total", {"endpoint": "/v1/certify"}
        ) == 2
        assert metrics.counter_total("repro_requests_total") == 3

    def test_render_emits_prometheus_counter_lines(self):
        metrics = ServiceMetrics()
        metrics.inc("repro_requests_total", labels={"endpoint": "/v1/certify"},
                    help="Requests by endpoint.")
        text = metrics.render()
        assert "# HELP repro_requests_total Requests by endpoint." in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="/v1/certify"} 1' in text

    def test_render_emits_histogram_buckets_sum_count(self):
        metrics = ServiceMetrics()
        metrics.record_stage_seconds({"check": 0.012, "translate": 0.002})
        text = metrics.render()
        assert "# TYPE repro_stage_seconds histogram" in text
        assert 'repro_stage_seconds_bucket{le="+Inf",stage="check"} 1' in text
        assert 'repro_stage_seconds_sum{stage="check"}' in text
        assert 'repro_stage_seconds_count{stage="translate"} 1' in text

    def test_render_samples_gauges_at_render_time(self):
        metrics = ServiceMetrics()
        depth = {"value": 3.0}
        metrics.register_gauge("repro_queue_depth", lambda: depth["value"],
                               help="Backlog.")
        assert "repro_queue_depth 3.0" in metrics.render()
        depth["value"] = 7.0
        assert "repro_queue_depth 7.0" in metrics.render()

    def test_gauge_exceptions_never_break_render(self):
        metrics = ServiceMetrics()

        def broken() -> float:
            raise RuntimeError("sampling failed")

        metrics.register_gauge("repro_bad_gauge", broken)
        assert "repro_bad_gauge nan" in metrics.render()

    def test_worker_counters_roll_into_one_family(self):
        metrics = ServiceMetrics()
        metrics.record_worker_counters({"cache.hit": 2, "cache.miss": 1})
        metrics.record_worker_counters({"cache.hit": 1})
        assert metrics.counter_value(
            "repro_pipeline_counter_total", {"counter": "cache.hit"}
        ) == 3
        text = metrics.render()
        assert 'repro_pipeline_counter_total{counter="cache.miss"} 1' in text
