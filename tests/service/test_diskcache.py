"""Disk-cache tier tests: round-trips, corruption, LRU, option digests."""

from __future__ import annotations

import json
import os

import pytest

from repro.frontend import TranslationOptions
from repro.service.diskcache import (
    DiskCache,
    FORMAT_VERSION,
    options_digest,
)

KEY = ("a" * 64, "b" * 64)
OTHER = ("c" * 64, "d" * 64)
ARTIFACTS = {"boogie_text": "procedure p() {}", "certificate_text": "(cert)"}


class TestRoundTrip:
    def test_store_then_load_returns_artifacts(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(KEY, ARTIFACTS)
        entry = cache.load(KEY)
        assert entry is not None
        assert entry.artifacts == ARTIFACTS
        assert entry.boogie_text == ARTIFACTS["boogie_text"]
        assert entry.certificate_text == ARTIFACTS["certificate_text"]
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_entries_survive_a_simulated_restart(self, tmp_path):
        """A new DiskCache over the same root sees the old entries."""
        DiskCache(tmp_path).store(KEY, ARTIFACTS)
        reopened = DiskCache(tmp_path)
        entry = reopened.load(KEY)
        assert entry is not None
        assert entry.artifacts == ARTIFACTS
        assert reopened.stats.hits == 1

    def test_missing_entry_is_a_counted_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.load(KEY) is None
        assert cache.stats.misses == 1

    def test_store_refuses_empty_artifacts(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path).store(KEY, {})

    def test_len_and_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(KEY, ARTIFACTS)
        cache.store(OTHER, ARTIFACTS)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.load(KEY) is None


class TestCorruption:
    def test_truncated_json_is_quarantined_and_missed(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.store(KEY, ARTIFACTS)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(KEY) is None
        assert cache.stats.quarantined == 1
        # The bad entry has been moved aside, not deleted.
        assert not path.exists()
        assert list(cache.quarantine_dir.glob("*.bad"))

    def test_bitflipped_artifact_fails_the_digest_check(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.store(KEY, ARTIFACTS)
        envelope = json.loads(path.read_text())
        envelope["artifacts"]["certificate_text"] = "(tampered)"
        path.write_text(json.dumps(envelope))
        assert cache.load(KEY) is None
        assert cache.stats.quarantined == 1
        reasons = list(cache.quarantine_dir.glob("*.reason"))
        assert reasons and "digest mismatch" in reasons[0].read_text()

    def test_wrong_format_version_is_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.store(KEY, ARTIFACTS)
        envelope = json.loads(path.read_text())
        envelope["format"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(envelope))
        assert cache.load(KEY) is None
        assert cache.stats.quarantined == 1

    def test_entry_under_the_wrong_filename_is_rejected(self, tmp_path):
        """A valid envelope copied onto another key's path must not load."""
        cache = DiskCache(tmp_path)
        path = cache.store(KEY, ARTIFACTS)
        os.replace(path, cache.path_for(OTHER))
        assert cache.load(OTHER) is None
        assert cache.stats.quarantined == 1

    def test_quarantine_recovers_after_recompute(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.store(KEY, ARTIFACTS)
        path.write_text("not json at all")
        assert cache.load(KEY) is None
        cache.store(KEY, ARTIFACTS)  # the service recomputes + overwrites
        entry = cache.load(KEY)
        assert entry is not None and entry.artifacts == ARTIFACTS


class TestEviction:
    def _key(self, i: int):
        # Vary the *leading* hex chars: path_for truncates digests, so a
        # suffix-only difference would alias every key to one filename.
        return ((f"{i:x}" * 64)[:64], "0" * 64)

    def test_lru_eviction_keeps_total_under_the_bound(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=2_000)
        for i in range(8):
            cache.store(self._key(i), {"boogie_text": "x" * 300})
        assert cache.total_bytes() <= 2_000
        assert len(cache) < 8
        assert cache.stats.evictions > 0

    def test_recently_loaded_entries_are_kept(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=3_000)
        for i in range(4):
            path = cache.store(self._key(i), {"boogie_text": "x" * 300})
            # Make mtimes strictly increasing without sleeping.
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        # Touch entry 0 so it becomes the most recent.
        entry_zero = cache.path_for(self._key(0))
        os.utime(entry_zero, (2_000_000, 2_000_000))
        cache.max_bytes = 1  # force eviction down to (almost) nothing
        cache._evict_to_bound()
        survivors = cache._entry_paths()
        # Entry 0 is evicted last: if anything survives it is entry 0.
        assert all(p == entry_zero for p in survivors)

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_bytes=0)


class TestOptionsDigest:
    def test_default_options_digest_is_stable(self):
        assert options_digest(None) == options_digest(TranslationOptions())

    def test_differing_options_get_distinct_digests(self):
        defaults = TranslationOptions()
        field = next(iter(TranslationOptions.__dataclass_fields__))
        flipped = TranslationOptions(**{field: not getattr(defaults, field)})
        assert options_digest(defaults) != options_digest(flipped)
