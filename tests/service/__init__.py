"""Tests for the certification service (repro.service)."""
