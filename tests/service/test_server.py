"""End-to-end service tests over a real socket.

A :class:`BackgroundServer` binds an ephemeral port (``port=0``) with the
in-process thread pool, and the stdlib :class:`ServiceClient` drives the
HTTP API exactly as ``repro loadgen`` does.  The headline scenarios:

* the quickstart program certifies twice — the second response is a
  cache hit and both verdicts agree;
* ``/metrics`` exposes the queue-depth gauge, the cache-hit-rate gauge,
  and per-stage latency histograms;
* a full admission queue answers 429 with a ``Retry-After`` hint;
* a certificate mutated on disk (via the legitimate store API, i.e. a
  checksum-valid envelope) is *rejected* by a restarted server — the
  trusted path re-derives verdicts instead of trusting the cache.
"""

from __future__ import annotations

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.pipeline.cache import source_digest
from repro.service.client import ServiceClient, ServiceThrottled
from repro.service.diskcache import DiskCache, options_digest
from repro.service.server import BackgroundServer, ServerConfig


def _quickstart_source() -> str:
    """The exact program examples/quickstart.py walks through."""
    path = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    spec = importlib.util.spec_from_file_location("repro_quickstart", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


QUICKSTART = _quickstart_source()

SMALL = """
field val: Int

method get(self: Ref) returns (r: Int)
  requires acc(self.val)
  ensures acc(self.val) && r == self.val
{
  r := self.val
}
"""


def _config(tmp_path=None, **overrides) -> ServerConfig:
    return ServerConfig(
        port=0,
        use_threads=True,
        jobs=1,
        cache_dir=str(tmp_path) if tmp_path else None,
        quiet=True,
        **overrides,
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    with BackgroundServer(_config(cache_dir)) as background:
        client = ServiceClient(port=background.port)
        assert client.wait_ready(timeout=15.0)
        client.close()
        yield background


@pytest.fixture
def client(server):
    with ServiceClient(port=server.port) as c:
        yield c


class TestCertifyEndpoint:
    def test_quickstart_program_certifies_twice_second_is_a_hit(self, client):
        first = client.certify(QUICKSTART)
        assert first["_status"] == 200
        assert first["ok"] is True
        assert first["statement"]
        assert set(first["methods"]) == {"deposit", "audit", "client"}
        second = client.certify(QUICKSTART)
        assert second["ok"] is True
        assert second["cache"] in ("memory", "disk")
        assert second["statement"] == first["statement"]

    def test_artifacts_are_returned_on_request(self, client):
        response = client.certify(
            SMALL, include_certificate=True, include_boogie=True
        )
        assert response["ok"]
        assert response["certificate"].startswith("CERTIFICATE-V1")
        assert "procedure" in response["boogie"]

    def test_parse_failure_maps_to_422_with_stage(self, client):
        response = client.certify("method oops(")
        assert response["_status"] == 422
        assert response["error_stage"] == "parse"
        assert response["error"]

    def test_translate_endpoint_returns_boogie(self, client):
        response = client.translate(SMALL)
        assert response["ok"] and "procedure" in response["boogie"]

    def test_batch_preserves_order_and_reports_width(self, client):
        response = client.batch([
            {"source": SMALL},
            {"source": "method oops(", "action": "certify"},
            {"source": QUICKSTART},
        ])
        assert response["_status"] == 200
        assert response["count"] == 3
        results = response["results"]
        assert results[0]["ok"] is True
        assert results[1]["ok"] is False and results[1].get("error_stage") == "parse"
        assert results[2]["ok"] is True


class TestOperationalEndpoints:
    def test_healthz_reports_pool_admission_and_cache(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["pool"]["mode"] == "thread"
        assert health["admission"]["limit"] >= 1
        assert "hit_rate" in health["cache"]
        assert health["uptime_seconds"] >= 0

    def test_metrics_expose_gauges_and_stage_histograms(self, client):
        client.certify(SMALL)  # ensure at least one pipeline run recorded
        client.certify(SMALL)  # and at least one cache hit
        text = client.metrics()
        # Gauges the issue names explicitly.
        assert "repro_queue_depth" in text
        assert "repro_in_flight" in text
        assert "repro_cache_hit_rate" in text
        # Per-stage latency histograms.
        assert 'repro_stage_seconds_bucket{le="+Inf",stage="check"}' in text
        assert "repro_stage_seconds_sum" in text
        assert "repro_stage_seconds_count" in text
        # Request counters by endpoint.
        assert 'endpoint="/v1/certify"' in text

    def test_unknown_route_is_404_and_bad_method_is_405(self, client):
        assert client._request("GET", "/nope")["_status"] == 404
        assert client._request("GET", "/v1/certify")["_status"] == 405

    def test_malformed_json_body_is_400(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("POST", "/v1/certify", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            response.read()
            assert response.status == 400
        finally:
            conn.close()


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        """With an admission bound of 1, concurrent cold requests must
        see 429 + Retry-After while one request holds the slot."""
        sources = [
            SMALL.replace("get", f"get_{i}").replace("val", f"val_{i}")
            for i in range(8)
        ]
        throttled, succeeded = [], []
        lock = threading.Lock()

        with BackgroundServer(_config(None, queue_limit=1)) as background:
            probe = ServiceClient(port=background.port)
            assert probe.wait_ready(timeout=15.0)
            probe.close()

            def fire(source: str) -> None:
                with ServiceClient(port=background.port) as c:
                    try:
                        response = c.certify(source)
                        with lock:
                            succeeded.append(response)
                    except ServiceThrottled as error:
                        with lock:
                            throttled.append(error)

            threads = [
                threading.Thread(target=fire, args=(s,)) for s in sources
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert succeeded, "at least one request should win the slot"
        assert throttled, "a full queue must push back with 429"
        assert all(e.status in (429, 503) for e in throttled)
        assert all((e.retry_after or 0) >= 1 for e in throttled)


class TestDrainAnnouncement:
    def test_healthz_answers_503_draining_with_retry_after(self, tmp_path):
        """During a SIGTERM drain the listener stays open for
        ``drain_notice`` seconds and ``/healthz`` answers 503
        ``draining`` + ``Retry-After`` — the window a cluster router's
        probe needs to de-route the node *before* connects start
        failing."""
        import time

        config = _config(tmp_path, drain_notice=1.5)
        with BackgroundServer(config) as background:
            with ServiceClient(port=background.port) as c:
                assert c.wait_ready(timeout=15.0)
                background._loop.call_soon_threadsafe(
                    background.service.request_shutdown, 0
                )
                throttled = None
                deadline = time.time() + 10.0
                while time.time() < deadline and throttled is None:
                    try:
                        c.healthz()
                        time.sleep(0.02)
                    except ServiceThrottled as error:
                        throttled = error
                assert throttled is not None, "drain was never announced"
                assert throttled.status == 503
                assert throttled.retry_after == 1.0
                assert "draining" in str(throttled)


class TestWorkerCrashAtNodeLevel:
    def test_killed_worker_is_a_clean_500_and_the_node_recovers(self, tmp_path):
        """SIGKILL the pool worker mid-job: the in-flight request gets an
        honest 500 (never a hang, never a bogus verdict), the pool
        recycles, and the next request succeeds."""
        import os
        import signal
        import time

        slow = "\n".join(
            f"method m{i}(x: Int) returns (y: Int)\n"
            f"  requires x > {i}\n  ensures y > {i}\n"
            f"{{\n  y := x + {i} + 1\n}}"
            for i in range(240)
        )
        config = ServerConfig(
            port=0, use_threads=False, jobs=1,
            cache_dir=str(tmp_path), quiet=True,
        )
        with BackgroundServer(config) as background:
            with ServiceClient(port=background.port) as c:
                assert c.wait_ready(timeout=15.0)
                warm = c.certify(SMALL)
                assert warm["ok"]
                pool = background.service.pool
                if pool.mode != "process":  # pragma: no cover
                    pytest.skip("no process pool available on this platform")
                victims = pool.worker_pids()
                assert victims

                outcome = {}

                def fire():
                    with ServiceClient(port=background.port) as inner:
                        outcome["response"] = inner.certify(slow)

                thread = threading.Thread(target=fire)
                thread.start()
                deadline = time.time() + 10.0
                while pool.stats.submitted < 2 and time.time() < deadline:
                    time.sleep(0.01)
                time.sleep(0.05)
                for pid in victims:
                    os.kill(pid, signal.SIGKILL)
                thread.join(timeout=30.0)

                crashed = outcome["response"]
                assert crashed["_status"] == 500
                assert crashed["ok"] is False
                assert "crash" in crashed["error"]
                assert "repro_worker_crashes_total" in c.metrics()
                # The pool recycled: the same request now succeeds.
                recovered = c.certify(slow)
                assert recovered["_status"] == 200
                assert recovered["ok"] is True


class TestKernelIsNeverCachedEndToEnd:
    def test_mutated_disk_certificate_is_rejected_by_a_new_server(self, tmp_path):
        """Mutate the cached certificate on disk between two server runs;
        the restarted service must reject, quarantine, and recover."""
        config = _config(tmp_path)
        with BackgroundServer(config) as background:
            with ServiceClient(port=background.port) as c:
                assert c.wait_ready(timeout=15.0)
                mine = c.certify(SMALL, include_boogie=True)
                other = c.certify(QUICKSTART, include_certificate=True)
                assert mine["ok"] and other["ok"]

        # Attacker model: write access to the cache dir, including the
        # ability to produce checksum-valid envelopes via the store API.
        disk = DiskCache(tmp_path)
        key = (source_digest(SMALL), options_digest(None))
        disk.store(key, {
            "boogie_text": mine["boogie"],
            "certificate_text": other["certificate"],
        })

        with BackgroundServer(config) as background:
            with ServiceClient(port=background.port) as c:
                assert c.wait_ready(timeout=15.0)
                poisoned = c.certify(SMALL)
                assert poisoned["_status"] == 200
                assert poisoned["ok"] is False
                assert poisoned["rejected"] is True
                assert poisoned["cache"] == "disk"
                # The poisoned whole-file entry was quarantined: the next
                # request re-certifies successfully — served from the
                # still-valid per-unit envelopes of the original good run,
                # with the kernel verdict re-derived fresh either way.
                recovered = c.certify(SMALL)
                assert recovered["ok"] is True
                assert recovered["cache"] == "disk"
        assert list(DiskCache(tmp_path).quarantine_dir.glob("*.bad"))
