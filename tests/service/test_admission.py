"""Admission-control tests: limits, backpressure accounting, drain."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.admission import AdmissionController, RequestLimits


class TestRequestLimits:
    def test_small_source_is_accepted(self):
        assert RequestLimits().check_source("method m() {}") is None

    def test_oversized_source_is_rejected_with_sizes(self):
        limits = RequestLimits(max_source_bytes=16)
        message = limits.check_source("x" * 17)
        assert message is not None
        assert "17" in message and "16" in message

    def test_source_size_is_measured_in_utf8_bytes(self):
        limits = RequestLimits(max_source_bytes=4)
        assert limits.check_source("éé") is None  # 4 bytes
        assert limits.check_source("ééé") is not None  # 6 bytes

    def test_batch_width_limits(self):
        limits = RequestLimits(max_batch=2)
        assert limits.check_batch(1) is None
        assert limits.check_batch(2) is None
        assert limits.check_batch(3) is not None
        assert limits.check_batch(0) is not None

    def test_oracle_states_are_clamped(self):
        limits = RequestLimits(max_oracle_states=8)
        assert limits.clamp_oracle_states(None) == 0
        assert limits.clamp_oracle_states(0) == 0
        assert limits.clamp_oracle_states(-3) == 0
        assert limits.clamp_oracle_states(5) == 5
        assert limits.clamp_oracle_states(500) == 8


class TestAdmission:
    def test_admits_until_the_bound_then_refuses(self):
        controller = AdmissionController(max_pending=2)
        assert controller.try_admit()
        assert controller.try_admit()
        assert not controller.try_admit()
        controller.release()
        assert controller.try_admit()

    def test_weighted_admission_covers_batches(self):
        controller = AdmissionController(max_pending=4)
        assert controller.try_admit(weight=3)
        assert not controller.try_admit(weight=2)
        assert controller.try_admit(weight=1)
        controller.release(weight=4)
        assert controller.pending == 0

    def test_queue_depth_is_pending_minus_in_flight(self):
        controller = AdmissionController(max_pending=8)
        controller.try_admit(weight=3)
        controller.enter_flight()
        assert controller.pending == 3
        assert controller.in_flight == 1
        assert controller.queue_depth == 2
        controller.exit_flight()
        assert controller.queue_depth == 3

    def test_release_never_goes_negative(self):
        controller = AdmissionController(max_pending=2)
        controller.release()
        assert controller.pending == 0
        controller.exit_flight()
        assert controller.in_flight == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)


class TestDrain:
    def test_draining_refuses_all_newcomers(self):
        controller = AdmissionController(max_pending=8)
        controller.begin_drain()
        assert controller.draining
        assert not controller.try_admit()

    def test_wait_idle_returns_once_work_finishes(self):
        async def scenario() -> bool:
            controller = AdmissionController(max_pending=8)
            controller.try_admit()
            controller.begin_drain()

            async def finish() -> None:
                await asyncio.sleep(0.01)
                controller.release()

            task = asyncio.ensure_future(finish())
            done = await controller.wait_idle(timeout=5.0)
            await task
            return done

        assert asyncio.run(scenario())

    def test_wait_idle_times_out_when_work_is_stuck(self):
        async def scenario() -> bool:
            controller = AdmissionController(max_pending=8)
            controller.try_admit()
            return await controller.wait_idle(timeout=0.01)

        assert not asyncio.run(scenario())

    def test_idle_drain_is_immediately_idle(self):
        async def scenario() -> bool:
            controller = AdmissionController(max_pending=8)
            controller.begin_drain()
            return await controller.wait_idle(timeout=0.5)

        assert asyncio.run(scenario())
