"""Worker-pool tests: thread mode, timeouts, recycling, async submit.

Thread mode is forced throughout (``use_threads=True``) so the tests run
in-process: single-core CI boxes get identical semantics, and
monkeypatching ``handle_job`` works because the thread fallback resolves
the target through the module attribute at submit time.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.service import worker as worker_module
from repro.service.pool import PoolConfig, PoolTimeout, WorkerPool

SOURCE = """
field val: Int

method get(self: Ref) returns (r: Int)
  requires acc(self.val)
  ensures acc(self.val) && r == self.val
{
  r := self.val
}
"""


def thread_pool(**overrides) -> WorkerPool:
    config = PoolConfig(jobs=1, use_threads=True, **overrides)
    return WorkerPool(config)


class TestLifecycle:
    def test_starts_lazily_and_reports_thread_mode(self):
        pool = thread_pool()
        assert pool.mode == "down"
        try:
            result = pool.submit_sync({"action": "certify", "source": SOURCE})
            assert result["ok"]
            assert pool.mode == "thread"
        finally:
            pool.shutdown()
        assert pool.mode == "down"

    def test_submit_sync_counts_submissions_and_completions(self):
        pool = thread_pool()
        try:
            pool.submit_sync({"action": "certify", "source": SOURCE})
            pool.submit_sync({"action": "certify", "source": SOURCE})
        finally:
            pool.shutdown()
        assert pool.stats.submitted == 2
        assert pool.stats.completed == 2

    def test_jobs_resolution_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkerPool(PoolConfig(jobs=-1, use_threads=True))


class TestAsyncSubmit:
    def test_submit_returns_the_worker_response(self):
        pool = thread_pool()

        async def scenario():
            return await pool.submit({"action": "certify", "source": SOURCE})

        try:
            result = asyncio.run(scenario())
        finally:
            pool.shutdown()
        assert result["ok"] and result["action"] == "certify"

    def test_failures_are_counted_from_the_ok_flag(self):
        pool = thread_pool()

        async def scenario():
            return await pool.submit({"action": "certify", "source": "method oops("})

        try:
            result = asyncio.run(scenario())
        finally:
            pool.shutdown()
        assert not result["ok"]
        assert pool.stats.failures == 1

    def test_deadline_expiry_raises_pool_timeout(self, monkeypatch):
        def slow_job(payload):
            time.sleep(0.5)
            return {"ok": True}

        monkeypatch.setattr(worker_module, "handle_job", slow_job)
        pool = thread_pool(request_timeout=0.05)

        async def scenario():
            await pool.submit({"action": "certify", "source": SOURCE})

        try:
            with pytest.raises(PoolTimeout):
                asyncio.run(scenario())
        finally:
            pool.shutdown()
        assert pool.stats.timeouts == 1

    def test_per_call_timeout_overrides_the_config(self, monkeypatch):
        def slow_job(payload):
            time.sleep(0.3)
            return {"ok": True}

        monkeypatch.setattr(worker_module, "handle_job", slow_job)
        pool = thread_pool(request_timeout=0.01)

        async def scenario():
            return await pool.submit({"source": SOURCE}, timeout=5.0)

        try:
            result = asyncio.run(scenario())
        finally:
            pool.shutdown()
        assert result["ok"]

    def test_cancellation_is_propagated_and_counted(self, monkeypatch):
        def slow_job(payload):
            time.sleep(0.3)
            return {"ok": True}

        monkeypatch.setattr(worker_module, "handle_job", slow_job)
        pool = thread_pool()

        async def scenario():
            task = asyncio.ensure_future(pool.submit({"source": SOURCE}))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        try:
            asyncio.run(scenario())
        finally:
            pool.shutdown()
        assert pool.stats.cancelled == 1


class TestWorkerCrash:
    """Process-pool fault injection: SIGKILL a live worker mid-job.

    The contract (shared with the cluster router's failover): the killed
    job fails *loudly* with :class:`WorkerCrash`, the pool replaces the
    broken executor with a fresh one of the same mode, and the very next
    submission succeeds.
    """

    @staticmethod
    def _slow_source(methods: int = 240) -> str:
        return "\n".join(
            f"method m{i}(x: Int) returns (y: Int)\n"
            f"  requires x > {i}\n  ensures y > {i}\n"
            f"{{\n  y := x + {i} + 1\n}}"
            for i in range(methods)
        )

    def test_sigkill_mid_job_fails_loudly_then_the_pool_recovers(self):
        import os
        import signal
        import threading

        from repro.service.pool import WorkerCrash

        pool = WorkerPool(PoolConfig(jobs=1, use_threads=False,
                                     request_timeout=60.0))
        try:
            warm = pool.submit_sync({"action": "certify", "source": SOURCE})
            if pool.mode != "process":  # pragma: no cover - exotic CI boxes
                pytest.skip("no process pool available on this platform")
            assert warm["ok"]
            victims = pool.worker_pids()
            assert victims, "a live process pool must report worker PIDs"

            outcome = {}

            def fire():
                try:
                    outcome["result"] = pool.submit_sync(
                        {"action": "certify", "source": self._slow_source()}
                    )
                except WorkerCrash as error:
                    outcome["crash"] = error

            thread = threading.Thread(target=fire)
            thread.start()
            # Let the job reach the worker, then kill it mid-certification.
            deadline = time.time() + 10.0
            while pool.stats.submitted < 2 and time.time() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)
            for pid in victims:
                os.kill(pid, signal.SIGKILL)
            thread.join(timeout=30.0)

            assert "crash" in outcome, f"expected WorkerCrash, got {outcome}"
            assert pool.stats.crashes >= 1
            assert pool.stats.recycles >= 1
            # Fresh executor, same mode, next job just works.
            assert pool.mode == "process"
            assert pool.worker_pids() != victims or not pool.worker_pids()
            recovered = pool.submit_sync({"action": "certify", "source": SOURCE})
            assert recovered["ok"] is True
        finally:
            pool.shutdown(wait=False)


class TestRecycling:
    def test_executor_is_replaced_after_the_recycle_limit(self, monkeypatch):
        monkeypatch.setattr(worker_module, "handle_job", lambda payload: {"ok": True})
        pool = thread_pool(recycle_after=2)
        try:
            executors = set()
            for _ in range(5):
                pool.submit_sync({"source": SOURCE})
                executors.add(id(pool._executor))
        finally:
            pool.shutdown()
        assert pool.stats.recycles == 2  # after jobs 3 and 5
        assert len(executors) >= 2

    def test_recycling_disabled_when_limit_is_zero(self, monkeypatch):
        monkeypatch.setattr(worker_module, "handle_job", lambda payload: {"ok": True})
        pool = thread_pool(recycle_after=0)
        try:
            for _ in range(5):
                pool.submit_sync({"source": SOURCE})
        finally:
            pool.shutdown()
        assert pool.stats.recycles == 0
