"""Health-state machine and live probing: eject, readmit, drain notice.

The pure state-machine paths run without any IO; the probe paths run
against a real :class:`BackgroundServer` so the ``/healthz`` contract
(200 ok / 503 draining / connection refused) is exercised end to end.
"""

from __future__ import annotations

import asyncio

from repro.cluster.health import DOWN, DRAINING, UP, HealthMonitor
from repro.cluster.upstream import Upstream
from repro.service.server import BackgroundServer, ServerConfig


def _monitor(names, **overrides) -> HealthMonitor:
    upstreams = {name: Upstream(name, "127.0.0.1", 1) for name in names}
    return HealthMonitor(upstreams, **overrides)


class TestStateMachine:
    def test_nodes_start_up_and_routable(self):
        monitor = _monitor(["a", "b"])
        assert monitor.routable() == ["a", "b"]
        assert monitor.is_routable("a")

    def test_ejection_after_consecutive_failures(self):
        monitor = _monitor(["a"], eject_after=2)
        monitor.note_failure("a")
        assert monitor.state("a") == UP  # one strike is not enough
        monitor.note_failure("a")
        assert monitor.state("a") == DOWN
        assert monitor.routable() == []

    def test_success_resets_the_failure_streak(self):
        monitor = _monitor(["a"], eject_after=2)
        monitor.note_failure("a")
        monitor.note_success("a")
        monitor.note_failure("a")
        assert monitor.state("a") == UP

    def test_readmission_after_consecutive_successes(self):
        monitor = _monitor(["a"], eject_after=1, readmit_after=2)
        monitor.note_failure("a")
        assert monitor.state("a") == DOWN
        monitor.note_success("a")
        assert monitor.state("a") == DOWN  # one probe is not enough
        monitor.note_success("a")
        assert monitor.state("a") == UP

    def test_draining_is_not_routable_but_not_down(self):
        monitor = _monitor(["a", "b"])
        monitor.note_draining("a")
        assert monitor.state("a") == DRAINING
        assert monitor.routable() == ["b"]

    def test_fresh_ok_after_draining_means_restart_and_readmits(self):
        monitor = _monitor(["a"])
        monitor.note_draining("a")
        monitor.note_success("a")
        assert monitor.state("a") == UP

    def test_transitions_are_recorded_in_the_snapshot(self):
        monitor = _monitor(["a"])
        monitor.note_failure("a")
        monitor.note_success("a")
        snapshot = monitor.snapshot()
        assert snapshot["a"]["transitions"] == ["up->down", "down->up"]


class TestLiveProbing:
    def test_probe_tracks_a_real_server_through_death(self, tmp_path):
        config = ServerConfig(
            port=0, use_threads=True, jobs=1, quiet=True,
            cache_dir=str(tmp_path),
        )
        background = BackgroundServer(config).start()
        try:
            upstream = Upstream("n1", "127.0.0.1", background.port)
            monitor = HealthMonitor({"n1": upstream}, eject_after=1)
            state = asyncio.run(monitor.probe_node("n1"))
            assert state == UP
        finally:
            background.stop()
        # The socket is gone: the very next probe ejects the node.
        state = asyncio.run(monitor.probe_node("n1"))
        assert state == DOWN
        assert monitor.health["n1"].probes == 2
