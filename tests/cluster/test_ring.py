"""Consistent-hash ring properties: determinism, spread, minimal remap.

The ring is *advisory* placement — nothing here affects verdicts — but
its promises still matter operationally: the same key must always map to
the same owners (cache affinity), replicas must be distinct nodes, and
removing a node must remap only the keys that node owned.
"""

from __future__ import annotations

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, routing_key
from repro.frontend.translator import TranslationOptions

NODES = ["c1", "c2", "c3", "c4"]
KEYS = [f"key-{i}" for i in range(400)]


class TestOwners:
    def test_owner_selection_is_deterministic_across_instances(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))
        for key in KEYS[:50]:
            assert a.owners(key, 2) == b.owners(key, 2)

    def test_replicas_are_distinct_nodes(self):
        ring = HashRing(NODES)
        for key in KEYS[:50]:
            owners = ring.owners(key, 3)
            assert len(owners) == len(set(owners)) == 3

    def test_replication_is_capped_at_the_node_count(self):
        ring = HashRing(["a", "b"])
        assert len(ring.owners("k", 5)) == 2

    def test_empty_ring_owns_nothing(self):
        ring = HashRing([])
        assert ring.owners("k", 2) == []
        with pytest.raises(LookupError):
            ring.primary("k")

    def test_primary_is_the_first_owner(self):
        ring = HashRing(NODES)
        for key in KEYS[:20]:
            assert ring.primary(key) == ring.owners(key, 2)[0]


class TestRemap:
    def test_removing_a_node_only_remaps_its_own_keys(self):
        ring = HashRing(NODES)
        before = {key: ring.primary(key) for key in KEYS}
        ring.remove("c3")
        for key in KEYS:
            if before[key] != "c3":
                assert ring.primary(key) == before[key]
            else:
                assert ring.primary(key) != "c3"

    def test_adding_a_node_back_restores_the_original_placement(self):
        ring = HashRing(NODES)
        before = {key: ring.primary(key) for key in KEYS}
        ring.remove("c2")
        ring.add("c2")
        assert {key: ring.primary(key) for key in KEYS} == before

    def test_removal_remaps_roughly_one_nth_of_keys(self):
        ring = HashRing(NODES)
        before = {key: ring.primary(key) for key in KEYS}
        ring.remove("c1")
        moved = sum(
            1 for key in KEYS if ring.primary(key) != before[key]
        )
        owned = sum(1 for owner in before.values() if owner == "c1")
        assert moved == owned  # minimal disruption: only c1's keys move


class TestShares:
    def test_shares_sum_to_one_and_are_roughly_even(self):
        ring = HashRing(NODES, vnodes=DEFAULT_VNODES)
        shares = ring.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for node in NODES:
            # 64 vnodes keeps the spread within a loose band.
            assert 0.05 < shares[node] < 0.55


class TestRoutingKey:
    def test_same_source_and_options_share_a_key(self):
        assert routing_key("method m() {}", None) == routing_key(
            "method m() {}", None
        )

    def test_source_changes_the_key(self):
        assert routing_key("method a() {}", None) != routing_key(
            "method b() {}", None
        )

    def test_options_change_the_key(self):
        source = "method m() {}"
        assert routing_key(source, None) != routing_key(
            source, TranslationOptions(wd_checks_at_calls=True)
        )
