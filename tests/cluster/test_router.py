"""End-to-end router tests over real sockets.

Two in-process :class:`BackgroundServer` nodes sit behind a
:class:`BackgroundRouter`; the plain :class:`ServiceClient` talks to the
router exactly as it would to a single node — the cluster layer is
transparent to clients apart from the ``node`` / ``trace_id`` stamps.

The headline scenarios mirror the clustering contract in
docs/SERVICE.md: cache affinity through consistent hashing, failover on
node loss (with ``repro_cluster_failovers_total`` counting it), drain
visibility before the socket closes, and a clean 502 only when *no*
node can serve.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.ring import routing_key
from repro.cluster.router import BackgroundRouter, RouterConfig, parse_node_spec
from repro.service.client import ServiceClient, ServiceError, ServiceThrottled
from repro.service.server import BackgroundServer, ServerConfig

SMALL = """
field val: Int

method get(self: Ref) returns (r: Int)
  requires acc(self.val)
  ensures acc(self.val) && r == self.val
{
  r := self.val
}
"""


def _node_config(tmp_path=None, **overrides) -> ServerConfig:
    return ServerConfig(
        port=0,
        use_threads=True,
        jobs=1,
        cache_dir=str(tmp_path) if tmp_path else None,
        quiet=True,
        **overrides,
    )


def _router_config(nodes, **overrides) -> RouterConfig:
    defaults = dict(
        port=0,
        nodes=[f"n{i + 1}=127.0.0.1:{n.port}" for i, n in enumerate(nodes)],
        replication=2,
        probe_interval=0.05,
        # Hedging off by default so placement assertions are exact; the
        # dedicated hedge test turns it way down instead.
        hedge_initial=30.0,
        hedge_delay_floor=30.0,
        quiet=True,
    )
    defaults.update(overrides)
    return RouterConfig(**defaults)


def _wait(predicate, timeout=10.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _source_owned_by(router, owner: str) -> str:
    """A certifiable source whose ring primary is ``owner``."""
    for i in range(64):
        source = SMALL.replace("get", f"get_{i}").replace("val", f"val_{i}")
        if router.ring.primary(routing_key(source, None)) == owner:
            return source
    raise AssertionError(f"no probe source landed on {owner}")


class TestNodeSpecs:
    def test_named_and_anonymous_specs(self):
        assert parse_node_spec("a=10.0.0.1:8421", 0) == ("a", "10.0.0.1", 8421)
        assert parse_node_spec("127.0.0.1:9000", 2) == ("n3", "127.0.0.1", 9000)
        # Host defaults to loopback when omitted.
        assert parse_node_spec("a=:8421", 0) == ("a", "127.0.0.1", 8421)

    def test_bad_specs_are_rejected(self):
        for bad in ("nohost", "a=h:notaport", "a=h:"):
            with pytest.raises(ValueError):
                parse_node_spec(bad, 0)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    nodes = [
        BackgroundServer(
            _node_config(tmp_path_factory.mktemp(f"node{i}-cache"))
        ).start()
        for i in range(2)
    ]
    try:
        with BackgroundRouter(_router_config(nodes)) as router:
            with ServiceClient(port=router.port) as probe:
                assert probe.wait_ready(timeout=15.0)
            yield router
    finally:
        for node in nodes:
            node.stop()


@pytest.fixture
def client(cluster):
    with ServiceClient(port=cluster.port) as c:
        yield c


class TestProxying:
    def test_certify_is_proxied_and_stamped(self, client, cluster):
        response = client.certify(SMALL)
        assert response["_status"] == 200
        assert response["ok"] is True
        assert response["node"] in ("n1", "n2")
        assert len(response["trace_id"]) == 32
        # Span shipping is router-internal; clients never see raw spans.
        assert "trace" not in response

    def test_affinity_same_source_lands_on_the_same_node(self, client):
        first = client.certify(SMALL)
        second = client.certify(SMALL)
        assert first["node"] == second["node"]
        assert second["cache"] in ("memory", "disk")
        assert second["statement"] == first["statement"]

    def test_placement_matches_the_ring(self, client, cluster):
        source = _source_owned_by(cluster.router, "n2")
        response = client.certify(source)
        assert response["ok"] and response["node"] == "n2"

    def test_translate_and_batch_are_proxied(self, client):
        translated = client.translate(SMALL)
        assert translated["ok"] and "procedure" in translated["boogie"]
        batch = client.batch([{"source": SMALL}, {"source": "method oops("}])
        assert batch["_status"] == 200
        assert batch["count"] == 2
        assert batch["results"][0]["ok"] is True
        assert batch["results"][1]["ok"] is False
        assert batch["node"] in ("n1", "n2")

    def test_node_errors_pass_through_verbatim(self, client):
        response = client.certify("method oops(")
        assert response["_status"] == 422
        assert response["error_stage"] == "parse"
        assert response["node"] in ("n1", "n2")


class TestOperationalEndpoints:
    def test_healthz_reports_router_role_and_node_states(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["replication"] == 2
        assert set(health["nodes"]) == {"n1", "n2"}
        assert all(n["state"] == "up" for n in health["nodes"].values())
        assert abs(sum(health["ring"].values()) - 1.0) < 0.01

    def test_metrics_expose_cluster_counters_and_build_info(self, client):
        client.certify(SMALL)
        text = client.metrics()
        assert "repro_cluster_requests_total" in text
        assert 'repro_cluster_ring_share{node="n1"}' in text
        assert 'repro_cluster_node_up{node="n1"} 1.0' in text
        assert "repro_upstream_seconds_bucket" in text
        assert 'repro_build_info{version="' in text
        assert 'endpoint="/v1/certify"' in text

    def test_unknown_route_is_404_and_bad_method_is_405(self, client):
        assert client._request("GET", "/nope")["_status"] == 404
        assert client._request("GET", "/v1/certify")["_status"] == 405

    def test_nodes_also_expose_build_info(self, cluster):
        node_port = cluster.router.upstreams["n1"].port
        with ServiceClient(port=node_port) as node_client:
            assert 'repro_build_info{version="' in node_client.metrics()


class TestHedging:
    def test_a_tiny_hedge_delay_forces_hedged_requests(self, cluster):
        """With the hedge delay floored at ~0, every certify hedges to the
        replica; the request still succeeds exactly once per client."""
        nodes = list(cluster.router.upstreams.values())
        config = _router_config(
            [type("N", (), {"port": n.port})() for n in nodes],
            hedge_initial=0.0001,
            hedge_delay_floor=0.0001,
        )
        with BackgroundRouter(config) as hedged:
            with ServiceClient(port=hedged.port) as c:
                assert c.wait_ready(timeout=15.0)
                response = c.certify(
                    SMALL.replace("get", "get_hedge").replace("val", "val_h")
                )
                assert response["ok"] is True
                text = c.metrics()
        assert "repro_cluster_hedges_total" in text


class TestFailover:
    @pytest.fixture
    def fresh_cluster(self, tmp_path):
        nodes = [
            BackgroundServer(_node_config(tmp_path / f"cache{i}")).start()
            for i in range(2)
        ]
        router = BackgroundRouter(_router_config(nodes)).start()
        with ServiceClient(port=router.port) as probe:
            assert probe.wait_ready(timeout=15.0)
        try:
            yield nodes, router
        finally:
            router.stop()
            for node in nodes:
                node.stop()

    def test_node_loss_fails_over_then_total_loss_is_502(self, fresh_cluster):
        nodes, router = fresh_cluster
        source = _source_owned_by(router.router, "n1")
        with ServiceClient(port=router.port) as client:
            warm = client.certify(source)
            assert warm["ok"] and warm["node"] == "n1"

            # Kill the primary; the router must eject it and serve the
            # same key from the replica with zero client-visible errors.
            nodes[0].stop()
            assert _wait(
                lambda: client.healthz()["nodes"]["n1"]["state"] == "down"
            )
            failed_over = client.certify(source)
            assert failed_over["ok"] is True
            assert failed_over["node"] == "n2"
            assert "repro_cluster_failovers_total" in client.metrics()

            # Kill the survivor: /healthz flips to 503 and proxied
            # requests get an honest 502 naming the nodes it tried.
            nodes[1].stop()

            def unavailable():
                try:
                    client.healthz()
                    return False
                except ServiceThrottled:
                    return True

            assert _wait(unavailable)
            try:
                response = client.certify(source)
            except ServiceError as error:
                assert error.status in (None, 502)
            else:
                assert response["_status"] == 502
                assert response["ok"] is False
                assert "n1" in response["error"] and "n2" in response["error"]


class TestDrainNotice:
    def test_drain_is_visible_to_the_router_before_the_socket_closes(
        self, tmp_path
    ):
        """SIGTERM drain: the node answers 503 ``draining`` while its
        listener is still open, so the router's probe records
        ``up->draining`` *before* ``draining->down``."""
        node = BackgroundServer(
            _node_config(tmp_path / "cache", drain_notice=1.0)
        ).start()
        router = BackgroundRouter(_router_config([node])).start()
        try:
            with ServiceClient(port=router.port) as client:
                assert client.wait_ready(timeout=15.0)
            monitor = router.router.monitor
            node._loop.call_soon_threadsafe(node.service.request_shutdown, 0)
            assert _wait(lambda: monitor.state("n1") == "down")
            transitions = monitor.snapshot()["n1"]["transitions"]
            assert "up->draining" in transitions
            assert "draining->down" in transitions
        finally:
            router.stop()
            node.stop()
