"""Tests for the repro.cluster sharding layer."""
