"""Fault-injection acceptance: kill a node under load, lose nothing.

This is the issue's headline scenario run small: three *real*
``repro serve`` subprocesses behind the router, a corpus replay driving
load, and a SIGKILL of one node mid-run.  The pass condition is the
cluster contract verbatim — **zero failed client requests**, failover
provably exercised (``repro_cluster_failovers_total > 0``), and a
router→node trace stitched across the hop.

The full-size run (50 requests, overhead phase, every fault mode) is
``repro cluster chaos`` in CI's cluster-smoke job; this test keeps the
subprocess count and request volume small enough for the tier-1 suite.
"""

from __future__ import annotations

import json

from repro.cluster.chaos import ChaosConfig, parse_metrics, run_chaos, summarise, sum_metric


class TestMetricsParsing:
    def test_prometheus_text_round_trips(self):
        text = (
            "# HELP repro_x_total help\n"
            "# TYPE repro_x_total counter\n"
            'repro_x_total{node="a"} 3\n'
            'repro_x_total{node="b"} 4\n'
            "repro_up 1.0\n"
        )
        values = parse_metrics(text)
        assert sum_metric(values, "repro_x_total") == 7.0
        assert sum_metric(values, "repro_up") == 1.0
        assert sum_metric(values, "repro_missing") == 0.0


class TestKillFault:
    def test_single_node_kill_under_load_loses_no_requests(self, tmp_path):
        config = ChaosConfig(
            nodes=3,
            replication=2,
            requests=18,
            concurrency=4,
            fault="kill",
            fault_after=0.25,
            measure_overhead=False,
            work_dir=str(tmp_path),
            report_path=str(tmp_path / "report.json"),
            quiet=True,
        )
        report = run_chaos(config)

        checks = report["checks"]
        assert checks["zero_client_errors"], report["loadgen"]
        assert checks["zero_server_errors"], report["loadgen"]
        assert checks["all_requests_completed"]
        assert checks["failover_proven"], report["router"]
        assert checks["trace_connected"], report["trace"]
        assert report["ok"] is True
        assert report["fault"]["injected"] is True

        # The surviving nodes absorbed the killed node's share.
        split = report["loadgen"].get("nodes", {})
        assert sum(split.values()) == 18
        assert len(split) >= 2

        # The report round-trips to disk for benchmarks/results/.
        on_disk = json.loads((tmp_path / "report.json").read_text())
        assert on_disk["ok"] is True

        # And the human summary names the fault and the verdict.
        text = summarise(report)
        assert "kill" in text and "OK" in text
