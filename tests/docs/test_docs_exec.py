"""The documentation executes: ```console fences are real commands.

``tools/docs_exec.py`` is the contract that keeps README and docs/*.md
honest — every ``$ `` command in a ```console fence must run with the
asserted exit code.  These tests cover the extractor grammar and run
the fast (non-``slow``) documentation blocks end to end, the same thing
the ``docs-exec`` CI job does with ``--slow`` added.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "docs_exec.py"

spec = importlib.util.spec_from_file_location("docs_exec", TOOL)
docs_exec = importlib.util.module_from_spec(spec)
sys.modules["docs_exec"] = docs_exec
spec.loader.exec_module(docs_exec)


class TestExtractor:
    def test_console_fences_and_directives(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Title\n\n"
            "```console\n"
            "$ echo one\n"
            "illustrative output\n"
            "$ echo two \\\n"
            "    --continued\n"
            "```\n\n"
            "<!-- docs-exec: slow expect-json exit=3 -->\n"
            "```console\n"
            "$ false\n"
            "```\n\n"
            "```bash\n"
            "$ not-extracted\n"
            "```\n"
        )
        first, second = docs_exec.extract_blocks(doc)
        assert first.commands == ["echo one", "echo two --continued"]
        assert not first.slow and first.expected_exit == 0
        assert second.commands == ["false"]
        assert second.slow and second.expect_json
        assert second.expected_exit == 3

    def test_skip_directive_and_unknown_directive(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "<!-- docs-exec: skip -->\n```console\n$ rm -rf /\n```\n"
        )
        (block,) = docs_exec.extract_blocks(doc)
        assert block.skip
        doc.write_text(
            "<!-- docs-exec: frobnicate -->\n```console\n$ true\n```\n"
        )
        with pytest.raises(ValueError, match="frobnicate"):
            docs_exec.extract_blocks(doc)

    def test_directive_must_be_adjacent(self, tmp_path):
        # A stray comment with prose in between does not attach.
        doc = tmp_path / "doc.md"
        doc.write_text(
            "<!-- docs-exec: skip -->\n\nsome prose\n\n"
            "```console\n$ true\n```\n"
        )
        (block,) = docs_exec.extract_blocks(doc)
        assert not block.skip

    def test_unterminated_fence_is_an_error(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```console\n$ true\n")
        with pytest.raises(ValueError, match="unterminated"):
            docs_exec.extract_blocks(doc)


class TestRealDocs:
    def test_every_doc_has_extractable_blocks(self):
        files = docs_exec.default_files()
        assert REPO_ROOT / "README.md" in files
        plan = {path: docs_exec.extract_blocks(path) for path in files}
        commands = [
            c for blocks in plan.values() for b in blocks for c in b.commands
        ]
        # The tentpole docs ship runnable examples; an empty plan means
        # the fences regressed to non-executable ```bash.
        assert len(commands) >= 10
        assert any("--trace" in c for c in commands)
        assert any(c.startswith("repro serve") for c in commands)

    def test_fast_blocks_execute(self, tmp_path):
        # The same run CI's docs-exec job performs, minus `slow` blocks
        # (which need a live server and belong to CI wall-clock).
        result = subprocess.run(
            [sys.executable, str(TOOL)],
            capture_output=True, text=True, cwd=str(tmp_path), timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "docs-exec ok" in result.stdout
