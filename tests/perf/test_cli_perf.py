"""`repro bench record` / `bench diff` / `perf profile` end to end.

The live-harness paths run on a one-file MPP subset (`--limit 1`) to
keep the suite fast; the statistical paths run on pre-recorded history
files so no timing noise can flake them.  The headline acceptance
scenario — a seeded 2× translate slowdown via ``REPRO_STAGE_DELAY``
exits 1 and names ``translate`` — runs here exactly as the CI perf-gate
job runs it.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.perf import append_record, make_record, read_history

from .helpers import synth_samples

SOURCE = """
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""


def _write_history(path, reports, label=""):
    for report in reports:
        append_record(str(path), make_record(report, label=label))
    return str(path)


@pytest.fixture
def base_history(tmp_path):
    return _write_history(
        tmp_path / "base.jsonl", synth_samples(301, 3), label="baseline"
    )


class TestBenchRecord:
    def test_records_samples_with_label(self, tmp_path, capsys):
        out = tmp_path / "hist.jsonl"
        code = main([
            "bench", "record", "--suite", "MPP", "--limit", "1",
            "--samples", "2", "--label", "ci", "--out", str(out),
        ])
        assert code == 0
        assert "recorded 2 sample(s)" in capsys.readouterr().out
        records = read_history(str(out))
        assert len(records) == 2
        assert all(r.label == "ci" for r in records)
        assert all(r.fingerprint["cpu_count"] >= 1 for r in records)
        files = records[0].report["suites"]["MPP"]["files"]
        assert len(files) == 1

    def test_record_appends_not_truncates(self, tmp_path, capsys):
        out = tmp_path / "hist.jsonl"
        for _ in range(2):
            assert main([
                "bench", "record", "--suite", "MPP", "--limit", "1",
                "--out", str(out),
            ]) == 0
        capsys.readouterr()
        assert len(read_history(str(out))) == 2

    def test_empty_selection_exits_two(self, tmp_path, capsys):
        out = tmp_path / "hist.jsonl"
        code = main([
            "bench", "record", "--suite", "MPP", "--limit", "0",
            "--out", str(out),
        ])
        assert code == 2
        assert "no corpus files" in capsys.readouterr().err


class TestBenchDiffRecorded:
    """Diffs over pre-recorded history files: deterministic, no harness."""

    def test_identical_histories_exit_zero(self, tmp_path, base_history, capsys):
        assert main(["bench", "diff", base_history, base_history]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_five_consecutive_invocations_agree(self, base_history, tmp_path, capsys):
        current = _write_history(tmp_path / "cur.jsonl", synth_samples(302, 3))
        codes = set()
        for _ in range(5):
            codes.add(main(["bench", "diff", base_history, current]))
            capsys.readouterr()
        assert codes == {0}

    def test_seeded_slowdown_exits_one_and_names_translate(
        self, base_history, tmp_path, capsys
    ):
        current = _write_history(
            tmp_path / "slow.jsonl",
            synth_samples(303, 3, scale={"translate_seconds": 2.0}),
        )
        code = main(["bench", "diff", base_history, current])
        out = capsys.readouterr().out
        assert code == 1
        assert "stage(s) translate" in out
        assert "attribution" in out

    def test_json_output_carries_the_attribution(
        self, base_history, tmp_path, capsys
    ):
        current = _write_history(
            tmp_path / "slow.jsonl",
            synth_samples(304, 3, scale={"translate_seconds": 2.0}),
        )
        code = main(["bench", "diff", base_history, current, "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["regressions"]
        assert all(
            r["guilty_stages"][0] == "translate"
            for r in payload["regressions"]
        )
        assert payload["attribution"]
        assert payload["attribution"][0]["guilty_stages"][0] == "translate"

    def test_json_to_file(self, base_history, tmp_path, capsys):
        out = tmp_path / "diff.json"
        assert main([
            "bench", "diff", base_history, base_history, "--json", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["ok"] is True

    def test_label_filter(self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        _write_history(path, synth_samples(305, 2), label="good")
        _write_history(
            path,
            synth_samples(306, 2, scale={"translate_seconds": 5.0}),
            label="slow",
        )
        current = _write_history(tmp_path / "cur.jsonl", synth_samples(307, 2))
        # Against the full mixed history the slow label's samples drag
        # the baseline median up; selecting --label good compares only
        # the clean samples.
        assert main([
            "bench", "diff", str(path), current, "--label", "good",
        ]) == 0
        capsys.readouterr()
        assert main([
            "bench", "diff", str(path), current, "--label", "missing",
        ]) == 2
        assert "no records with label" in capsys.readouterr().err

    def test_unreadable_base_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["bench", "diff", missing]) == 2
        assert "bench diff" in capsys.readouterr().err

    def test_missing_base_argument_exits_two(self, capsys):
        assert main(["bench", "diff"]) == 2
        capsys.readouterr()


class TestBenchDiffLive:
    """The CI-gate path: record live, then diff live against it."""

    def test_clean_tree_diffs_clean_against_its_own_recording(
        self, tmp_path, capsys
    ):
        out = tmp_path / "hist.jsonl"
        assert main([
            "bench", "record", "--suite", "MPP", "--limit", "1",
            "--samples", "2", "--out", str(out),
        ]) == 0
        code = main([
            "bench", "diff", str(out), "--suite", "MPP", "--limit", "1",
            "--samples", "2",
        ])
        capsys.readouterr()
        assert code == 0

    def test_injected_translate_delay_exits_one_and_names_translate(
        self, tmp_path, capsys, monkeypatch
    ):
        out = tmp_path / "hist.jsonl"
        assert main([
            "bench", "record", "--suite", "MPP", "--limit", "1",
            "--samples", "2", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        monkeypatch.setenv("REPRO_STAGE_DELAY", "translate=0.05")
        code = main([
            "bench", "diff", str(out), "--suite", "MPP", "--limit", "1",
            "--samples", "2", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["regressions"]
        assert all(
            r["guilty_stages"][0] == "translate"
            for r in payload["regressions"]
        )


class TestPerfProfile:
    def test_text_and_json_output(self, tmp_path, capsys):
        src = tmp_path / "demo.vpr"
        src.write_text(SOURCE)
        assert main(["perf", "profile", str(src), "--top", "5"]) == 0
        text = capsys.readouterr().out
        assert "pipeline total" in text and "per-stage seconds" in text
        assert main([
            "perf", "profile", str(src), "--top", "5", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert len(payload["hotspots"]) <= 5

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["perf", "profile", str(tmp_path / "nope.vpr")]) == 2
        assert "perf profile" in capsys.readouterr().err


class TestBenchLimit:
    def test_plain_bench_respects_limit(self, capsys):
        assert main(["bench", "MPP", "--limit", "1", "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert len(payload["suites"]["MPP"]["files"]) == 1

    def test_meta_carries_the_fingerprint(self, capsys):
        assert main(["bench", "MPP", "--limit", "1", "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert {"repro_version", "git_describe", "cpu_count", "python",
                "platform", "jobs"} <= set(payload["meta"])
