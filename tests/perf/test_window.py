"""The rolling stage window, `GET /v1/perf`, and the baseline-ratio gauges."""

from __future__ import annotations

import http.client
import json
import random

import pytest

from repro.perf import (
    RollingStageWindow,
    append_record,
    baseline_stage_medians,
    load_baseline,
    make_record,
    stage_medians_from_report,
)

from .helpers import synth_report, synth_samples

SMALL = """
field val: Int

method get(self: Ref) returns (r: Int)
  requires acc(self.val)
  ensures acc(self.val) && r == self.val
{
  r := self.val
}
"""


class TestBaselineMedians:
    def test_medians_cover_every_stage(self):
        report = synth_report(random.Random(1))
        medians = stage_medians_from_report(report)
        assert set(medians) == {
            "translate", "generate", "check", "analyze", "total",
        }
        assert medians["check"] == pytest.approx(0.060, rel=0.1)

    def test_pooled_across_reports(self):
        medians = baseline_stage_medians(synth_samples(2, 5))
        assert medians["translate"] == pytest.approx(0.020, rel=0.1)

    def test_load_baseline_from_history(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        for report in synth_samples(3, 3):
            append_record(path, make_record(report, label="base"))
        medians, fingerprint = load_baseline(path)
        assert medians["check"] == pytest.approx(0.060, rel=0.1)
        assert "cpu_count" in fingerprint


class TestRollingStageWindow:
    def test_observe_and_medians(self):
        window = RollingStageWindow(maxlen=4)
        for seconds in (0.010, 0.020, 0.030):
            window.observe({"translate": seconds, "check": 2 * seconds})
        assert len(window) == 3
        assert window.medians()["translate"] == pytest.approx(0.020)
        assert window.medians()["check"] == pytest.approx(0.040)

    def test_window_is_bounded(self):
        window = RollingStageWindow(maxlen=2)
        for index in range(10):
            window.observe({"translate": float(index)})
        assert len(window) == 2
        assert window.medians()["translate"] == pytest.approx(8.5)

    def test_ratio_against_baseline(self):
        window = RollingStageWindow(baseline={"translate": 0.010})
        window.observe({"translate": 0.020})
        assert window.ratio("translate") == pytest.approx(2.0)

    def test_ratio_is_nan_without_data_or_baseline(self):
        import math

        window = RollingStageWindow(baseline={"translate": 0.010})
        assert math.isnan(window.ratio("translate"))  # no observations
        window.observe({"check": 0.5})
        assert math.isnan(window.ratio("check"))  # no baseline for check

    def test_non_numeric_and_empty_observations_are_dropped(self):
        window = RollingStageWindow()
        window.observe({})
        window.observe({"translate": "bogus"})
        assert len(window) == 0

    def test_snapshot_shape(self):
        window = RollingStageWindow(
            maxlen=8,
            baseline={"translate": 0.010},
            baseline_info={"path": "x.jsonl"},
        )
        window.observe({"translate": 0.020, "check": 0.050})
        snap = window.snapshot()
        assert snap["schema"] == 1
        assert snap["window"] == {"requests": 1, "maxlen": 8}
        assert snap["baseline"]["info"]["path"] == "x.jsonl"
        translate = snap["stages"]["translate"]
        assert translate["baseline_ratio"] == pytest.approx(2.0)
        assert snap["stages"]["check"]["count"] == 1
        assert "baseline_ratio" not in snap["stages"]["check"]


def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


@pytest.fixture(scope="module")
def perf_server(tmp_path_factory):
    from repro.service.server import BackgroundServer, ServerConfig

    # A baseline whose translate median is absurdly small, so any real
    # request drives the ratio far above 1 — deterministic direction.
    history = tmp_path_factory.mktemp("perf") / "baseline.jsonl"
    scale = {field: 1e-6 for field in (
        "translate_seconds", "generate_seconds", "check_seconds",
        "analyze_seconds",
    )}
    for report in synth_samples(9, 2, scale=scale):
        append_record(str(history), make_record(report, label="base"))
    config = ServerConfig(
        port=0, use_threads=True, jobs=1, quiet=True,
        perf_baseline=str(history), perf_window=16,
    )
    with BackgroundServer(config) as background:
        yield background


class TestPerfEndpoint:
    def test_empty_window_reports_baseline_only(self, perf_server):
        status, body = _get(perf_server.port, "/v1/perf")
        assert status == 200
        snap = json.loads(body)
        assert snap["window"]["requests"] == 0
        assert snap["baseline"]["stages"]["translate"] > 0

    def test_certify_populates_window_and_ratios(self, perf_server):
        from repro.service.client import ServiceClient

        with ServiceClient(port=perf_server.port) as client:
            assert client.wait_ready(timeout=15.0)
            response = client.certify(SMALL)
            assert response["ok"] is True
        status, body = _get(perf_server.port, "/v1/perf")
        assert status == 200
        snap = json.loads(body)
        assert snap["window"]["requests"] >= 1
        translate = snap["stages"]["translate"]
        assert translate["count"] >= 1
        # Real work against a near-zero baseline: the drift is visible.
        assert translate["baseline_ratio"] > 1.0

    def test_baseline_ratio_gauge_is_exported(self, perf_server):
        status, text = _get(perf_server.port, "/metrics")
        assert status == 200
        assert "repro_stage_seconds_baseline_ratio" in text
        assert 'stage="translate"' in text

    def test_post_to_perf_is_method_not_allowed(self, perf_server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", perf_server.port, timeout=10
        )
        try:
            conn.request("POST", "/v1/perf", body=b"{}",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 405
            response.read()
        finally:
            conn.close()


class TestServerWithoutBaseline:
    def test_perf_endpoint_works_baseline_less(self):
        from repro.service.server import BackgroundServer, ServerConfig

        config = ServerConfig(port=0, use_threads=True, jobs=1, quiet=True)
        with BackgroundServer(config) as background:
            status, body = _get(background.port, "/v1/perf")
            assert status == 200
            snap = json.loads(body)
            assert snap["baseline"]["stages"] == {}

    def test_corrupt_baseline_degrades_not_fails(self, tmp_path):
        from repro.service.server import BackgroundServer, ServerConfig

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        config = ServerConfig(
            port=0, use_threads=True, jobs=1, quiet=True,
            perf_baseline=str(bad),
        )
        with BackgroundServer(config) as background:
            status, body = _get(background.port, "/v1/perf")
            assert status == 200
            snap = json.loads(body)
            assert "error" in snap["baseline"]["info"]
