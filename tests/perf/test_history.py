"""The append-only history store: digests, fingerprints, round trips."""

from __future__ import annotations

import json
import random

import pytest

from repro.perf import (
    HistoryError,
    append_record,
    environment_fingerprint,
    latest_record,
    make_record,
    read_history,
    report_digest,
)

from .helpers import synth_report


@pytest.fixture
def report():
    return synth_report(random.Random(7))


class TestFingerprint:
    def test_carries_the_comparability_keys(self):
        fp = environment_fingerprint()
        assert {
            "repro_version",
            "python",
            "implementation",
            "platform",
            "machine",
            "cpu_count",
            "git_describe",
        } <= set(fp)
        assert fp["cpu_count"] >= 1
        # The two legacy bench-meta keys keep their old semantics.
        assert fp["python"].count(".") >= 1
        assert isinstance(fp["platform"], str) and fp["platform"]


class TestRoundTrip:
    def test_append_then_read_preserves_the_report(self, tmp_path, report):
        path = str(tmp_path / "history.jsonl")
        append_record(path, make_record(report, label="base"))
        append_record(path, make_record(report, label="base"))
        records = read_history(path)
        assert len(records) == 2
        assert records[0].report == report
        assert records[0].label == "base"
        assert records[0].digest == report_digest(report)
        assert records[0].path == path and records[0].line == 1

    def test_latest_record_honours_labels(self, tmp_path, report):
        path = str(tmp_path / "history.jsonl")
        append_record(path, make_record(report, label="old"))
        append_record(path, make_record(report, label="new"))
        records = read_history(path)
        assert latest_record(records).label == "new"
        assert latest_record(records, label="old").line == 1
        with pytest.raises(HistoryError):
            latest_record(records, label="missing")

    def test_creates_parent_directories(self, tmp_path, report):
        path = str(tmp_path / "deep" / "er" / "history.jsonl")
        append_record(path, make_record(report))
        assert len(read_history(path)) == 1


class TestIntegrity:
    def test_a_tampered_report_fails_the_digest_check(self, tmp_path, report):
        path = tmp_path / "history.jsonl"
        append_record(str(path), make_record(report))
        payload = json.loads(path.read_text())
        payload["report"]["blowup_factor"] = 999.0
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(HistoryError, match="digest mismatch"):
            read_history(str(path))

    def test_invalid_json_names_the_line(self, tmp_path, report):
        path = tmp_path / "history.jsonl"
        append_record(str(path), make_record(report))
        path.write_text(path.read_text() + "{truncated\n")
        with pytest.raises(HistoryError, match=r":2: invalid JSON"):
            read_history(str(path))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("\n")
        with pytest.raises(HistoryError, match="no history records"):
            read_history(str(path))

    def test_verify_false_accepts_a_tampered_report(self, tmp_path, report):
        path = tmp_path / "history.jsonl"
        append_record(str(path), make_record(report))
        payload = json.loads(path.read_text())
        payload["report"]["blowup_factor"] = 999.0
        path.write_text(json.dumps(payload) + "\n")
        records = read_history(str(path), verify=False)
        assert records[0].report["blowup_factor"] == 999.0

    def test_digest_is_canonical_under_key_order(self, report):
        shuffled = json.loads(
            json.dumps(report), object_pairs_hook=lambda kv: dict(reversed(kv))
        )
        assert report_digest(report) == report_digest(shuffled)
