"""Synthetic bench-report fixtures for the observatory tests.

Real harness runs are slow and noisy; these builders produce
``bench --json``-shaped documents with *controlled* timing
distributions, so the comparator's statistical behaviour (zero false
positives under jitter, guaranteed detection of a seeded slowdown) can
be asserted deterministically.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

#: Nominal per-stage seconds of one synthetic corpus file — shaped like
#: a real mid-size Viper file (check dominates, generate is tiny).
BASE_STAGES = {
    "translate_seconds": 0.020,
    "generate_seconds": 0.008,
    "check_seconds": 0.060,
    "analyze_seconds": 0.015,
}


def synth_file_row(
    name: str,
    rng: random.Random,
    *,
    jitter: float = 0.05,
    scale: Optional[Dict[str, float]] = None,
    methods: int = 2,
) -> Dict[str, object]:
    """One per-file metrics row with multiplicative jitter per stage."""
    scale = scale or {}
    row: Dict[str, object] = {
        "suite": "Viper",
        "name": name,
        "methods": methods,
        "viper_loc": 40,
        "boogie_loc": 160,
        "cert_loc": 320,
        "certified": True,
        "error": None,
    }
    total = 0.0
    for field, nominal in BASE_STAGES.items():
        seconds = (
            nominal
            * scale.get(field, 1.0)
            * (1.0 + rng.uniform(-jitter, jitter))
        )
        row[field] = seconds
        total += seconds
    row["total_seconds"] = total
    row["cache_lookup_seconds"] = 0.0
    stage_of = {
        "translate_seconds": "translate",
        "generate_seconds": "generate",
        "check_seconds": "check",
        "analyze_seconds": "analyze",
    }
    per_method = {}
    for index in range(methods):
        per_method[f"m{index}"] = {
            "reused": False,
            "tier": "fresh",
            "stages": {
                stage_of[field]: {
                    "seconds": row[field] / methods,
                    "reused": False,
                    "tier": "fresh",
                }
                for field in ("translate_seconds", "generate_seconds")
            },
        }
    row["unit_cache"] = {
        "reused": 0,
        "rebuilt": methods,
        "reused_methods": [],
        "rebuilt_methods": sorted(per_method),
        "tiers": {"fresh": methods},
        "methods": per_method,
    }
    return row


def synth_report(
    rng: random.Random,
    *,
    files: Sequence[str] = ("a", "b", "c"),
    jitter: float = 0.05,
    scale: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """One ``bench --json``-shaped report over synthetic Viper files."""
    rows = [
        synth_file_row(name, rng, jitter=jitter, scale=scale) for name in files
    ]
    return {
        "meta": {"python": "3.11.0", "platform": "synthetic", "jobs": None},
        "suites": {"Viper": {"files": rows, "aggregate": {}}},
        "overall": {},
        "blowup_factor": 4.0,
        "analysis_overhead": {"fraction": 0.1, "within_budget": True},
        "unit_cache": {},
    }


def synth_samples(
    seed: int,
    count: int,
    *,
    files: Sequence[str] = ("a", "b", "c"),
    jitter: float = 0.05,
    scale: Optional[Dict[str, float]] = None,
) -> List[Dict[str, object]]:
    """``count`` independent sample reports from one seeded RNG."""
    rng = random.Random(seed)
    return [
        synth_report(rng, files=files, jitter=jitter, scale=scale)
        for _ in range(count)
    ]
