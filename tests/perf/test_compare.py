"""Comparator calibration: zero false positives under jitter, guaranteed
detection and exact-stage attribution of a seeded 2× slowdown."""

from __future__ import annotations

import random

import pytest

from repro.perf import (
    CompareConfig,
    bootstrap_ratio_ci,
    compare_reports,
    file_records,
)

from .helpers import synth_samples


def _diff(base_seed, current_seed, *, scale=None, samples=3, config=None,
          jitter=0.05, **kwargs):
    base = synth_samples(base_seed, samples, jitter=jitter)
    current = synth_samples(current_seed, samples, jitter=jitter, scale=scale)
    return compare_reports(base, current, config, **kwargs)


class TestBootstrapCI:
    def test_single_samples_degenerate_to_the_point_ratio(self):
        lo, hi = bootstrap_ratio_ci([0.010], [0.020])
        assert lo == hi == pytest.approx(2.0)

    def test_deterministic_for_a_fixed_seed(self):
        rng = random.Random(3)
        base = [0.01 * (1 + rng.uniform(-0.1, 0.1)) for _ in range(5)]
        cur = [0.02 * (1 + rng.uniform(-0.1, 0.1)) for _ in range(5)]
        first = bootstrap_ratio_ci(base, cur, seed=42)
        second = bootstrap_ratio_ci(base, cur, seed=42)
        assert first == second
        assert first[0] <= first[1]

    def test_interval_brackets_a_real_doubling(self):
        rng = random.Random(11)
        base = [0.01 * (1 + rng.uniform(-0.05, 0.05)) for _ in range(6)]
        cur = [0.02 * (1 + rng.uniform(-0.05, 0.05)) for _ in range(6)]
        lo, hi = bootstrap_ratio_ci(base, cur, seed=0)
        assert 1.5 < lo <= hi < 2.5

    def test_empty_side_is_infinite(self):
        assert bootstrap_ratio_ci([], [0.01]) == (float("inf"), float("inf"))


class TestZeroFalsePositives:
    def test_no_regressions_over_200_jittered_run_pairs(self):
        # ≥200 synthetic (baseline, current) pairs drawn from the SAME
        # timing distribution with ±10% jitter: the default noise floor
        # must page on none of them.  3 files × 5 comparable stages per
        # pair → several thousand individual comparisons.
        false_positives = 0
        for pair in range(200):
            diff = _diff(
                base_seed=1000 + pair,
                current_seed=5000 + pair,
                samples=3,
                jitter=0.10,
            )
            assert diff.exit_code in (0, 1)
            assert diff.compared_pairs > 0
            false_positives += len(diff.regressions)
        assert false_positives == 0

    def test_identical_sample_sets_always_exit_zero(self):
        reports = synth_samples(77, 3)
        diff = compare_reports(reports, reports)
        assert diff.exit_code == 0
        assert not diff.regressions


class TestSeededSlowdown:
    def test_2x_translate_slowdown_is_detected_and_named_exactly(self):
        diff = _diff(
            base_seed=21,
            current_seed=22,
            scale={"translate_seconds": 2.0},
        )
        assert diff.exit_code == 1
        assert diff.regressions
        for file_diff in diff.regressions:
            assert file_diff.guilty_stages[0] == "translate"
            # No other real stage is blamed.
            assert set(file_diff.guilty_stages) <= {"translate", "total"}
        payload = diff.to_dict()
        assert payload["exit_code"] == 1
        assert all(
            r["guilty_stages"][0] == "translate" for r in payload["regressions"]
        )

    def test_2x_check_slowdown_blames_check(self):
        diff = _diff(base_seed=31, current_seed=32,
                     scale={"check_seconds": 2.0})
        assert diff.exit_code == 1
        assert all(
            f.guilty_stages[0] == "check" for f in diff.regressions
        )

    def test_text_render_names_the_guilty_stage(self):
        diff = _diff(base_seed=41, current_seed=42,
                     scale={"translate_seconds": 2.0})
        text = diff.render()
        assert "REGRESSION" in text
        assert "stage(s) translate" in text

    def test_detection_is_stable_across_the_seed_space(self):
        # The 2× detection must not depend on a lucky seed either.
        for pair in range(25):
            diff = _diff(
                base_seed=8000 + pair,
                current_seed=9000 + pair,
                scale={"translate_seconds": 2.0},
                jitter=0.10,
            )
            assert diff.exit_code == 1, f"pair {pair} missed the slowdown"
            assert all(
                f.guilty_stages[0] == "translate" for f in diff.regressions
            )


class TestFiltersAndExitCodes:
    def test_sub_floor_timings_are_skipped(self):
        # Shrink every stage under the 5 ms absolute floor: nothing is
        # comparable, which is exit 2, not a confident "no regression".
        tiny = {field: 0.01 for field in (
            "translate_seconds", "generate_seconds", "check_seconds",
            "analyze_seconds",
        )}
        base = synth_samples(51, 3, scale=tiny)
        current = synth_samples(52, 3, scale={k: 2 * v for k, v in tiny.items()})
        diff = compare_reports(
            base, current, CompareConfig(min_seconds=10.0)
        )
        assert diff.compared_pairs == 0
        assert diff.exit_code == 2

    def test_disjoint_file_sets_exit_two_and_are_reported(self):
        base = synth_samples(61, 2, files=("only-in-base",))
        current = synth_samples(62, 2, files=("only-in-current",))
        diff = compare_reports(base, current)
        assert diff.exit_code == 2
        assert diff.missing_in_current == ["Viper/only-in-base"]
        assert diff.missing_in_base == ["Viper/only-in-current"]

    def test_suite_filter_restricts_the_comparison(self):
        base = synth_samples(71, 2)
        current = synth_samples(72, 2)
        diff = compare_reports(base, current, suite="Gobra")
        assert diff.exit_code == 2

    def test_repeated_comparison_is_deterministic(self):
        base = synth_samples(81, 3)
        current = synth_samples(82, 3)
        first = compare_reports(base, current).to_dict()
        second = compare_reports(base, current).to_dict()
        assert first == second


class TestCalibration:
    def test_uniform_machine_speedup_is_calibrated_away(self):
        # The "current machine" is uniformly 3× slower (a laptop vs a CI
        # runner).  With differing fingerprints, auto-calibration must
        # normalise the ratios and page on nothing.
        everything = {field: 3.0 for field in (
            "translate_seconds", "generate_seconds", "check_seconds",
            "analyze_seconds",
        )}
        base = synth_samples(91, 3)
        current = synth_samples(92, 3, scale=everything)
        diff = compare_reports(
            base,
            current,
            base_fingerprint={"platform": "machine-A", "cpu_count": 8},
            current_fingerprint={"platform": "machine-B", "cpu_count": 2},
        )
        assert diff.calibration["applied"]
        assert diff.calibration["factor"] == pytest.approx(3.0, rel=0.15)
        assert diff.exit_code == 0

    def test_single_stage_slowdown_survives_calibration(self):
        # Calibration must not hide a real one-stage regression: the
        # factor is the median over stages, so one inflated stage of
        # four leaves the factor ≈ 1.
        base = synth_samples(93, 3)
        current = synth_samples(94, 3, scale={"translate_seconds": 2.5})
        diff = compare_reports(
            base,
            current,
            base_fingerprint={"platform": "machine-A"},
            current_fingerprint={"platform": "machine-B"},
        )
        assert diff.calibration["applied"]
        assert diff.calibration["factor"] == pytest.approx(1.0, rel=0.1)
        assert diff.exit_code == 1
        assert all(
            f.guilty_stages[0] == "translate" for f in diff.regressions
        )

    def test_matching_fingerprints_do_not_calibrate(self):
        fp = {"platform": "same", "machine": "x86_64", "cpu_count": 4,
              "python": "3.11.0", "implementation": "CPython"}
        diff = compare_reports(
            synth_samples(95, 2), synth_samples(96, 2),
            base_fingerprint=fp, current_fingerprint=fp,
        )
        assert not diff.calibration["applied"]
        assert diff.calibration["factor"] == 1.0

    def test_calibrate_off_disables_it_even_cross_machine(self):
        everything = {field: 3.0 for field in (
            "translate_seconds", "check_seconds", "generate_seconds",
            "analyze_seconds",
        )}
        diff = compare_reports(
            synth_samples(97, 2),
            synth_samples(98, 2, scale=everything),
            CompareConfig(calibrate="off"),
            base_fingerprint={"platform": "A"},
            current_fingerprint={"platform": "B"},
        )
        assert not diff.calibration["applied"]
        assert diff.exit_code == 1  # the raw 3× pages without calibration


class TestFileRecords:
    def test_collects_rows_per_file_across_reports(self):
        reports = synth_samples(99, 4)
        rows = file_records(reports)
        assert set(rows) == {("Viper", "a"), ("Viper", "b"), ("Viper", "c")}
        assert all(len(samples) == 4 for samples in rows.values())
