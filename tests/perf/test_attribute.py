"""Attribution: synthetic span trees, flame diffs, and cProfile capture."""

from __future__ import annotations

import random

import pytest

from repro.perf import (
    attribution_from_diff,
    compare_reports,
    flame_diff_lines,
    profile_source,
    render_profile,
    representative_record,
    spans_from_file_record,
)
from repro.trace.summarize import render_flame

from .helpers import synth_file_row, synth_samples

SOURCE = """
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""


@pytest.fixture
def row():
    return synth_file_row("demo", random.Random(5))


class TestSyntheticSpans:
    def test_tree_shape_root_stages_units(self, row):
        spans = spans_from_file_record(row)
        root = spans[0]
        assert root.name == "pipeline"
        assert root.parent_id is None
        stages = {s.name for s in spans if s.parent_id == root.span_id}
        assert stages == {"translate", "generate", "check", "analyze"}
        units = [s for s in spans if s.name.startswith("unit:")]
        # 2 methods × 2 unit stages (translate, generate) in the fixture.
        assert len(units) == 4
        assert all(s.attributes["cache"] == "miss" for s in units)

    def test_deterministic_span_ids(self, row):
        first = spans_from_file_record(row)
        second = spans_from_file_record(row)
        assert [s.span_id for s in first] == [s.span_id for s in second]

    def test_renders_through_the_regular_flame_machinery(self, row):
        spans = spans_from_file_record(row)
        lines = render_flame(spans, spans[0])
        assert lines[0].startswith("pipeline")
        assert any("translate" in line for line in lines)
        assert any("unit:m0" in line for line in lines)


class TestFlameDiff:
    def test_side_by_side_lines_cover_both_trees(self, row):
        slower = dict(row)
        slower["translate_seconds"] = row["translate_seconds"] * 3
        lines = flame_diff_lines(row, slower)
        text = "\n".join(lines)
        assert "base ms" in lines[0] and "curr ms" in lines[0]
        assert "pipeline" in text and "translate" in text
        translate_line = next(l for l in lines if "translate" in l)
        assert "3.00" in translate_line

    def test_missing_side_renders_a_dash(self, row):
        no_units = dict(row)
        no_units["unit_cache"] = {}
        lines = flame_diff_lines(row, no_units)
        assert any("unit:m0" in line and " -" in line for line in lines)


class TestRepresentative:
    def test_picks_the_median_total(self):
        rows = [synth_file_row("x", random.Random(seed)) for seed in range(5)]
        chosen = representative_record(rows)
        totals = sorted(r["total_seconds"] for r in rows)
        assert chosen["total_seconds"] == totals[2]

    def test_empty_rows_raise(self):
        with pytest.raises(ValueError):
            representative_record([])


class TestAttributionFromDiff:
    def test_names_the_stage_and_attaches_the_flame_diff(self):
        base = synth_samples(201, 3)
        current = synth_samples(202, 3, scale={"translate_seconds": 2.0})
        diff = compare_reports(base, current)
        assert diff.regressions
        file_diff = diff.regressions[0]
        key = (file_diff.suite, file_diff.name)
        from repro.perf import file_records

        payload = attribution_from_diff(
            file_diff,
            file_records(base)[key],
            file_records(current)[key],
        )
        assert payload["guilty_stages"][0] == "translate"
        assert payload["stages"]["translate"]["regressed"] is True
        assert payload["method_deltas"]
        assert any("translate" in line for line in payload["flame_diff"])


class TestProfile:
    def test_profile_reports_stages_and_hotspots(self):
        profile = profile_source(SOURCE, top=5)
        assert profile["schema"] == 1
        assert profile["total_seconds"] > 0
        assert {"parse", "translate", "check"} <= set(profile["stage_seconds"])
        assert 0 < len(profile["hotspots"]) <= 5
        spot = profile["hotspots"][0]
        assert {"function", "calls", "cumulative_seconds"} <= set(spot)
        # Ordered by cumulative time, descending.
        cums = [s["cumulative_seconds"] for s in profile["hotspots"]]
        assert cums == sorted(cums, reverse=True)

    def test_render_is_human_readable(self):
        profile = profile_source(SOURCE, top=3, analyze=False)
        text = render_profile(profile)
        assert "pipeline total" in text
        assert "function" in text
        assert "analyze" not in profile["stage_seconds"] or (
            profile["stage_seconds"].get("analyze", 0.0) == 0.0
        )
