"""Fuzzing the whole pipeline: random programs must always certify.

For randomly generated well-typed method bodies (over the strategy
environment), the instrumented translation plus tactic must produce a
certificate the kernel accepts — under every translation-option variant.
A failure here means the translator, the tactic, and the kernel disagree
about some encoding, which is exactly the class of bug the paper's
validation exists to catch.
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.certification import certify_translation
from repro.frontend import translate_program, TranslationOptions
from repro.viper.ast import MethodDecl, Program, FieldDecl, Type, AExpr, BoolLit
from repro.viper.typechecker import check_program

from tests.strategies import assertions, ENV, FIELDS, statements


def build_program(body_stmt, pre, post) -> Program:
    fields = tuple(FieldDecl(name, typ) for name, typ in sorted(FIELDS.items()))
    args = tuple((name, typ) for name, typ in sorted(ENV.items()))
    method = MethodDecl(
        name="fuzzed",
        args=args,
        returns=(),
        pre=pre,
        post=post,
        body=body_stmt,
    )
    return Program(fields, (method,))


OPTIONS = st.builds(
    TranslationOptions,
    wd_checks_at_calls=st.booleans(),
    literal_perm_fastpath=st.booleans(),
    always_emit_exhale_havoc=st.booleans(),
)


@given(statements(2), assertions(1), assertions(1))
@settings(max_examples=120, deadline=None)
def test_random_programs_certify(body, pre, post):
    program = build_program(body, pre, post)
    type_info = check_program(program)
    result = translate_program(program, type_info)
    _cert, report = certify_translation(result)
    assert report.ok, report.error


@given(statements(2), OPTIONS)
@settings(max_examples=80, deadline=None)
def test_random_programs_certify_under_all_options(body, options):
    trivially_true = AExpr(BoolLit(True))
    program = build_program(body, trivially_true, trivially_true)
    type_info = check_program(program)
    result = translate_program(program, type_info, options)
    _cert, report = certify_translation(result)
    assert report.ok, f"{options}: {report.error}"


@given(statements(1))
@settings(max_examples=30, deadline=None)
def test_certificates_roundtrip_through_text(body):
    from repro.certification import (
        check_program_certificate,
        generate_program_certificate,
        parse_program_certificate,
        render_program_certificate,
    )

    trivially_true = AExpr(BoolLit(True))
    program = build_program(body, trivially_true, trivially_true)
    type_info = check_program(program)
    result = translate_program(program, type_info)
    certificate = generate_program_certificate(result)
    text = render_program_certificate(certificate)
    reparsed = parse_program_certificate(text)
    assert reparsed == certificate
    assert check_program_certificate(result, reparsed).ok
