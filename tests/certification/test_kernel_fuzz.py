"""Fuzzing the kernel's rejection behaviour.

Random structural mutations of the Boogie program (deleting, duplicating,
or reordering a command) must never crash the kernel, and any mutation
that touches code covered by the certificate must be *rejected* (the
certificate covers every command of the procedure body, so any structural
change in the body is covered).
"""

import random
from dataclasses import replace

import pytest

from repro.boogie.ast import BIf, Procedure, StmtBlock
from repro.certification import check_program_certificate, generate_program_certificate
from repro.frontend import translate_program

from tests.helpers import parsed

SOURCE = """
field f: Int

method helper(x: Ref) returns (y: Int)
  requires acc(x.f, 1/2) && x.f >= 0
  ensures acc(x.f, 1/2) && y >= 0
{
  y := x.f
}

method main(a: Ref, p: Perm) returns (r: Int)
  requires acc(a.f, write) && p > none
  ensures acc(a.f, 1/2)
{
  a.f := 4
  if (a.f > 2) {
    r := helper(a)
  } else {
    r := 0
  }
  exhale acc(a.f, 1/2) && r >= 0
  inhale r == r
}
"""


def _enumerate_positions(stmt, path=()):
    """All (path, index) positions of simple commands in a statement."""
    positions = []
    for block_index, block in enumerate(stmt):
        for cmd_index in range(len(block.cmds)):
            positions.append((path + (block_index,), cmd_index))
        if block.ifopt is not None:
            positions += _enumerate_positions(
                block.ifopt.then, path + (block_index, "then")
            )
            positions += _enumerate_positions(
                block.ifopt.otherwise, path + (block_index, "else")
            )
    return positions


def _mutate(stmt, target_path, target_index, kind):
    """Apply one structural mutation at the target position."""
    blocks = []
    for block_index, block in enumerate(stmt):
        cmds = list(block.cmds)
        ifopt = block.ifopt
        if len(target_path) == 1 and target_path[0] == block_index:
            if kind == "delete":
                del cmds[target_index]
            elif kind == "duplicate":
                cmds.insert(target_index, cmds[target_index])
            elif kind == "swap" and target_index + 1 < len(cmds):
                cmds[target_index], cmds[target_index + 1] = (
                    cmds[target_index + 1],
                    cmds[target_index],
                )
        elif (
            len(target_path) > 1
            and target_path[0] == block_index
            and ifopt is not None
        ):
            branch_kind = target_path[1]
            rest = target_path[2:]
            if branch_kind == "then":
                ifopt = BIf(
                    ifopt.cond,
                    _mutate(ifopt.then, rest, target_index, kind),
                    ifopt.otherwise,
                )
            else:
                ifopt = BIf(
                    ifopt.cond,
                    ifopt.then,
                    _mutate(ifopt.otherwise, rest, target_index, kind),
                )
        blocks.append(StmtBlock(tuple(cmds), ifopt))
    return tuple(blocks)


@pytest.mark.parametrize("kind", ["delete", "duplicate", "swap"])
def test_structural_mutations_are_rejected_not_crashing(kind):
    program, info = parsed(SOURCE)
    result = translate_program(program, info)
    cert = generate_program_certificate(result)
    proc = result.boogie_program.procedure("m_main")
    positions = _enumerate_positions(proc.body)
    rng = random.Random(kind)
    sampled = rng.sample(positions, min(20, len(positions)))
    for path, index in sampled:
        mutated_body = _mutate(proc.body, path, index, kind)
        if mutated_body == proc.body:
            continue  # e.g. a swap at the end of a block
        mutated = Procedure(proc.name, proc.locals, mutated_body)
        procedures = tuple(
            mutated if p.name == proc.name else p
            for p in result.boogie_program.procedures
        )
        bad = replace(
            result,
            boogie_program=replace(result.boogie_program, procedures=procedures),
        )
        report = check_program_certificate(bad, cert)  # must not raise
        assert not report.ok, (
            f"mutation {kind} at {path}:{index} was accepted by the kernel"
        )


def test_swapping_two_identical_commands_is_harmless_or_rejected():
    """Swapping adjacent *identical* commands yields an equal AST; the
    mutation loop above skips those — this documents why."""
    program, info = parsed(SOURCE)
    result = translate_program(program, info)
    proc = result.boogie_program.procedure("m_main")
    body = proc.body
    assert _mutate(body, (0,), 0, "swap") != body or body[0].cmds[0] == body[0].cmds[1]
