"""Semantic validation of the kernel's lemma schemas (Sec. 3 / Fig. 4–8).

Each test instantiates the bounded generic simulation judgement for one
translation schema: it translates the effect in isolation, then checks over
sampled related state pairs that

* every *failing* Viper execution has a failing Boogie execution, and
* every *successful* Viper execution has a Boogie execution reaching the
  exit point in a related state.

These are the reproduction's counterparts of the once-and-for-all Isabelle
lemma proofs the paper's tactic relies on — if one of these fails, the
corresponding checker schema is unsound.
"""

import pytest

from repro.certification.simulation import (
    check_exhale_simulation,
    check_inhale_simulation,
    check_remcheck_simulation,
    check_statement_simulation,
)
from repro.frontend.translator import TranslationOptions
from repro.viper import parse_assertion, parse_stmt
from repro.boogie.cursor import Cursor

from tests.certification.simharness import EffectHarness


def _check_inhale(source: str, options=None, count: int = 30):
    harness = EffectHarness(options)
    assertion = parse_assertion(source)
    stmt, _hint = harness.translate_effect(
        lambda tr, builder: tr.trans_inhale(assertion, tr.record, True, builder)
    )
    verdict = check_inhale_simulation(
        assertion,
        harness.viper_ctx,
        harness.states(count),
        harness.boogie_state_of,
        Cursor.from_stmt(stmt),
        None,
        harness.boogie_context(stmt),
        harness.rel(),
    )
    assert verdict.ok, f"{verdict.detail}\nstate: {verdict.viper_state!r}"
    assert verdict.checked_pairs > 0


def _check_remcheck(source: str, options=None, count: int = 30):
    harness = EffectHarness(options)
    assertion = parse_assertion(source)

    def emit(tr, builder):
        wd_mask = tr._fresh("WM", __import__("repro.frontend.background", fromlist=["MASK_TYPE"]).MASK_TYPE)
        from repro.boogie.ast import Assign, BVar

        builder.emit(Assign(wd_mask, BVar(tr.record.mask_var)))
        record = tr.record.with_wd_mask(wd_mask)
        return tr.trans_remcheck(assertion, record, True, builder)

    stmt, _hint = harness.translate_effect(emit)
    verdict = check_remcheck_simulation(
        assertion,
        harness.viper_ctx,
        harness.states(count),
        harness.boogie_state_of,
        Cursor.from_stmt(stmt),
        None,
        harness.boogie_context(stmt),
        # After the WM snapshot the relation is the paired one.
        __import__("repro.certification.relations", fromlist=["SimRel"]).SimRel(
            harness.record.with_wd_mask(None)
        ),
    )
    assert verdict.ok, f"{verdict.detail}\nstate: {verdict.viper_state!r}"


def _check_exhale(source: str, options=None, count: int = 24):
    harness = EffectHarness(options)
    assertion = parse_assertion(source)
    stmt, _hint = harness.translate_effect(
        lambda tr, builder: tr.trans_exhale(assertion, tr.record, True, builder)
    )
    verdict = check_exhale_simulation(
        assertion,
        harness.viper_ctx,
        harness.states(count),
        harness.boogie_state_of,
        Cursor.from_stmt(stmt),
        None,
        harness.boogie_context(stmt),
        harness.rel(),
    )
    assert verdict.ok, f"{verdict.detail}\nstate: {verdict.viper_state!r}"


def _check_stmt(source: str, options=None, count: int = 24):
    harness = EffectHarness(options)
    stmt_v = parse_stmt(source)
    stmt_b, _hint = harness.translate_effect(
        lambda tr, builder: tr.trans_stmt(stmt_v, tr.record, builder)
    )
    verdict = check_statement_simulation(
        stmt_v,
        harness.viper_ctx,
        harness.states(count),
        harness.boogie_state_of,
        Cursor.from_stmt(stmt_b),
        None,
        harness.boogie_context(stmt_b),
        harness.rel(),
    )
    assert verdict.ok, f"{verdict.detail}\nstate: {verdict.viper_state!r}"


class TestInhaleSchemas:
    def test_pure(self):
        _check_inhale("n > 0")

    def test_pure_heap_dependent(self):
        _check_inhale("x.f > 0")

    def test_acc_literal_fastpath(self):
        _check_inhale("acc(x.f, 1/2)")

    def test_acc_full_literal(self):
        _check_inhale("acc(x.f, write)")

    def test_acc_variable_amount(self):
        _check_inhale("acc(x.f, p)")

    def test_acc_without_fastpath(self):
        _check_inhale("acc(x.f, 1/2)", TranslationOptions(literal_perm_fastpath=False))

    def test_sep_conjunction(self):
        _check_inhale("acc(x.f, 1/2) && x.f >= 0")

    def test_implication(self):
        _check_inhale("b ==> acc(x.f, 1/2)")

    def test_conditional(self):
        _check_inhale("b ? acc(x.f, 1/2) : n > 0")

    def test_aliasing_sum_exceeding_one(self):
        # x and y may alias; inhaling both halves twice can exceed 1.
        _check_inhale("acc(x.f, 2/3) && acc(y.f, 2/3)")


class TestRemcheckSchemas:
    def test_pure(self):
        _check_remcheck("n > 0")

    def test_pure_heap_dependent(self):
        _check_remcheck("x.f >= 0")

    def test_acc_literal(self):
        _check_remcheck("acc(x.f, 1/2)")

    def test_acc_variable_amount(self):
        _check_remcheck("acc(x.f, p)")

    def test_two_state_evaluation(self):
        # The wd check of x.f consults WM, not the reduced mask M.
        _check_remcheck("acc(x.f, write) && x.f >= 0")

    def test_implication(self):
        _check_remcheck("b ==> acc(x.f, 1/2)")

    def test_conditional(self):
        _check_remcheck("b ? acc(x.f, 1/2) : acc(y.f, 1/2)")

    def test_aliasing_double_removal(self):
        _check_remcheck("acc(x.f, 1/2) && acc(y.f, 1/2)")


class TestExhaleSchemas:
    def test_exhale_with_havoc(self):
        _check_exhale("acc(x.f, write)")

    def test_exhale_partial_keeps_values(self):
        _check_exhale("acc(x.f, 1/2)")

    def test_exhale_pure_omits_havoc(self):
        _check_exhale("n > 0 ==> n >= 0")

    def test_exhale_variable_amount(self):
        _check_exhale("acc(x.f, p)")

    def test_exhale_conjunction(self):
        _check_exhale("acc(x.f, 1/2) && x.f >= 0", count=18)


class TestStatementSchemas:
    def test_local_assign(self):
        _check_stmt("r := n + 1")

    def test_local_assign_heap_dependent(self):
        _check_stmt("r := x.f")

    def test_field_assign(self):
        _check_stmt("x.f := n")

    def test_field_assign_heap_rhs(self):
        _check_stmt("x.f := y.f + 1")

    def test_var_decl(self):
        _check_stmt("var t: Int")

    def test_if_statement(self):
        _check_stmt("if (b) { r := 1 } else { r := 2 }")

    def test_if_heap_condition(self):
        _check_stmt("if (x.f > 0) { r := 1 }")

    def test_assert_statement_keeps_mask(self):
        _check_stmt("assert acc(x.f, 1/2)")

    def test_assert_pure(self):
        _check_stmt("assert n == n")

    def test_sequence(self):
        _check_stmt("r := 1 r := r + n")

    def test_inhale_exhale_roundtrip(self):
        _check_stmt("inhale acc(x.f, 1/2) exhale acc(x.f, 1/2)", count=16)
