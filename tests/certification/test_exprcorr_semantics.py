"""Property tests: the kernel's expression correspondence is semantically
faithful.

Two properties over randomly generated well-typed expressions and sampled
related state pairs:

1. **Value correspondence** — if the Viper evaluation of ``e`` is defined,
   the Boogie evaluation of the kernel's ``R(e)`` in the related state
   yields the corresponding value.
2. **Well-definedness correspondence** — the kernel's wd-check commands all
   hold in the related Boogie state *iff* ``e`` is well-defined in the
   Viper state.

Together these justify the kernel's use of expression correspondence inside
every atomic schema (the INH-PURE / RC-PURE / ASSIGN leaves).
"""

from hypothesis import given, settings

from repro.boogie.semantics import eval_bexpr
from repro.boogie.values import BVBool
from repro.certification.exprcorr import kernel_translate_expr, kernel_wd_checks
from repro.frontend.background import values_correspond
from repro.viper.ast import Type
from repro.viper.semantics import eval_expr, ILL_DEFINED

from tests.certification.simharness import EffectHarness
from tests.strategies import expr_of

_HARNESS = EffectHarness()
_STATES = _HARNESS.states(count=12, seed=7)
_CTX_B = _HARNESS.boogie_context(())

# The strategy environment uses different field names than the scaffold;
# rebuild states with the scaffold's env but the strategy's variables all
# exist in the scaffold (x, y, n, b, p) except 'm' — map it to 'n'.
_RENAME = {"m": "n"}


def _adapt(expr):
    from repro.viper.ast import substitute_expr, Var

    return substitute_expr(expr, {"m": Var("n"), "g": Var("n")})


def _check_value_correspondence(expr):
    expr = _adapt(expr)
    record = _HARNESS.record
    boogie_expr = kernel_translate_expr(expr, record, _HARNESS.field_types)
    for sigma in _STATES:
        viper_result = eval_expr(expr, sigma)
        if viper_result is ILL_DEFINED:
            continue
        sigma_b = _HARNESS.boogie_state_of(sigma)
        boogie_result = eval_bexpr(boogie_expr, sigma_b, _CTX_B)
        assert values_correspond(viper_result, boogie_result), (
            f"{expr!r}: Viper {viper_result!r} vs Boogie {boogie_result!r} "
            f"in {sigma!r}"
        )


def _check_wd_correspondence(expr):
    expr = _adapt(expr)
    record = _HARNESS.record
    checks = kernel_wd_checks(expr, record, _HARNESS.field_types)
    for sigma in _STATES:
        sigma_b = _HARNESS.boogie_state_of(sigma)
        all_pass = all(
            eval_bexpr(check.expr, sigma_b, _CTX_B) == BVBool(True)
            for check in checks
        )
        well_defined = eval_expr(expr, sigma) is not ILL_DEFINED
        assert all_pass == well_defined, (
            f"{expr!r}: wd checks {'pass' if all_pass else 'fail'} but Viper "
            f"evaluation is {'defined' if well_defined else 'ill-defined'} "
            f"in {sigma!r}"
        )


@given(expr_of(Type.INT, 3))
@settings(max_examples=60, deadline=None)
def test_int_expression_values_correspond(expr):
    _check_value_correspondence(expr)


@given(expr_of(Type.BOOL, 3))
@settings(max_examples=60, deadline=None)
def test_bool_expression_values_correspond(expr):
    _check_value_correspondence(expr)


@given(expr_of(Type.PERM, 3))
@settings(max_examples=40, deadline=None)
def test_perm_expression_values_correspond(expr):
    _check_value_correspondence(expr)


@given(expr_of(Type.INT, 3))
@settings(max_examples=60, deadline=None)
def test_int_expression_wd_checks_correspond(expr):
    _check_wd_correspondence(expr)


@given(expr_of(Type.BOOL, 3))
@settings(max_examples=60, deadline=None)
def test_bool_expression_wd_checks_correspond(expr):
    _check_wd_correspondence(expr)


class TestDirectedCases:
    """Hand-picked boundary cases alongside the random sweep."""

    def test_division_wd_guard(self):
        from repro.viper.parser import parse_expr

        _check_wd_correspondence(parse_expr("10 \\ n"))

    def test_guarded_heap_read(self):
        from repro.viper.parser import parse_expr

        _check_wd_correspondence(parse_expr("b ==> x.f > 0"))
        _check_wd_correspondence(parse_expr("b && x.f > 0"))
        _check_wd_correspondence(parse_expr("b || x.f > 0"))

    def test_conditional_branch_wd(self):
        from repro.viper.parser import parse_expr

        _check_wd_correspondence(parse_expr("b ? x.f : n"))

    def test_nested_heap_reads(self):
        from repro.viper.parser import parse_expr

        _check_value_correspondence(parse_expr("x.f + y.f"))
        _check_wd_correspondence(parse_expr("x.f + y.f"))

    def test_null_comparison(self):
        from repro.viper.parser import parse_expr

        _check_value_correspondence(parse_expr("x == null"))
