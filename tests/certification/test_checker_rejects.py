"""Adversarial tests: the kernel must reject anything unsound.

The checker is the trusted base; these tests simulate (a) translator bugs
(corrupted Boogie output), (b) lying hints / tactics (wrong rule choices,
wrong side-condition claims), and (c) record corruption.  Every case must
be *rejected* — acceptance of any of them would be a kernel soundness bug.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.boogie.ast import (
    Assign,
    Assume,
    BAssert,
    BBinOp,
    BBinOpKind,
    BIntLit,
    BIf,
    BoogieProgram,
    BRealLit,
    BVar,
    Procedure,
    StmtBlock,
    TRUE,
)
from repro.certification import (
    check_program_certificate,
    generate_program_certificate,
)
from repro.certification.checker import ProofChecker
from repro.certification.prooftree import (
    MethodCertificate,
    node,
    ProgramCertificate,
    ProofNode,
)
from repro.frontend import translate_program, TranslationOptions
from tests.helpers import parsed

SOURCE = """
field f: Int

method callee(x: Ref)
  requires acc(x.f, 1/2) && x.f > 0
  ensures acc(x.f, 1/2)
{ assert true }

method m(x: Ref, p: Perm) returns (r: Int)
  requires acc(x.f, write) && p > none
  ensures acc(x.f, 1/2)
{
  x.f := 3
  r := x.f
  callee(x)
  exhale acc(x.f, 1/2) && x.f == 3
  inhale acc(x.f, 1/2)
}
"""


def setup():
    program, info = parsed(SOURCE)
    result = translate_program(program, info)
    cert = generate_program_certificate(result)
    return result, cert


def assert_rejected(result, cert, fragment: str = ""):
    report = check_program_certificate(result, cert)
    assert not report.ok
    if fragment:
        assert fragment in report.error, report.error
    return report


def _map_body(proc: Procedure, transform) -> Procedure:
    def walk(stmt):
        blocks = []
        for block in stmt:
            cmds = tuple(transform(c) for c in block.cmds)
            ifopt = block.ifopt
            if ifopt is not None:
                ifopt = BIf(ifopt.cond, walk(ifopt.then), walk(ifopt.otherwise))
            blocks.append(StmtBlock(cmds, ifopt))
        return tuple(blocks)

    return Procedure(proc.name, proc.locals, walk(proc.body))


def _with_procedure(result, proc: Procedure):
    procedures = tuple(
        proc if p.name == proc.name else p
        for p in result.boogie_program.procedures
    )
    program = replace(result.boogie_program, procedures=procedures)
    return replace(result, boogie_program=program)


class TestCorruptedTranslations:
    def test_swapped_literal(self):
        result, cert = setup()

        def fix_expr(expr):
            from repro.boogie.ast import FuncApp

            if expr == BIntLit(3):
                return BIntLit(4)
            if isinstance(expr, FuncApp):
                return FuncApp(
                    expr.name, expr.type_args, tuple(fix_expr(a) for a in expr.args)
                )
            if isinstance(expr, BBinOp):
                return BBinOp(expr.op, fix_expr(expr.left), fix_expr(expr.right))
            return expr

        def transform(cmd):
            if isinstance(cmd, Assign):
                return Assign(cmd.target, fix_expr(cmd.rhs))
            if isinstance(cmd, BAssert):
                return BAssert(fix_expr(cmd.expr))
            return cmd

        proc = _map_body(result.boogie_program.procedure("m_m"), transform)
        assert_rejected(_with_procedure(result, proc), cert, "mismatch")

    def test_dropped_permission_check(self):
        result, cert = setup()
        dropped = []

        def transform(cmd):
            if isinstance(cmd, BAssert) and not dropped:
                dropped.append(cmd)
                return Assume(TRUE)
            return cmd

        proc = _map_body(result.boogie_program.procedure("m_m"), transform)
        assert_rejected(_with_procedure(result, proc), cert)

    def test_assert_weakened_to_assume(self):
        result, cert = setup()

        def transform(cmd):
            if isinstance(cmd, BAssert):
                return Assume(cmd.expr)
            return cmd

        proc = _map_body(result.boogie_program.procedure("m_m"), transform)
        assert_rejected(_with_procedure(result, proc), cert)

    def test_wrong_mask_variable(self):
        result, cert = setup()

        def transform(cmd):
            if isinstance(cmd, Assign) and cmd.target == "M":
                return Assign("H", cmd.rhs)
            return cmd

        proc = _map_body(result.boogie_program.procedure("m_m"), transform)
        assert_rejected(_with_procedure(result, proc), cert)

    def test_missing_procedure(self):
        result, cert = setup()
        program = replace(
            result.boogie_program,
            procedures=tuple(
                p for p in result.boogie_program.procedures if p.name != "m_m"
            ),
        )
        assert_rejected(replace(result, boogie_program=program), cert)

    def test_truncated_body(self):
        result, cert = setup()
        proc = result.boogie_program.procedure("m_m")
        truncated = Procedure(proc.name, proc.locals, proc.body[:1])
        assert_rejected(_with_procedure(result, truncated), cert)


class TestLyingHints:
    def _rewrite_nodes(self, proof: ProofNode, rewrite) -> ProofNode:
        new = rewrite(proof)
        return ProofNode(
            new.rule,
            new.params,
            tuple(self._rewrite_nodes(p, rewrite) for p in new.premises),
        )

    def _mutate_cert(self, cert: ProgramCertificate, method: str, rewrite):
        methods = []
        for mc in cert.methods:
            if mc.method == method and mc.body_proof is not None:
                mc = replace(mc, body_proof=self._rewrite_nodes(mc.body_proof, rewrite))
            methods.append(mc)
        return ProgramCertificate(tuple(methods))

    def test_claiming_fastpath_against_temp_based_code(self):
        # Translate without the fast path (temp-based encoding), then lie
        # that the fast path was taken: the side condition holds (the amount
        # is a positive literal) but the commands do not match the schema.
        program, info = parsed(SOURCE)
        result = translate_program(
            program, info, TranslationOptions(literal_perm_fastpath=False)
        )
        cert = generate_program_certificate(result)

        def rewrite(proof):
            if proof.rule == "RC-ACC-ATOM" and proof.param("perm_temp"):
                return node("RC-ACC-ATOM", proof.premises, perm_temp=None)
            return proof

        bad = self._mutate_cert(cert, "m", rewrite)
        assert_rejected(result, bad)

    def test_wrong_aux_variable_name(self):
        result, cert = setup()

        def rewrite(proof):
            if proof.rule == "EXH-SIM" and proof.param("wm"):
                return ProofNode(
                    "EXH-SIM",
                    tuple(
                        (k, "WM_wrong" if k == "wm" else v) for k, v in proof.params
                    ),
                    proof.premises,
                )
            return proof

        bad = self._mutate_cert(cert, "m", rewrite)
        assert_rejected(result, bad)

    def test_aux_variable_aliasing_the_record(self):
        # Claiming M itself as the scratch variable must be rejected even
        # if commands were crafted to match.
        result, cert = setup()

        def rewrite(proof):
            if proof.rule == "EXH-SIM" and proof.param("wm"):
                return ProofNode(
                    "EXH-SIM",
                    tuple((k, "M" if k == "wm" else v) for k, v in proof.params),
                    proof.premises,
                )
            return proof

        bad = self._mutate_cert(cert, "m", rewrite)
        assert_rejected(result, bad)

    def test_omitting_havoc_despite_acc(self):
        result, cert = setup()

        def rewrite(proof):
            if proof.rule == "EXH-SIM":
                return ProofNode(
                    "EXH-SIM",
                    tuple((k, None if k == "havoc" else v) for k, v in proof.params),
                    proof.premises,
                )
            return proof

        bad = self._mutate_cert(cert, "m", rewrite)
        assert_rejected(result, bad)

    def test_wrong_rule_for_statement(self):
        result, cert = setup()

        def rewrite(proof):
            if proof.rule == "FIELD-ASSIGN-SIM":
                return node("ASSIGN-SIM")
            return proof

        bad = self._mutate_cert(cert, "m", rewrite)
        assert_rejected(result, bad)


class TestWdOmissionPolicy:
    def test_wd_omission_outside_call_context_rejected(self):
        """An INHALE-STMT-SIM claiming with_wd=False outside a call has no
        non-local hypothesis to justify it — the Q discipline of Sec. 4.2."""
        result, cert = setup()

        def rewrite(proof):
            if proof.rule == "INHALE-STMT-SIM" and proof.param("with_wd") is True:
                return ProofNode(
                    "INHALE-STMT-SIM",
                    (("with_wd", False),),
                    proof.premises,
                )
            return proof

        mutator = TestLyingHints()
        bad = mutator._mutate_cert(cert, "m", rewrite)
        assert_rejected(result, bad, "non-local")

    def test_dependencies_must_resolve(self):
        # A certificate whose call dependency points outside the program.
        source = """
        field f: Int
        method only(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
        { assert true }
        """
        program, info = parsed(source)
        result = translate_program(program, info)
        cert = generate_program_certificate(result)
        # Drop the callee's certificate from a two-method program instead:
        full_program, full_info = parsed(SOURCE)
        full_result = translate_program(full_program, full_info)
        full_cert = generate_program_certificate(full_result)
        partial = ProgramCertificate(
            tuple(c for c in full_cert.methods if c.method == "m")
        )
        report = check_program_certificate(full_result, partial)
        assert not report.ok
        assert "without certificates" in report.error or "unresolved" in report.error


class TestRecordCorruption:
    def test_swapped_variable_mapping(self):
        result, cert = setup()
        target = cert.certificate_for("m")
        var_map = dict(target.record.var_map)
        var_map["x"], var_map["p"] = var_map["p"], var_map["x"]
        bad_record = replace(target.record, var_map=var_map)
        bad_cert = ProgramCertificate(
            tuple(
                replace(c, record=bad_record) if c.method == "m" else c
                for c in cert.methods
            )
        )
        assert_rejected(result, bad_cert)

    def test_wrong_heap_variable(self):
        result, cert = setup()
        target = cert.certificate_for("m")
        bad_record = replace(target.record, heap_var="M")
        bad_cert = ProgramCertificate(
            tuple(
                replace(c, record=bad_record) if c.method == "m" else c
                for c in cert.methods
            )
        )
        assert_rejected(result, bad_cert)
