"""Certification acceptance over the supported feature matrix.

Every program here must translate, generate a certificate, and have the
certificate accepted by the independent kernel — including under every
translation-option variant (the "diverse translations" of the paper).
"""

import pytest

from repro.certification import (
    certify_translation,
    check_program_certificate,
    generate_program_certificate,
    parse_program_certificate,
    render_program_certificate,
)
from repro.frontend import translate_program, TranslationOptions

from tests.helpers import parsed


def certifies(source: str, options: TranslationOptions = None) -> None:
    program, info = parsed(source)
    result = translate_program(program, info, options)
    cert, report = certify_translation(result)
    assert report.ok, report.error
    # The serialised form checks identically.
    reparsed = parse_program_certificate(render_program_certificate(cert))
    report2 = check_program_certificate(result, reparsed)
    assert report2.ok, report2.error


HEADER = "field f: Int\nfield g: Int\n"


class TestStatements:
    def test_assignments(self):
        certifies(HEADER + """
        method m(x: Ref, n: Int) returns (r: Int)
          requires acc(x.f, write) ensures acc(x.f, write)
        {
          r := n + 1
          x.f := r
          r := x.f
        }""")

    def test_scoped_variables(self):
        certifies(HEADER + """
        method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
        {
          var t: Int
          t := x.f
          var u: Bool
          u := t > 0
          if (u) { x.f := t }
        }""")

    def test_nested_conditionals(self):
        certifies(HEADER + """
        method m(n: Int) returns (r: Int) requires true ensures true
        {
          if (n > 0) {
            if (n > 10) { r := 2 } else { r := 1 }
          } else {
            r := 0
          }
        }""")

    def test_inhale_exhale_assert(self):
        certifies(HEADER + """
        method m(x: Ref) requires true ensures true
        {
          inhale acc(x.f, write) && x.f == 0
          assert acc(x.f, 1/2) && x.f >= 0
          exhale acc(x.f, write)
        }""")


class TestAssertions:
    def test_fractional_permissions(self):
        certifies(HEADER + """
        method m(x: Ref, p: Perm)
          requires acc(x.f, p) && p > none ensures acc(x.f, p)
        {
          exhale acc(x.f, p / 2)
          inhale acc(x.f, p / 2)
        }""")

    def test_implications_and_conditionals(self):
        certifies(HEADER + """
        method m(x: Ref, b: Bool)
          requires b ==> acc(x.f, 1/2)
          ensures b ? acc(x.f, 1/2) : true
        {
          assert b ==> x.f == x.f
        }""")

    def test_multi_field(self):
        certifies(HEADER + """
        method m(x: Ref, y: Ref)
          requires acc(x.f, write) && acc(y.g, 1/2)
          ensures acc(x.f, write) && acc(y.g, 1/2)
        {
          x.f := y.g + 1
        }""")

    def test_heap_dependent_spec_expressions(self):
        certifies(HEADER + """
        method m(x: Ref)
          requires acc(x.f, 1/2) && x.f > 0
          ensures acc(x.f, 1/2) && x.f > 0
        {
          assert x.f > 0
        }""")


class TestCalls:
    CALLS = HEADER + """
    method callee(x: Ref, k: Int) returns (out: Int)
      requires acc(x.f, 1/2) && x.f >= k
      ensures acc(x.f, 1/2) && out >= 0
    {
      out := x.f - k
    }

    method caller(a: Ref) returns (r: Int)
      requires acc(a.f, write) ensures acc(a.f, write)
    {
      var zero: Int
      zero := 0
      a.f := 5
      r := callee(a, zero)
      assert r == r
    }
    """

    def test_call_with_optimised_wd_omission(self):
        certifies(self.CALLS)

    def test_call_with_wd_checks_enabled(self):
        certifies(self.CALLS, TranslationOptions(wd_checks_at_calls=True))

    def test_chained_calls_build_dependency_chain(self):
        source = HEADER + """
        method a(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2) { assert true }
        method b(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2) { a(x) }
        method c(x: Ref) requires acc(x.f, write) ensures acc(x.f, write) { b(x) }
        """
        program, info = parsed(source)
        result = translate_program(program, info)
        cert, report = certify_translation(result)
        assert report.ok
        assert report.method_reports["b"].dependencies == ("a",)
        assert report.method_reports["c"].dependencies == ("b",)

    def test_call_to_abstract_method(self):
        certifies(HEADER + """
        method ext(x: Ref) returns (y: Int)
          requires acc(x.f, 1/2) ensures acc(x.f, 1/2) && y >= 0

        method caller(a: Ref) requires acc(a.f, write) ensures acc(a.f, write)
        {
          var r: Int
          r := ext(a)
        }""")

    def test_multi_target_call(self):
        certifies(HEADER + """
        method pair(x: Ref) returns (a: Int, b: Int)
          requires acc(x.f, 1/2) ensures acc(x.f, 1/2) && a <= b
        {
          a := x.f
          b := x.f
        }
        method caller(q: Ref) requires acc(q.f, write) ensures acc(q.f, write)
        {
          var u: Int
          var v: Int
          u, v := pair(q)
          assert u <= v
        }""")


class TestOptionVariants:
    SOURCE = HEADER + """
    method m(x: Ref, p: Perm)
      requires acc(x.f, write) && p > none
      ensures acc(x.f, 1/2)
    {
      exhale acc(x.f, 1/4)
      inhale acc(x.f, 1/4)
      exhale acc(x.f, 1/2)
    }
    """

    @pytest.mark.parametrize("fastpath", [True, False])
    @pytest.mark.parametrize("always_havoc", [True, False])
    def test_all_variants_certify(self, fastpath, always_havoc):
        certifies(
            self.SOURCE,
            TranslationOptions(
                literal_perm_fastpath=fastpath,
                always_emit_exhale_havoc=always_havoc,
            ),
        )


class TestFailingProgramsStillCertify:
    """Certification is about the translation, not program correctness:
    an incorrect program must still get a valid certificate (the paper's
    *-fail benchmark files)."""

    def test_failing_assert(self):
        certifies(HEADER + """
        method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
        { x.f := 1 assert x.f == 2 }""")

    def test_failing_wd(self):
        certifies(HEADER + """
        method m(x: Ref) requires true ensures true
        { assert x.f > 0 }""")

    def test_failing_post(self):
        certifies(HEADER + """
        method m(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, write)
        { assert true }""")
