"""Semantic validation of the instantiation-independent rules (Sec. 3.3).

The paper proves generic composition (COMP, Fig. 5), Boogie-propagation
(BPROP, Fig. 5), and consequence (CONS, Fig. 13) lemmas once and for all.
Here each rule is validated on concrete instantiations: the premises are
established by the bounded simulation checkers, and the conclusion is
checked independently — a rule whose conclusion failed while its premises
held would be unsound.
"""

import pytest

from repro.boogie.cursor import Cursor
from repro.certification.relations import SimRel
from repro.certification.simulation import (
    check_statement_simulation,
    run_boogie_region,
)
from repro.viper import parse_stmt
from repro.viper.ast import Seq

from tests.certification.simharness import EffectHarness


class TestCompRule:
    """COMP: simulations of s1 (γ0→γ1) and s2 (γ1→γ2) compose to Seq(s1,s2)
    (γ0→γ2)."""

    CASES = [
        ("r := n + 1", "r := r * 2"),
        ("x.f := n", "r := x.f"),
        ("inhale acc(x.f, 1/2)", "exhale acc(x.f, 1/2)"),
        ("assert n == n", "if (b) { r := 1 } else { r := 2 }"),
    ]

    @pytest.mark.parametrize("first_src,second_src", CASES)
    def test_composition(self, first_src, second_src):
        harness = EffectHarness()
        first = parse_stmt(first_src)
        second = parse_stmt(second_src)
        from repro.frontend.translator import _StmtBuilder

        builder = _StmtBuilder()
        harness.translator.trans_stmt(first, harness.record, builder)
        first_code = builder.build()
        builder2 = _StmtBuilder()
        harness.translator.trans_stmt(second, harness.record, builder2)
        second_code = builder2.build()
        combined = first_code + second_code
        states = harness.states(18)
        ctx = harness.boogie_context(combined)
        entry = Cursor.from_stmt(combined)
        # γ1: the intermediate point — the start of second_code with the
        # rest as continuation; by cursor normalisation this is exactly the
        # point reached after first_code.
        middle = Cursor.from_stmt(second_code)

        # Premise 1: s1 from entry to the intermediate point (checked on
        # its own region; cursor equality makes the chaining meaningful).
        premise1 = check_statement_simulation(
            first, harness.viper_ctx, states, harness.boogie_state_of,
            Cursor.from_stmt(first_code), None, harness.boogie_context(first_code),
            harness.rel(),
        )
        assert premise1.ok, premise1.detail
        # Premise 2: s2 on its own region.
        premise2 = check_statement_simulation(
            second, harness.viper_ctx, states, harness.boogie_state_of,
            middle, None, harness.boogie_context(second_code), harness.rel(),
        )
        assert premise2.ok, premise2.detail
        # Conclusion: Seq(s1, s2) over the concatenated region.
        conclusion = check_statement_simulation(
            Seq(first, second), harness.viper_ctx, states, harness.boogie_state_of,
            entry, None, ctx, harness.rel(),
        )
        assert conclusion.ok, (
            f"COMP conclusion failed though premises held: {conclusion.detail}"
        )


class TestBPropRule:
    """BPROP: auxiliary Boogie code that does not touch the Viper-tracked
    state is a stuttering step — prepending it preserves the simulation."""

    AUX_SOURCES = [
        "assume GoodMask(M);",
        "aux_i := 42;",
        "havoc aux_i;",
        "assume v_n == v_n;",
    ]

    @pytest.mark.parametrize("aux_source", AUX_SOURCES)
    def test_stuttering_prefix(self, aux_source):
        from repro.boogie.parser import parse_boogie_program

        harness = EffectHarness()
        stmt = parse_stmt("r := n + 1")
        from repro.frontend.translator import _StmtBuilder

        builder = _StmtBuilder()
        harness.translator.trans_stmt(stmt, harness.record, builder)
        code = builder.build()
        aux_program = parse_boogie_program(
            "procedure aux() {\n" + aux_source + "\n}"
        )
        aux_cmds = aux_program.procedure("aux").body[0].cmds
        from repro.boogie.ast import StmtBlock

        combined = (StmtBlock(aux_cmds, None),) + code
        ctx = harness.boogie_context(combined)
        from repro.boogie.ast import INT

        ctx.var_types["aux_i"] = INT

        def boogie_state_of(sigma):
            from repro.boogie.values import BVInt

            return harness.boogie_state_of(sigma).set("aux_i", BVInt(0))

        verdict = check_statement_simulation(
            stmt, harness.viper_ctx, harness.states(15), boogie_state_of,
            Cursor.from_stmt(combined), None, ctx, harness.rel(),
        )
        assert verdict.ok, verdict.detail


class TestConsRule:
    """CONS: a simulation proved for a *stronger* output relation also
    holds for any weaker one (here: the full relation vs ignoring the
    store) — the weakening direction of Fig. 13."""

    def test_output_relation_weakening(self):
        harness = EffectHarness()
        stmt = parse_stmt("x.f := n")
        from repro.frontend.translator import _StmtBuilder

        builder = _StmtBuilder()
        harness.translator.trans_stmt(stmt, harness.record, builder)
        code = builder.build()
        ctx = harness.boogie_context(code)
        states = harness.states(15)
        strong = check_statement_simulation(
            stmt, harness.viper_ctx, states, harness.boogie_state_of,
            Cursor.from_stmt(code), None, ctx, harness.rel(),
        )
        assert strong.ok
        # The weakening direction, checked by hand: every Boogie execution
        # related under the full relation is related under any conjunct of
        # it — here, bare mask agreement.
        from repro.certification.relations import mask_corresponds, rel_holds

        for sigma in states:
            outcomes = run_boogie_region(
                Cursor.from_stmt(code), None, harness.boogie_state_of(sigma), ctx
            )
            for region_outcome in outcomes:
                if region_outcome.kind != "reached":
                    continue
                if rel_holds(
                    SimRel(harness.record), sigma, sigma, region_outcome.state,
                    harness.field_types,
                ):
                    assert mask_corresponds(
                        sigma, region_outcome.state, harness.record.mask_var
                    )
