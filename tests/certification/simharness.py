"""Harness for validating simulation lemma schemas semantically.

Builds, for a single Viper effect (an assertion to inhale / remcheck /
exhale, or a statement), the Boogie code the translator emits for it *in
isolation*, an executable Boogie context over the standard interpretation,
and the canonical related-state constructor — everything the bounded
generic-simulation checkers of :mod:`repro.certification.simulation` need.

This is the reproduction's stand-in for the paper's once-and-for-all
Isabelle lemma proofs: each kernel schema is validated against the actual
semantics over exhaustive small samples.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.boogie.ast import BoogieProgram, GlobalVarDecl
from repro.boogie.cursor import Cursor
from repro.boogie.semantics import BoogieContext
from repro.certification.relations import boogie_state_for, SimRel
from repro.certification.simulation import (
    default_boogie_value,
    heap_havoc_hook,
    sample_viper_states,
)
from repro.frontend.background import (
    build_background,
    constant_valuation,
    HEAP_TYPE,
    MASK_TYPE,
    standard_interpretation,
)
from repro.frontend.translator import _MethodTranslator, _StmtBuilder, TranslationOptions
from repro.viper import check_program, parse_program, ViperContext
from repro.viper.ast import Type

#: The scaffold fixing variables and fields for effect-level tests.
SCAFFOLD_SOURCE = """
field f: Int
field g: Int

method scaffold(x: Ref, y: Ref, n: Int, b: Bool, p: Perm) returns (r: Int)
  requires true
  ensures true
{
  var t: Int
  t := 0
  r := t
}
"""


class EffectHarness:
    """Translate one effect and expose everything needed to check it."""

    def __init__(self, options: Optional[TranslationOptions] = None):
        self.program = parse_program(SCAFFOLD_SOURCE)
        self.type_info = check_program(self.program)
        self.field_types = self.type_info.field_types
        self.background = build_background(self.field_types)
        self.options = options or TranslationOptions()
        self.method = self.program.method("scaffold")
        self.translator = _MethodTranslator(
            self.program, self.type_info, self.background, self.method, self.options
        )
        self.record = self.translator.record
        self.viper_ctx = ViperContext(self.program, self.type_info, "scaffold")
        self.interp = standard_interpretation(self.field_types)
        self.consts = constant_valuation(self.background)

    def translate_effect(self, emit: Callable) -> Tuple[tuple, object]:
        """Run ``emit(translator, builder)`` and return (BStmt, hint)."""
        builder = _StmtBuilder()
        hint = emit(self.translator, builder)
        return builder.build(), hint

    def boogie_context(self, stmt) -> BoogieContext:
        var_types: Dict[str, object] = {
            g.name: g.typ
            for g in (
                GlobalVarDecl("H", HEAP_TYPE),
                GlobalVarDecl("M", MASK_TYPE),
            )
        }
        var_types.update(
            {c.name: c.typ for c in self.background.consts}
        )
        for name, typ in self.type_info.methods["scaffold"].var_types.items():
            from repro.frontend.records import boogie_type_of

            var_types[self.record.boogie_var(name)] = boogie_type_of(typ)
        for name, typ in self.translator._extra_locals:
            var_types[name] = typ
        program = BoogieProgram(
            type_decls=self.background.type_decls,
            consts=self.background.consts,
            globals=(GlobalVarDecl("H", HEAP_TYPE), GlobalVarDecl("M", MASK_TYPE)),
            functions=self.background.functions,
            axioms=self.background.axioms,
        )
        ctx = BoogieContext(program, self.interp, var_types)
        ctx.havoc_hook = heap_havoc_hook(self.field_types)
        return ctx

    def boogie_state_of(self, viper_state):
        extra = {
            name: default_boogie_value(typ)
            for name, typ in self.translator._extra_locals
        }
        return boogie_state_for(viper_state, self.record, self.consts, extra)

    def states(self, count: int = 30, seed: int = 0):
        """Diverse sampled Viper states over the scaffold's variables."""
        var_types = self.type_info.methods["scaffold"].var_types
        return sample_viper_states(var_types, self.field_types, count, seed)

    def rel(self) -> SimRel:
        return SimRel(self.record)
