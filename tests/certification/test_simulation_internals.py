"""Tests for the executable simulation machinery itself."""

from fractions import Fraction

import pytest

from repro.boogie.ast import (
    Assign,
    Assume,
    BAssert,
    beq,
    BIntLit,
    BoogieProgram,
    BVar,
    INT,
    single_block,
    TRUE,
    FALSE,
)
from repro.boogie.cursor import Cursor
from repro.boogie.semantics import BoogieContext
from repro.boogie.state import BoogieState
from repro.boogie.values import BVInt, FrozenMap, UValue
from repro.boogie.interp import Interpretation
from repro.certification.simulation import (
    default_boogie_value,
    heap_havoc_hook,
    run_boogie_region,
    sample_viper_states,
)
from repro.viper.ast import Type


def ctx_with(var_types):
    return BoogieContext(BoogieProgram(), Interpretation(), dict(var_types))


class TestRunBoogieRegion:
    def test_reached_at_exit_cursor(self):
        code = single_block(Assign("x", BIntLit(1)), Assign("x", BIntLit(2)))
        entry = Cursor.from_stmt(code)
        exit_cursor = entry.after_cmd()
        outcomes = run_boogie_region(
            entry, exit_cursor, BoogieState({"x": BVInt(0)}), ctx_with({"x": INT})
        )
        assert [o.kind for o in outcomes] == ["reached"]
        assert outcomes[0].state.lookup("x") == BVInt(1)

    def test_reached_at_end_with_none_exit(self):
        code = single_block(Assign("x", BIntLit(1)))
        outcomes = run_boogie_region(
            Cursor.from_stmt(code), None, BoogieState({"x": BVInt(0)}), ctx_with({"x": INT})
        )
        assert [o.kind for o in outcomes] == ["reached"]

    def test_failed_and_magic_kinds(self):
        failing = single_block(BAssert(FALSE))
        outcomes = run_boogie_region(
            Cursor.from_stmt(failing), None, BoogieState(), ctx_with({})
        )
        assert [o.kind for o in outcomes] == ["failed"]
        pruned = single_block(Assume(FALSE))
        outcomes = run_boogie_region(
            Cursor.from_stmt(pruned), None, BoogieState(), ctx_with({})
        )
        assert [o.kind for o in outcomes] == ["magic"]

    def test_escaped_when_exit_not_on_path(self):
        code = single_block(Assign("x", BIntLit(1)))
        other = single_block(Assign("x", BIntLit(9)))
        outcomes = run_boogie_region(
            Cursor.from_stmt(code),
            Cursor.from_stmt(other),
            BoogieState({"x": BVInt(0)}),
            ctx_with({"x": INT}),
        )
        assert [o.kind for o in outcomes] == ["escaped"]

    def test_enumerates_havoc_paths(self):
        from repro.boogie.ast import Havoc

        code = single_block(Havoc("x"))
        outcomes = run_boogie_region(
            Cursor.from_stmt(code), None, BoogieState({"x": BVInt(0)}), ctx_with({"x": INT})
        )
        assert len(outcomes) == len(Interpretation().int_sample)


class TestSampling:
    def test_states_are_consistent_and_diverse(self):
        states = sample_viper_states(
            {"x": Type.REF, "n": Type.INT}, {"f": Type.INT}, 30, seed=1
        )
        assert len(states) == 30
        assert all(s.is_consistent() for s in states)
        masks = {tuple(sorted(s.mask.items())) for s in states}
        assert len(masks) > 5

    def test_sampling_is_deterministic(self):
        a = sample_viper_states({"n": Type.INT}, {"f": Type.INT}, 5, seed=2)
        b = sample_viper_states({"n": Type.INT}, {"f": Type.INT}, 5, seed=2)
        assert a == b

    def test_default_boogie_values(self):
        from repro.frontend.background import HEAP_TYPE, MASK_TYPE
        from repro.frontend.records import REF_TYPE

        assert default_boogie_value(INT) == BVInt(0)
        assert default_boogie_value(HEAP_TYPE) == UValue("HeapType", FrozenMap())
        assert default_boogie_value(REF_TYPE) == UValue("Ref", 0)


class TestHeapHavocHook:
    def test_offers_current_heap_and_variants(self):
        hook = heap_havoc_hook({"f": Type.INT})
        from repro.frontend.background import HEAP_TYPE

        heap = UValue("HeapType", FrozenMap({(1, "f"): BVInt(5)}))
        mask = UValue("MaskType", FrozenMap({(1, "f"): Fraction(1)}))
        state = BoogieState({"H": heap, "M": mask})
        candidates = hook("HH_0", HEAP_TYPE, state, None)
        assert heap in candidates
        # (1, f) is permissioned; (2, f) is not, so variants rewrite it.
        assert any(
            isinstance(c, UValue) and c.payload.get((2, "f")) == BVInt(7)
            for c in candidates
        )
        # Permissioned locations are never rewritten by the variants.
        assert all(
            c.payload.get((1, "f")) == BVInt(5) or (1, "f") not in c.payload
            for c in candidates
        )

    def test_ignores_non_heap_types(self):
        hook = heap_havoc_hook({"f": Type.INT})
        assert hook("x", INT, BoogieState(), None) is None

    def test_covers_multi_location_havocs(self):
        hook = heap_havoc_hook({"f": Type.INT})
        from repro.frontend.background import HEAP_TYPE

        heap = UValue("HeapType", FrozenMap())
        mask = UValue("MaskType", FrozenMap())  # nothing permissioned
        state = BoogieState({"H": heap, "M": mask})
        candidates = hook("HH_0", HEAP_TYPE, state, None)
        # Pairs of unpermissioned locations appear rewritten together.
        assert any(
            (1, "f") in c.payload and (2, "f") in c.payload for c in candidates
        )
