"""Consistency between the rule catalog, the tactic, and the kernel."""

import inspect

import pytest

from repro.certification import checker as checker_module
from repro.certification.rules import render_catalog, rule_info, RULE_NAMES, RULES
from repro.certification import generate_program_certificate
from repro.frontend import translate_program, TranslationOptions

from tests.helpers import parsed

RICH_SOURCE = """
field f: Int

method callee(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
{ assert true }

method m(x: Ref, p: Perm, b: Bool) returns (r: Int)
  requires acc(x.f, write) && p > none
  ensures b ? acc(x.f, 1/2) : acc(x.f, 1/2)
{
  var t: Int
  t := 1
  x.f := t
  if (b) { r := x.f } else { r := 0 }
  callee(x)
  assert acc(x.f, 1/4) && (b ==> r == x.f)
  exhale b ==> acc(x.f, p/2)
  inhale b ==> acc(x.f, p/2)
}
"""


def emitted_rules():
    """Every rule name the tactic emits for a feature-rich program."""
    program, info = parsed(RICH_SOURCE)
    names = set()
    for options in (TranslationOptions(), TranslationOptions(literal_perm_fastpath=False)):
        result = translate_program(program, info, options)
        certificate = generate_program_certificate(result)

        def walk(node):
            names.add(node.rule)
            for premise in node.premises:
                walk(premise)

        for cert in certificate.methods:
            walk(cert.wf_proof)
            if cert.body_proof is not None:
                walk(cert.body_proof)
    return names


class TestCatalogConsistency:
    def test_tactic_emits_only_catalogued_rules(self):
        assert emitted_rules() <= RULE_NAMES

    def test_feature_rich_program_covers_most_of_the_catalog(self):
        missing = RULE_NAMES - emitted_rules()
        # Only SKIP-SIM (empty else branches are not Skip statements here)
        # may be absent from this particular program.
        assert missing <= {"SKIP-SIM"}, missing

    def test_checker_implements_every_catalogued_rule(self):
        source = inspect.getsource(checker_module)
        for name in RULE_NAMES:
            assert f'"{name}"' in source, f"checker never mentions {name}"

    def test_catalog_lookup(self):
        info = rule_info("EXH-SIM")
        assert info.kind == "statement"
        assert "wm" in info.params
        with pytest.raises(KeyError):
            rule_info("NO-SUCH-RULE")

    def test_every_atomic_rule_has_a_soundness_test(self):
        """Atomic schemas are the trusted leaves; each must be exercised by
        the semantic rule-soundness suite (which tests them through the
        effects that contain them)."""
        import pathlib

        soundness = pathlib.Path(__file__).parent / "test_rule_soundness.py"
        text = soundness.read_text()
        markers = {
            "INH-PURE-ATOM": "TestInhaleSchemas",
            "INH-ACC-ATOM": "test_acc_variable_amount",
            "RC-PURE-ATOM": "TestRemcheckSchemas",
            "RC-ACC-ATOM": "test_acc_literal",
            "ASSIGN-SIM": "test_local_assign",
            "FIELD-ASSIGN-SIM": "test_field_assign",
            "VAR-DECL-SIM": "test_var_decl",
            "SKIP-SIM": None,  # trivially sound: consumes no code
        }
        for rule in RULES:
            if not rule.atomic:
                continue
            marker = markers.get(rule.name)
            if marker is not None:
                assert marker in text, f"no soundness test marker for {rule.name}"

    def test_catalog_renders(self):
        text = render_catalog()
        for rule in RULES:
            assert rule.name in text
