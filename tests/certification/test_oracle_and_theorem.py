"""Tests for the semantic oracle and final-theorem assembly (Sec. 4.5)."""

import pytest

from repro.certification import certify_translation, check_program_certificate
from repro.certification.oracle import (
    validate_method_semantically,
    validate_program_semantically,
)
from repro.certification.relations import boogie_state_for, rel_holds, SimRel
from repro.frontend import translate_program, TranslationOptions
from repro.frontend.background import constant_valuation

from tests.helpers import parsed

PROGRAM = """
field f: Int

method ok(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := 2
  y := x.f
}

method wrong_post(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == 0
{
  x.f := 1
}

method wd_failure(x: Ref)
  requires true
  ensures true
{
  assert x.f >= 0
}

method missing_perm(x: Ref)
  requires acc(x.f, 1/2)
  ensures acc(x.f, 1/2)
{
  x.f := 1
}
"""


def translated():
    program, info = parsed(PROGRAM)
    return translate_program(program, info)


class TestOracle:
    def test_failure_direction_holds_for_all_methods(self):
        result = translated()
        verdicts = validate_program_semantically(result, max_states_per_method=12)
        for verdict in verdicts:
            assert verdict.ok, f"{verdict.method}: {verdict.detail}"

    def test_oracle_sees_viper_failures_for_wrong_methods(self):
        result = translated()
        verdict = validate_method_semantically(result, "wrong_post", max_states=12)
        assert verdict.ok
        assert verdict.viper_failures > 0

    def test_oracle_catches_a_broken_translation(self):
        """Drop the permission check of the field write: the translation is
        now unsound and the oracle must detect the missing Boogie failure."""
        from dataclasses import replace

        from repro.boogie.ast import Assume, BAssert, BIf, Procedure, StmtBlock, TRUE

        result = translated()

        def weaken(stmt):
            blocks = []
            for block in stmt:
                cmds = tuple(
                    Assume(TRUE) if isinstance(c, BAssert) else c for c in block.cmds
                )
                ifopt = block.ifopt
                if ifopt is not None:
                    ifopt = BIf(ifopt.cond, weaken(ifopt.then), weaken(ifopt.otherwise))
                blocks.append(StmtBlock(cmds, ifopt))
            return tuple(blocks)

        proc = result.boogie_program.procedure("m_missing_perm")
        broken = Procedure(proc.name, proc.locals, weaken(proc.body))
        procedures = tuple(
            broken if p.name == proc.name else p
            for p in result.boogie_program.procedures
        )
        bad_result = replace(
            result, boogie_program=replace(result.boogie_program, procedures=procedures)
        )
        verdict = validate_method_semantically(bad_result, "missing_perm", max_states=12)
        assert not verdict.ok

    def test_abstract_method_is_trivially_fine(self):
        program, info = parsed(
            "field f: Int\nmethod a(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)"
        )
        result = translate_program(program, info)
        verdict = validate_method_semantically(result, "a")
        assert verdict.ok


class TestRelations:
    def test_canonical_boogie_state_is_related(self):
        from repro.viper.state import zero_mask_state
        from repro.viper.values import VInt, VRef

        result = translated()
        record = result.methods["ok"].record
        consts = constant_valuation(result.background)
        state = zero_mask_state(
            {"x": VRef(1), "y": VInt(0)}, result.type_info.field_types
        )
        boogie_state = boogie_state_for(state, record, consts)
        assert rel_holds(
            SimRel(record), state, state, boogie_state, result.type_info.field_types
        )

    def test_relation_rejects_mismatched_store(self):
        from repro.viper.state import zero_mask_state
        from repro.viper.values import VInt, VRef
        from repro.boogie.values import BVInt

        result = translated()
        record = result.methods["ok"].record
        consts = constant_valuation(result.background)
        state = zero_mask_state(
            {"x": VRef(1), "y": VInt(0)}, result.type_info.field_types
        )
        boogie_state = boogie_state_for(state, record, consts).set("v_y", BVInt(9))
        assert not rel_holds(
            SimRel(record), state, state, boogie_state, result.type_info.field_types
        )

    def test_relation_requires_consistent_masks(self):
        from fractions import Fraction

        from repro.viper.state import ViperState
        from repro.viper.values import VRef

        result = translated()
        record = result.methods["ok"].record
        consts = constant_valuation(result.background)
        state = ViperState(
            store={"x": VRef(1)},
            mask={(1, "f"): Fraction(3, 2)},
            field_types=result.type_info.field_types,
        )
        boogie_state = boogie_state_for(state, record, consts)
        assert not rel_holds(
            SimRel(record), state, state, boogie_state, result.type_info.field_types
        )


class TestFinalTheorem:
    def test_theorem_statement_names_all_methods(self):
        result = translated()
        _cert, report = certify_translation(result)
        assert report.ok
        statement = report.statement()
        for name in ("ok", "wrong_post", "wd_failure", "missing_perm"):
            assert name in statement

    def test_rejected_certificate_statement(self):
        from repro.certification.theorem import TheoremReport

        report = TheoremReport(ok=False, error="boom")
        assert "REJECTED" in report.statement()

    def test_axiom_check_included(self):
        result = translated()
        _cert, report = certify_translation(result)
        assert report.axioms_ok
        assert report.boogie_typechecks

    def test_check_seconds_recorded(self):
        result = translated()
        _cert, report = certify_translation(result)
        assert report.check_seconds > 0

    def test_certified_and_semantically_validated_agree(self):
        """The capstone: certification (syntactic kernel) and the oracle
        (semantic co-execution) both accept the same translation."""
        result = translated()
        _cert, report = certify_translation(result)
        assert report.ok
        for verdict in validate_program_semantically(result, max_states_per_method=8):
            assert verdict.ok
