"""Tests for certificate representation and serialisation."""

import pytest

from repro.certification.prooftree import (
    CertificateParseError,
    MethodCertificate,
    node,
    parse_program_certificate,
    ProgramCertificate,
    ProofNode,
    render_method_certificate,
    render_program_certificate,
)
from repro.frontend.records import TranslationRecord


def sample_record():
    return TranslationRecord(
        var_map={"x": "v_x", "r": "v_r"},
        heap_var="H",
        mask_var="M",
        field_consts={"f": "field_f"},
    )


def sample_certificate():
    wf = node(
        "SPEC-WF-SIM",
        (
            node("INH-ACC-ATOM", perm_temp=None),
            node("INH-PURE-ATOM"),
        ),
    )
    body = node(
        "METHOD-BODY-SIM",
        (
            node("INHALE-STMT-SIM", (node("INH-ACC-ATOM", perm_temp="tmp_0"),), with_wd=True),
            node("SEQ-SIM", (node("ASSIGN-SIM"), node("SKIP-SIM"))),
            node("EXH-SIM", (node("RC-ACC-ATOM", perm_temp=None),), wm="WM_1", havoc="HH_2"),
        ),
    )
    cert = MethodCertificate(
        method="m",
        procedure="m_m",
        record=sample_record(),
        wf_proof=wf,
        body_proof=body,
        dependencies=("callee",),
    )
    return ProgramCertificate((cert,))


class TestProofNodes:
    def test_param_lookup(self):
        proof = node("EXH-SIM", wm="WM_0", havoc=None)
        assert proof.param("wm") == "WM_0"
        assert proof.param("havoc") is None
        assert proof.param("missing", 42) == 42

    def test_size_counts_all_nodes(self):
        proof = node("A", (node("B"), node("C", (node("D"),))))
        assert proof.size() == 4

    def test_params_are_sorted_for_determinism(self):
        a = node("R", x=1, y=2)
        b = node("R", y=2, x=1)
        assert a == b


class TestSerialisation:
    def test_roundtrip(self):
        cert = sample_certificate()
        text = render_program_certificate(cert)
        assert parse_program_certificate(text) == cert

    def test_rendered_format_is_line_oriented(self):
        text = render_program_certificate(sample_certificate())
        lines = text.splitlines()
        assert lines[0] == "CERTIFICATE-V1"
        assert any(line.startswith("method ") for line in lines)
        assert any("INH-ACC-ATOM" in line for line in lines)
        assert lines[-1] == "end-certificate"

    def test_param_encodings(self):
        proof = node(
            "R",
            flag=True,
            off=False,
            nothing=None,
            count=3,
            name="tmp_0",
            names=("a", "b"),
        )
        cert = ProgramCertificate(
            (
                MethodCertificate(
                    method="m",
                    procedure="p",
                    record=sample_record(),
                    wf_proof=proof,
                    body_proof=None,
                    dependencies=(),
                ),
            )
        )
        parsed = parse_program_certificate(render_program_certificate(cert))
        reparsed = parsed.methods[0].wf_proof
        assert reparsed.param("flag") is True
        assert reparsed.param("off") is False
        assert reparsed.param("nothing") is None
        assert reparsed.param("count") == 3
        assert reparsed.param("name") == "tmp_0"
        assert reparsed.param("names") == ("a", "b")

    def test_empty_tuple_param(self):
        proof = node("R", names=())
        cert = ProgramCertificate(
            (
                MethodCertificate(
                    method="m", procedure="p", record=sample_record(),
                    wf_proof=proof, body_proof=None, dependencies=(),
                ),
            )
        )
        parsed = parse_program_certificate(render_program_certificate(cert))
        assert parsed.methods[0].wf_proof.param("names") == ()

    def test_record_roundtrips(self):
        cert = sample_certificate()
        parsed = parse_program_certificate(render_program_certificate(cert))
        record = parsed.methods[0].record
        assert record.var_map == {"x": "v_x", "r": "v_r"}
        assert record.field_consts == {"f": "field_f"}
        assert record.heap_var == "H"

    def test_dependencies_roundtrip(self):
        parsed = parse_program_certificate(
            render_program_certificate(sample_certificate())
        )
        assert parsed.methods[0].dependencies == ("callee",)


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(CertificateParseError, match="header"):
            parse_program_certificate("method m\nend-method\n")

    def test_missing_wf_proof(self):
        text = "CERTIFICATE-V1\nmethod m\nprocedure p\nend-method\nend-certificate\n"
        with pytest.raises(CertificateParseError, match="wf-proof"):
            parse_program_certificate(text)

    def test_bad_parameter_syntax(self):
        text = (
            "CERTIFICATE-V1\nmethod m\nprocedure p\nwf-proof\n"
            "  RULE garbage\nend-method\nend-certificate\n"
        )
        with pytest.raises(CertificateParseError, match="parameter"):
            parse_program_certificate(text)

    def test_unexpected_line(self):
        text = "CERTIFICATE-V1\nmethod m\nwhatever\nend-method\nend-certificate\n"
        with pytest.raises(CertificateParseError):
            parse_program_certificate(text)
