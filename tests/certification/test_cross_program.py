"""Certificates are bound to both programs: swapping either side fails.

A certificate for (V, B) must not be accepted for (V', B) or (V, B') —
otherwise an attacker could reuse a valid certificate to "validate" a
different translation.
"""

from dataclasses import replace

from repro.certification import check_program_certificate, generate_program_certificate
from repro.frontend import translate_program

from tests.helpers import parsed

ORIGINAL = """
field f: Int
method m(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == 1
{ x.f := 1 }
"""

# Same shape, different constant — a distinct verification problem.
VARIANT = """
field f: Int
method m(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == 1
{ x.f := 2 }
"""


def _certified(source):
    program, info = parsed(source)
    result = translate_program(program, info)
    return result, generate_program_certificate(result)


class TestCrossProgramBinding:
    def test_certificate_rejected_for_different_viper_program(self):
        result_a, cert_a = _certified(ORIGINAL)
        result_b, _ = _certified(VARIANT)
        # cert_a against (V_b, B_a): the kernel re-derives expectations from
        # the Viper AST, so the body literal mismatch must surface.
        mixed = replace(result_a, viper_program=result_b.viper_program)
        report = check_program_certificate(mixed, cert_a)
        assert not report.ok

    def test_certificate_rejected_for_different_boogie_program(self):
        result_a, cert_a = _certified(ORIGINAL)
        result_b, _ = _certified(VARIANT)
        mixed = replace(result_a, boogie_program=result_b.boogie_program)
        report = check_program_certificate(mixed, cert_a)
        assert not report.ok

    def test_consistent_pair_still_accepted(self):
        result_a, cert_a = _certified(ORIGINAL)
        assert check_program_certificate(result_a, cert_a).ok

    def test_certificate_of_variant_accepts_variant(self):
        result_b, cert_b = _certified(VARIANT)
        assert check_program_certificate(result_b, cert_b).ok
