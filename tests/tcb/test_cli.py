"""The `repro tcb check` command: exit codes, JSON shape, --list-checks."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.tcb import ALL_TCB_CHECK_IDS

REPO = pathlib.Path(__file__).resolve().parents[2]
CORPUS = pathlib.Path(__file__).parent / "corpus"


def test_check_real_tree_exits_zero(capsys):
    assert main(["tcb", "check"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_check_json_shape(capsys):
    assert main(["tcb", "check", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["exit_code"] == 0
    assert payload["modules_checked"] >= 90
    assert payload["suppressed"] == 3
    assert len(payload["suppressions"]) == 3


def test_check_explicit_root_and_doc_flags(capsys):
    code = main([
        "tcb", "check",
        "--root", str(REPO / "src"),
        "--doc", str(REPO / "docs" / "TRUSTED_BASE.md"),
    ])
    assert code == 0


def test_check_corpus_exits_one_with_rendered_findings(capsys):
    code = main(["tcb", "check", "--root", str(CORPUS), "--no-doc"])
    assert code == 1
    out = capsys.readouterr().out
    assert "TB001" in out and "error" in out
    assert "app/kernel/core.py" in out


def test_check_unreadable_root_exits_two(tmp_path, capsys):
    assert main(["tcb", "check", "--root", str(tmp_path / "nope")]) == 2


def test_missing_doc_exits_two(tmp_path, capsys):
    code = main([
        "tcb", "check", "--root", str(CORPUS),
        "--doc", str(tmp_path / "missing.md"),
    ])
    assert code == 2


def test_list_checks_prints_the_catalog(capsys):
    assert main(["tcb", "check", "--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in ALL_TCB_CHECK_IDS:
        assert code in out


def test_tcb_requires_a_subcommand():
    with pytest.raises(SystemExit):
        main(["tcb"])
