"""Suppression hygiene: `tcb: allow` must justify itself, must match,
and must scope exactly like `// lint:ignore` in `repro.analysis.report`
— to the listed codes, on its own line, nothing wider.
"""

import pathlib
import textwrap

from repro.tcb.checks import TcbFinding
from repro.tcb.report import Suppression, apply_suppressions, scan_suppressions


def _scan(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return path, scan_suppressions(path)


def _finding(code, path, line):
    return TcbFinding(
        code=code, message="seeded", severity="error",
        path=str(path), line=line,
    )


# ---------------------------------------------------------------------------
# scanning
# ---------------------------------------------------------------------------


def test_marker_parses_codes_and_reason(tmp_path):
    _, found = _scan(
        tmp_path, 'X = 1  # tcb: allow[TB001, TB003] crossing is type-only\n'
    )
    assert len(found) == 1
    assert found[0].codes == ("TB001", "TB003")
    assert found[0].reason == "crossing is type-only"
    assert found[0].well_formed


def test_marker_without_reason_is_not_well_formed(tmp_path):
    _, found = _scan(tmp_path, "X = 1  # tcb: allow[TB001]\n")
    assert len(found) == 1
    assert not found[0].well_formed


def test_marker_without_codes_is_not_well_formed(tmp_path):
    _, found = _scan(tmp_path, "X = 1  # tcb: allow[] because reasons\n")
    assert len(found) == 1
    assert not found[0].well_formed


def test_markers_inside_docstrings_are_prose_not_exemptions(tmp_path):
    """The tcb package documents its own syntax; quoting the marker in a
    docstring (or any string literal) must not create a suppression."""
    _, found = _scan(tmp_path, '''
        """Docs: write ``# tcb: allow[TB001] reason`` on the import line."""
        TEXT = "# tcb: allow[TB002] also just a string"
        ''')
    assert found == []


# ---------------------------------------------------------------------------
# application & hygiene (mirrors `// lint:ignore` scoping)
# ---------------------------------------------------------------------------


def test_well_formed_marker_suppresses_listed_code_on_its_line(tmp_path):
    path, found = _scan(tmp_path, "X = 1  # tcb: allow[TB001] justified\n")
    findings = [_finding("TB001", path, 1)]
    kept, hygiene, suppressed = apply_suppressions(findings, found)
    assert kept == [] and hygiene == [] and suppressed == 1


def test_marker_does_not_suppress_other_lines(tmp_path):
    path, found = _scan(
        tmp_path, "X = 1  # tcb: allow[TB001] justified\nY = 2\n"
    )
    findings = [_finding("TB001", path, 2)]
    kept, hygiene, suppressed = apply_suppressions(findings, found)
    assert kept == findings and suppressed == 0
    assert [f.code for f in hygiene] == ["TB006"]  # the marker went stale


def test_marker_does_not_suppress_unlisted_codes(tmp_path):
    path, found = _scan(tmp_path, "X = 1  # tcb: allow[TB001] justified\n")
    findings = [_finding("TB001", path, 1), _finding("TB003", path, 1)]
    kept, hygiene, suppressed = apply_suppressions(findings, found)
    assert [f.code for f in kept] == ["TB003"]
    assert suppressed == 1 and hygiene == []


def test_malformed_marker_suppresses_nothing_and_is_a_finding(tmp_path):
    path, found = _scan(tmp_path, "X = 1  # tcb: allow[TB001]\n")
    findings = [_finding("TB001", path, 1)]
    kept, hygiene, suppressed = apply_suppressions(findings, found)
    assert kept == findings and suppressed == 0
    assert [f.code for f in hygiene] == ["TB006"]
    assert "no reason" in hygiene[0].message


def test_stale_marker_is_reported_with_its_position(tmp_path):
    path, found = _scan(
        tmp_path, "X = 1\nY = 2  # tcb: allow[TB004] stale but polite\n"
    )
    kept, hygiene, _ = apply_suppressions([], found)
    assert kept == []
    assert [(f.code, f.line) for f in hygiene] == [("TB006", 2)]
    assert "stale" in hygiene[0].message


def test_tb006_is_never_suppressible():
    """A marker listing TB006 cannot silence the hygiene checker: TB006
    findings are produced *after* matching, so they never hit a marker."""
    marker = Suppression(path="m.py", line=1, codes=("TB006",), reason="try me")
    kept, hygiene, suppressed = apply_suppressions([], [marker])
    assert suppressed == 0
    assert [f.code for f in hygiene] == ["TB006"]  # it only made itself stale


def test_one_line_two_markers_both_tracked(tmp_path):
    path, found = _scan(
        tmp_path,
        "X = 1  # tcb: allow[TB001] first\nY = 2  # tcb: allow[TB002] second\n",
    )
    findings = [_finding("TB001", path, 1), _finding("TB002", path, 2)]
    kept, hygiene, suppressed = apply_suppressions(findings, found)
    assert kept == [] and hygiene == [] and suppressed == 2
