"""The seeded-violation corpus: every TB check demonstrated exactly.

``tests/tcb/corpus/`` holds a small fixture package (``app``) whose
boundary violations are deliberate, plus a drifted inventory document.
The checker must report *exactly* the expected findings — same check
code, same file, same line, nothing else — which pins both detection
and precision for each of TB001–TB008 (the tcb analog of
``tests/analysis/test_corpus.py``).
"""

import pathlib

from repro.tcb import (
    ALL_TCB_CHECK_IDS,
    PolicyRule,
    TB_CHECKS,
    TrustPolicy,
    check_tree,
)

CORPUS = pathlib.Path(__file__).parent / "corpus"

CORPUS_POLICY = TrustPolicy(
    rules=(
        PolicyRule("app", "untrusted-but-checked"),
        PolicyRule("app.*", "untrusted-but-checked"),
        PolicyRule("app.kernel", "trusted"),
        PolicyRule("app.kernel.*", "trusted"),
        PolicyRule("app.metrics", "advisory"),
    ),
    forbidden_for_trusted=frozenset({"app.cache"}),
)

#: (code, path relative to the corpus, line) — the complete expected
#: output, in the checker's sorted order.
EXPECTED = [
    ("TB008", "TRUSTED_BASE.md", 8),     # app.ghost is not a module
    ("TB008", "TRUSTED_BASE.md", 9),     # app.cache filed under trusted
    ("TB008", "TRUSTED_BASE.md", 15),    # app.metrics covered by `app` (untrusted)
    ("TB002", "app/kernel/chain.py", 6),  # reaches app.cache via store
    ("TB003", "app/kernel/chain.py", 6),  # reaches app.metrics via store
    ("TB005", "app/kernel/core.py", 7),   # import random
    ("TB001", "app/kernel/core.py", 10),  # imports the untrusted tactic
    ("TB005", "app/kernel/core.py", 14),  # time.monotonic() in a branch
    ("TB005", "app/kernel/core.py", 16),  # os.getenv
    ("TB004", "app/kernel/core.py", 18),  # eval
    ("TB001", "app/kernel/store.py", 6),  # direct import of app.cache
    ("TB002", "app/kernel/store.py", 6),  # ... which is also forbidden machinery
    ("TB003", "app/kernel/store.py", 7),  # advisory metrics import (TB001 there
                                          # is suppressed; TB003 is not covered
                                          # by the marker's code list)
    ("TB007", "app/mislabeled.py", 1),    # docstring says trusted, policy differs
    ("TB006", "app/suppressed.py", 6),    # marker without a reason
    ("TB006", "app/suppressed.py", 8),    # well-formed but stale marker
    ("TB007", "app/unannotated.py", 1),   # no Trust: line at all
]


def _run():
    return check_tree(
        CORPUS, policy=CORPUS_POLICY, doc_path=CORPUS / "TRUSTED_BASE.md"
    )


def test_corpus_reports_exactly_the_seeded_violations():
    result = _run()
    assert result.error is None
    actual = [
        (f.code, str(pathlib.Path(f.path).relative_to(CORPUS)), f.line)
        for f in result.findings
    ]
    assert actual == EXPECTED, "\n".join(f.render() for f in result.findings)
    assert result.exit_code == 1


def test_corpus_covers_every_tb_check_id():
    covered = {code for code, _, _ in EXPECTED}
    assert covered == set(ALL_TCB_CHECK_IDS), (
        f"corpus misses checks: {sorted(set(ALL_TCB_CHECK_IDS) - covered)}"
    )


def test_corpus_severities_match_catalog():
    for finding in _run().findings:
        assert finding.severity == TB_CHECKS[finding.code].severity


def test_the_one_well_formed_matching_suppression_fires():
    """store.py's metrics import carries ``tcb: allow[TB001] reason`` —
    that TB001 (and only it) must be suppressed."""
    result = _run()
    assert result.suppressed == 1
    # The suppressed edge is still followed transitively: chain.py's TB003
    # through the very same import survives.
    assert ("TB003", 6) in [
        (f.code, f.line)
        for f in result.findings
        if f.path.endswith("chain.py")
    ]


def test_transitive_findings_render_the_import_chain():
    result = _run()
    chain_msgs = [
        f.message for f in result.findings
        if f.code == "TB002" and f.path.endswith("chain.py")
    ]
    assert chain_msgs and (
        "app.kernel.chain -> app.kernel.store -> app.cache" in chain_msgs[0]
    )
