"""Unit tests for the trust policy: pattern matching, specificity, the
docstring `Trust:` line parser, and the status alias."""

import pytest

from repro.tcb.policy import (
    DEFAULT_POLICY,
    PolicyRule,
    TrustPolicy,
    normalize_status,
    parse_trust_line,
)


def test_exact_beats_wildcard():
    policy = TrustPolicy(rules=(
        PolicyRule("a.*", "trusted"),
        PolicyRule("a.b", "advisory"),
    ))
    assert policy.status_of("a.b") == "advisory"
    assert policy.status_of("a.c") == "trusted"


def test_deeper_wildcard_beats_shallower():
    policy = TrustPolicy(rules=(
        PolicyRule("a.*", "untrusted-but-checked"),
        PolicyRule("a.b.*", "trusted"),
    ))
    assert policy.status_of("a.b.c") == "trusted"
    assert policy.status_of("a.x") == "untrusted-but-checked"


def test_wildcard_covers_strict_descendants_only():
    policy = TrustPolicy(rules=(PolicyRule("a.*", "trusted"),))
    assert policy.status_of("a.b") == "trusted"
    assert policy.status_of("a") is None


def test_bad_status_rejected_at_construction():
    with pytest.raises(ValueError):
        PolicyRule("a", "semi-trusted")


def test_unmatched_and_dead_patterns():
    policy = TrustPolicy(rules=(
        PolicyRule("a", "trusted"),
        PolicyRule("ghost.*", "advisory"),
    ))
    assert policy.unmatched(["a", "b"]) == ["b"]
    assert policy.dead_patterns(["a", "b"]) == ["ghost.*"]


def test_trust_line_parsing_and_alias():
    doc = "Summary line.\n\nTrust: **untrusted** infrastructure — scheduling.\n"
    assert parse_trust_line(doc) == "untrusted"
    assert normalize_status("untrusted") == "untrusted-but-checked"
    assert normalize_status("trusted") == "trusted"
    assert normalize_status("load-bearing") is None
    assert parse_trust_line("no annotation") is None
    assert parse_trust_line(None) is None


def test_default_policy_statuses_spot_checks():
    spot = {
        "repro.certification.checker": "trusted",
        "repro.certification.tactic": "untrusted-but-checked",
        "repro.certification.oracle": "advisory",
        "repro.frontend.translator": "untrusted-but-checked",
        "repro.frontend.records": "trusted",
        "repro.viper.pretty": "untrusted-but-checked",
        "repro.viper.semantics": "trusted",
        "repro.tcb.checks": "advisory",
        "repro.pipeline.cache": "untrusted-but-checked",
    }
    for module, status in spot.items():
        assert DEFAULT_POLICY.status_of(module) == status, module


def test_default_policy_forbids_the_cache_modules():
    assert DEFAULT_POLICY.forbidden_for_trusted == {
        "repro.pipeline.cache",
        "repro.pipeline.units",
        "repro.service.diskcache",
    }
