"""The boundary holds on the real source tree — and breaking it fails.

The first test is the enforcement point: `python -m pytest` fails on a
trust-boundary violation in `src/repro` even without the CI `tcb-check`
job.  The remaining tests check the checker's teeth by mutating a copy
of the tree: adding a forbidden import to a kernel module, or deleting
a `Trust:` line, must produce findings.
"""

import pathlib
import shutil

from repro.tcb import (
    DEFAULT_POLICY,
    check_tree,
    default_doc_path,
    default_src_root,
)

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "TRUSTED_BASE.md"


def test_real_tree_is_clean():
    result = check_tree(doc_path=DOC)
    assert result.error is None
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.exit_code == 0
    assert result.modules_checked >= 90


def test_every_deliberate_exemption_is_in_force():
    """The suppressions that fire are a closed, documented list — a new
    boundary crossing cannot hide behind an existing marker."""
    result = check_tree(doc_path=DOC)
    fired = sorted(
        (pathlib.Path(s.path).name, s.codes)
        for s in result.suppressions if s.matched
    )
    assert fired == [
        ("choice.py", ("TB005",)),
        ("cursor.py", ("TB001",)),
        ("theorem.py", ("TB001",)),
    ]


def test_default_paths_resolve():
    root = default_src_root()
    assert (root / "repro" / "__init__.py").is_file()
    assert default_doc_path(root) == DOC


def _copy_tree(tmp_path):
    target = tmp_path / "src"
    shutil.copytree(default_src_root(), target)
    return target


def test_forbidden_import_in_a_kernel_module_is_caught(tmp_path):
    root = _copy_tree(tmp_path)
    checker = root / "repro" / "certification" / "checker.py"
    checker.write_text(
        checker.read_text()
        + "\nfrom ..pipeline.cache import ArtifactCache  # seeded violation\n"
    )
    result = check_tree(root, use_default_doc=False)
    codes = {
        f.code for f in result.findings if f.path.endswith("checker.py")
    }
    # Direct edge to an untrusted module, and a road to the cache.
    assert {"TB001", "TB002"} <= codes
    assert result.exit_code == 1


def test_deleting_a_trust_line_is_caught(tmp_path):
    root = _copy_tree(tmp_path)
    parser = root / "repro" / "viper" / "parser.py"
    text = parser.read_text()
    assert "Trust:" in text
    start = text.index("Trust:")
    end = text.index("\n\n", start)
    parser.write_text(text[:start] + text[end:].lstrip("\n"))
    result = check_tree(root, use_default_doc=False)
    assert any(
        f.code == "TB007" and f.path.endswith("parser.py")
        for f in result.findings
    )


def test_doc_drift_is_caught(tmp_path):
    """Moving a module to the wrong inventory section fails TB008."""
    doc = tmp_path / "TRUSTED_BASE.md"
    text = DOC.read_text()
    assert "`repro.certification.theorem`" in text
    doc.write_text(
        text.replace(
            "`repro.certification.theorem`", "`repro.certification.nonesuch`"
        )
    )
    result = check_tree(doc_path=doc)
    codes = {f.code for f in result.findings}
    assert codes == {"TB008"}
    # Both directions: a ghost token, and the no-longer-covered trusted
    # module falls back to the untrusted `repro.certification` hub token.
    messages = " ".join(f.message for f in result.findings)
    assert "repro.certification.nonesuch" in messages
    assert "repro.certification.theorem" in messages


def test_policy_has_no_dead_patterns_and_no_gaps():
    from repro.tcb import build_graph

    graph = build_graph(default_src_root())
    names = list(graph.modules)
    assert DEFAULT_POLICY.unmatched(names) == []
    assert DEFAULT_POLICY.dead_patterns(names) == []
