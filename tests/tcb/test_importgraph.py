"""Unit tests for the import-graph builder: name resolution, relative
imports, lazy/dynamic flags, and transitive queries.
"""

import textwrap

import pytest

from repro.tcb.importgraph import GraphError, build_graph


def _tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return build_graph(tmp_path)


def test_discovers_packages_and_modules(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": '"""P."""\n',
        "pkg/a.py": '"""A."""\n',
        "pkg/sub/__init__.py": '"""S."""\n',
        "pkg/sub/b.py": '"""B."""\n',
    })
    assert set(graph.modules) == {"pkg", "pkg.a", "pkg.sub", "pkg.sub.b"}
    assert graph.modules["pkg"].is_package
    assert not graph.modules["pkg.a"].is_package


def test_from_import_resolves_to_submodule_when_one_exists(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from pkg import b\nfrom pkg import NAME\n",
        "pkg/b.py": "NAME = 1\n",
    })
    targets = graph.direct_imports("pkg.a")
    # `from pkg import b` is an edge to pkg.b; `from pkg import NAME`
    # falls back to the package itself.
    assert targets == {"pkg", "pkg.b"}


def test_relative_import_level_arithmetic(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/util.py": "",
        "pkg/sub/__init__.py": "",
        "pkg/sub/mod.py": "from ..util import x\nfrom . import peer\n",
        "pkg/sub/peer.py": "",
    })
    assert graph.direct_imports("pkg.sub.mod") == {"pkg.util", "pkg.sub.peer"}


def test_lazy_imports_are_edges_with_the_flag(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "def f():\n    from pkg import b\n    return b\n",
        "pkg/b.py": "",
    })
    module = graph.modules["pkg.a"]
    assert [e.target for e in module.imports] == ["pkg.b"]
    assert module.imports[0].lazy


def test_dynamic_import_with_literal_is_an_edge_and_flagged(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": (
            "import importlib\n"
            "b = importlib.import_module('pkg.b')\n"
        ),
        "pkg/b.py": "",
    })
    module = graph.modules["pkg.a"]
    assert "pkg.b" in {e.target for e in module.imports}
    assert any(e.dynamic for e in module.imports)
    assert any(d.kind == "importlib.import_module" for d in module.dynamic_code)


def test_transitive_closure_and_chain(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from pkg import b\n",
        "pkg/b.py": "from pkg import c\n",
        "pkg/c.py": "",
    })
    assert "pkg.c" in graph.transitive_imports("pkg.a")
    assert graph.import_chain("pkg.a", "pkg.c") == ["pkg.a", "pkg.b", "pkg.c"]
    assert graph.import_chain("pkg.c", "pkg.a") == []


def test_importers_of(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from pkg import c\n",
        "pkg/b.py": "from pkg import c\n",
        "pkg/c.py": "",
    })
    assert graph.importers_of("pkg.c") == {"pkg.a", "pkg.b"}


def test_out_of_tree_imports_are_ignored(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "import json\nimport os.path\nfrom pkg import b\n",
        "pkg/b.py": "",
    })
    assert graph.direct_imports("pkg.a") == {"pkg.b"}


def test_nondeterminism_uses_are_recorded(tmp_path):
    graph = _tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": (
            "import os\n"
            "import random\n"
            "import time\n"
            "def f():\n"
            "    t0 = time.perf_counter()   # measuring: not recorded\n"
            "    if time.monotonic() > 9:\n"
            "        return os.environ['X']\n"
            "    return random.random() and os.getenv('Y') and t0\n"
        ),
    }, )
    kinds = {u.kind for u in graph.modules["pkg.a"].nondet_uses}
    assert kinds == {
        "import:random", "time-in-branch:monotonic", "os.environ", "os.getenv",
    }


def test_syntax_error_is_a_graph_error(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "bad.py").write_text("def f(:\n")
    with pytest.raises(GraphError):
        build_graph(tmp_path)
