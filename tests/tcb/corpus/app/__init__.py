"""Fixture application root.

Trust: **untrusted** — re-export hub.
"""
