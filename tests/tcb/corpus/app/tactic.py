"""Certificate search.

Trust: **untrusted** — the kernel re-checks whatever this produces.
"""


def make_guess():
    return "guess"
