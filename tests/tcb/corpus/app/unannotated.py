"""A module with no trust annotation at all."""
