"""The kernel package.

Trust: **trusted** — the checker itself.
"""
