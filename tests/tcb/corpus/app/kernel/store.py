"""Kernel-side storage shim, seeded with direct boundary crossings.

Trust: **trusted** — storage definitions.
"""

from ..cache import STORE
from ..metrics import COUNTERS  # tcb: allow[TB001] read-only counters feed error messages, never a judgement
