"""Kernel core, seeded with TB001/TB004/TB005 violations.

Trust: **trusted** — judges certificates.
"""

import os
import random
import time

from ..tactic import make_guess


def judge(text):
    if time.monotonic() > 100.0:
        return False
    if os.getenv("APP_MODE") == "lenient":
        return False
    return eval(text) and make_guess() and random.random()
