"""Composition layer: only *transitive* violations (through store).

Trust: **trusted** — chains judgements.
"""

from . import store
