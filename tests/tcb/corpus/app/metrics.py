"""Observability counters.

Trust: **advisory** — observes; no verdict consults it.
"""

COUNTERS = {}
