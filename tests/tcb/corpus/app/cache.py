"""Content-addressed cache: the machinery no trusted module may reach.

Trust: **untrusted** — stores artifact text only.
"""

STORE = {}
