"""A module whose docstring disagrees with the policy.

Trust: **trusted** — (wrong: the policy says untrusted-but-checked).
"""
