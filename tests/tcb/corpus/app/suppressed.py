"""Suppression-hygiene fixtures: one malformed marker, one stale marker.

Trust: **untrusted** — orchestration.
"""

from .tactic import make_guess  # tcb: allow[TB001]

VALUE = make_guess()  # tcb: allow[TB002] stale: nothing is reported on this line
