"""Tests for the allocation primitive ``new(...)`` and its desugaring."""

import pytest

import repro
from repro.viper import (
    check_program,
    desugar_new,
    NewStmt,
    parse_program,
    parse_stmt,
    program_has_new,
)
from repro.viper.allocation import AllocationError
from repro.viper.wellformed import check_method_correct_bounded

SOURCE = """
field val: Int
field next: Ref

method fresh_cell() returns (c: Ref)
  requires true
  ensures acc(c.val, write) && c != null
{
  c := new(val)
  c.val := 0
}
"""


class TestParsing:
    def test_new_with_fields(self):
        stmt = parse_stmt("x := new(val, next)")
        assert stmt == NewStmt("x", ("val", "next"))

    def test_new_star(self):
        stmt = parse_stmt("x := new(*)")
        assert stmt == NewStmt("x", (), all_fields=True)

    def test_new_empty(self):
        assert parse_stmt("x := new()") == NewStmt("x", ())


class TestDesugaring:
    def test_detection_and_elimination(self):
        program = parse_program(SOURCE)
        assert program_has_new(program)
        desugared = desugar_new(program)
        assert not program_has_new(desugared)
        check_program(desugared)

    def test_star_expands_to_all_fields(self):
        from repro.viper.pretty import pretty_program

        program = parse_program(
            """
            field a: Int
            field b: Bool
            method m() returns (x: Ref) requires true ensures true
            { x := new(*) }
            """
        )
        text = pretty_program(desugar_new(program))
        assert "acc(x.a, write)" in text
        assert "acc(x.b, write)" in text

    def test_unknown_field_rejected(self):
        program = parse_program(
            """
            field a: Int
            method m() returns (x: Ref) requires true ensures true
            { x := new(ghost) }
            """
        )
        with pytest.raises(AllocationError, match="ghost"):
            desugar_new(program)


class TestSemantics:
    def test_allocation_grants_write_permission(self):
        desugared = desugar_new(parse_program(SOURCE))
        info = check_program(desugared)
        assert check_method_correct_bounded(desugared, info, "fresh_cell").ok

    def test_freshness_via_permission_accounting(self):
        """Two allocations cannot alias: the second inhale would exceed
        full permission, so aliasing executions are pruned — making the
        `a != b` postcondition provable."""
        source = """
        field val: Int
        method pair() returns (a: Ref, b: Ref)
          requires true
          ensures acc(a.val, write) && acc(b.val, write) && a != b
        {
          a := new(val)
          b := new(val)
        }
        """
        desugared = desugar_new(parse_program(source))
        info = check_program(desugared)
        assert check_method_correct_bounded(desugared, info, "pair").ok

    def test_allocated_reference_is_non_null(self):
        source = """
        field val: Int
        method m() returns (x: Ref)
          requires true
          ensures x != null
        { x := new(val) }
        """
        desugared = desugar_new(parse_program(source))
        info = check_program(desugared)
        assert check_method_correct_bounded(desugared, info, "m").ok


class TestCertification:
    def test_allocation_program_certifies(self):
        report = repro.certify_source(SOURCE)
        assert report.ok, report.error

    def test_allocation_with_loop_and_old(self):
        report = repro.certify_source(
            """
            field val: Int
            method m(n: Int) returns (x: Ref)
              requires n >= 0
              ensures acc(x.val, write) && x.val >= 0
            {
              x := new(val)
              x.val := 0
              var i: Int
              i := 0
              while (i < n)
                invariant acc(x.val, write) && x.val >= 0 && i >= 0
              {
                x.val := x.val + 1
                i := i + 1
              }
              assert x.val >= old(0 + 0)
            }
            """
        )
        assert report.ok, report.error
