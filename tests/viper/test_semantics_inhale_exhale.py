"""Tests for inhale / remcheck / exhale (Fig. 2, Fig. 11)."""

from fractions import Fraction

import pytest

from repro.choice import all_executions
from repro.viper import (
    Failure,
    inhale,
    Magic,
    Normal,
    parse_assertion,
    remcheck,
    exhale,
)
from repro.viper.values import NULL, VBool, VInt, VPerm, VRef

from tests.helpers import scaffold_context, vstate


def inh(source: str, **state_parts):
    return inhale(parse_assertion(source), vstate(**state_parts))


def rc(source: str, **state_parts):
    state = vstate(**state_parts)
    return remcheck(parse_assertion(source), state, state)


class TestInhalePure:
    def test_true_constraint_is_assumed(self):
        outcome = inh("n > 0", store={"n": VInt(1)})
        assert isinstance(outcome, Normal)

    def test_false_constraint_stops_execution(self):
        assert inh("n > 0", store={"n": VInt(0)}) == Magic()

    def test_ill_defined_constraint_fails(self):
        assert inh("x.f > 0", store={"x": VRef(1)}) == Failure()


class TestInhaleAcc:
    def test_adds_permission(self):
        outcome = inh("acc(x.f, 1/2)", store={"x": VRef(1)})
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == Fraction(1, 2)

    def test_negative_amount_fails(self):
        outcome = inh("acc(x.f, p)", store={"x": VRef(1), "p": VPerm(Fraction(-1))})
        assert outcome == Failure()

    def test_null_receiver_with_positive_amount_stops(self):
        assert inh("acc(x.f, 1/2)", store={"x": NULL}) == Magic()

    def test_null_receiver_with_zero_amount_succeeds(self):
        outcome = inh("acc(x.f, p)", store={"x": NULL, "p": VPerm(Fraction(0))})
        assert isinstance(outcome, Normal)

    def test_exceeding_full_permission_stops(self):
        outcome = inh(
            "acc(x.f, 2/3)", store={"x": VRef(1)}, mask={(1, "f"): "1/2"}
        )
        assert outcome == Magic()

    def test_exactly_full_permission_allowed(self):
        outcome = inh(
            "acc(x.f, 1/2)", store={"x": VRef(1)}, mask={(1, "f"): "1/2"}
        )
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == Fraction(1)

    def test_ill_defined_amount_fails(self):
        assert inh("acc(x.f, 1/n)", store={"x": VRef(1), "n": VInt(0)}) == Failure()


class TestInhaleComposite:
    def test_sep_conj_threads_state(self):
        outcome = inh("acc(x.f, 1/2) && x.f == 0", store={"x": VRef(1)})
        assert isinstance(outcome, Normal)

    def test_sep_conj_incremental_evaluation(self):
        # The right conjunct is evaluated in the state *after* the left one
        # added its permission (App. A).
        outcome = inh("acc(x.f, 1/2) && x.f >= 0", store={"x": VRef(1)})
        assert isinstance(outcome, Normal)

    def test_sep_conj_left_failure_short_circuits(self):
        assert inh("x.f > 0 && true", store={"x": VRef(1)}) == Failure()

    def test_implication_false_guard_skips_body(self):
        outcome = inh("b ==> acc(x.f)", store={"b": VBool(False), "x": NULL})
        assert isinstance(outcome, Normal)

    def test_implication_true_guard_enters_body(self):
        assert inh("b ==> acc(x.f)", store={"b": VBool(True), "x": NULL}) == Magic()

    def test_conditional_selects_branch(self):
        outcome = inh(
            "b ? acc(x.f, 1/2) : acc(x.f, write)", store={"b": VBool(True), "x": VRef(1)}
        )
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == Fraction(1, 2)

    def test_ill_defined_guard_fails(self):
        assert inh("x.f > 0 ==> true", store={"x": VRef(1)}) == Failure()


class TestRemcheck:
    def test_pure_false_fails(self):
        assert rc("n > 0", store={"n": VInt(0)}) == Failure()

    def test_pure_true_keeps_state(self):
        state = vstate(store={"n": VInt(1)}, mask={(1, "f"): 1})
        outcome = remcheck(parse_assertion("n > 0"), state, state)
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == Fraction(1)

    def test_acc_removes_permission(self):
        outcome = rc("acc(x.f, 1/2)", store={"x": VRef(1)}, mask={(1, "f"): 1})
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == Fraction(1, 2)

    def test_insufficient_permission_fails(self):
        assert rc("acc(x.f, write)", store={"x": VRef(1)}, mask={(1, "f"): "1/2"}) == Failure()

    def test_zero_amount_always_succeeds(self):
        outcome = rc("acc(x.f, none)", store={"x": NULL})
        assert isinstance(outcome, Normal)

    def test_null_receiver_with_positive_amount_fails(self):
        assert rc("acc(x.f, 1/2)", store={"x": NULL}) == Failure()

    def test_negative_amount_fails(self):
        outcome = rc(
            "acc(x.f, p)",
            store={"x": VRef(1), "p": VPerm(Fraction(-1, 2))},
            mask={(1, "f"): 1},
        )
        assert outcome == Failure()

    def test_expressions_evaluate_in_the_evaluation_state(self):
        # remcheck acc(x.f,1) && x.f == 1: the read of x.f comes *after* all
        # permission was removed from the reduction state, but the judgement
        # evaluates it in the evaluation state (Fig. 2 / RC-SEP).
        state = vstate(
            store={"x": VRef(1)}, heap={(1, "f"): VInt(1)}, mask={(1, "f"): 1}
        )
        outcome = remcheck(parse_assertion("acc(x.f, write) && x.f == 1"), state, state)
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == 0

    def test_sequential_removal_across_conjuncts(self):
        outcome = rc(
            "acc(x.f, 1/2) && acc(x.f, 1/2)", store={"x": VRef(1)}, mask={(1, "f"): 1}
        )
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == 0

    def test_over_removal_across_conjuncts_fails(self):
        assert (
            rc("acc(x.f, 1/2) && acc(x.f, 1/2)", store={"x": VRef(1)}, mask={(1, "f"): "1/2"})
            == Failure()
        )


class TestExhale:
    def test_exhale_havocs_fully_removed_locations(self):
        _, _, ctx = scaffold_context()
        state = vstate(
            store={"x": VRef(1)}, heap={(1, "f"): VInt(5)}, mask={(1, "f"): 1}
        )
        assertion = parse_assertion("acc(x.f, write)")
        values = set()
        for outcome in all_executions(lambda o: exhale(assertion, state, ctx, o)):
            assert isinstance(outcome, Normal)
            values.add(outcome.state.heap_value((1, "f")))
        # The havoc explores every candidate value, not just the old one.
        assert len(values) > 1

    def test_exhale_keeps_partially_removed_locations(self):
        _, _, ctx = scaffold_context()
        state = vstate(
            store={"x": VRef(1)}, heap={(1, "f"): VInt(5)}, mask={(1, "f"): 1}
        )
        assertion = parse_assertion("acc(x.f, 1/2)")
        for outcome in all_executions(lambda o: exhale(assertion, state, ctx, o)):
            assert isinstance(outcome, Normal)
            assert outcome.state.heap_value((1, "f")) == VInt(5)

    def test_exhale_failure_propagates(self):
        _, _, ctx = scaffold_context()
        state = vstate(store={"x": VRef(1)})
        outcome = exhale(parse_assertion("acc(x.f, 1/2)"), state, ctx, None)
        assert outcome == Failure()
