"""Tests for old-expressions and their ghost-argument desugaring."""

import pytest

import repro
from repro.viper import (
    check_program,
    desugar_old,
    OldExpr,
    OldExprError,
    parse_expr,
    parse_program,
    program_has_old,
)
from repro.viper.wellformed import check_method_correct_bounded

INCR = """
field f: Int

method incr(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == old(x.f) + 1
{
  x.f := x.f + 1
}

method client(a: Ref)
  requires acc(a.f, write)
  ensures acc(a.f, write)
{
  a.f := 0
  incr(a)
  assert a.f == 1
}
"""


class TestParsing:
    def test_old_parses(self):
        expr = parse_expr("old(x.f) + 1")
        assert isinstance(expr.left, OldExpr)

    def test_old_roundtrips_through_pretty(self):
        from repro.viper import pretty_expr

        expr = parse_expr("old(x.f + n)")
        assert parse_expr(pretty_expr(expr)) == expr


class TestDesugaring:
    def test_detection(self):
        assert program_has_old(parse_program(INCR))
        desugared = desugar_old(parse_program(INCR))
        assert not program_has_old(desugared)

    def test_ghost_argument_added(self):
        desugared = desugar_old(parse_program(INCR))
        incr = desugared.method("incr")
        assert incr.arg_names == ("x", "old_0")

    def test_precondition_captures_value(self):
        from repro.viper.pretty import pretty_assertion

        desugared = desugar_old(parse_program(INCR))
        assert "old_0 == x.f" in pretty_assertion(desugared.method("incr").pre)

    def test_call_site_captures_before_call(self):
        from repro.viper.pretty import pretty_stmt

        desugared = desugar_old(parse_program(INCR))
        body = pretty_stmt(desugared.method("client").body)
        capture = body.index("oldcap_0 := a.f")
        call = body.index("incr(a, oldcap_0)")
        assert capture < call

    def test_result_typechecks(self):
        check_program(desugar_old(parse_program(INCR)))

    def test_duplicate_old_expressions_share_a_ghost(self):
        source = """
        field f: Int
        method m(x: Ref)
          requires acc(x.f, write)
          ensures acc(x.f, write) && x.f >= old(x.f) && x.f <= old(x.f) + 1
        { assert true }
        """
        desugared = desugar_old(parse_program(source))
        assert desugared.method("m").arg_names == ("x", "old_0")

    def test_old_in_body_supported(self):
        source = """
        field f: Int
        method m(x: Ref)
          requires acc(x.f, write)
          ensures acc(x.f, write)
        {
          x.f := x.f + 1
          assert x.f == old(x.f) + 1
        }
        """
        desugared = desugar_old(parse_program(source))
        check_program(desugared)
        info = check_program(desugared)
        assert check_method_correct_bounded(desugared, info, "m").ok

    def test_old_in_precondition_rejected(self):
        source = """
        field f: Int
        method m(x: Ref)
          requires acc(x.f, write) && old(x.f) > 0
          ensures acc(x.f, write)
        { assert true }
        """
        with pytest.raises(OldExprError, match="precondition"):
            desugar_old(parse_program(source))

    def test_nested_old_rejected(self):
        source = """
        field f: Int
        method m(x: Ref)
          requires acc(x.f, write)
          ensures acc(x.f, write) && old(old(x.f)) == 0
        { assert true }
        """
        with pytest.raises(OldExprError, match="nested"):
            desugar_old(parse_program(source))

    def test_old_over_returns_rejected(self):
        source = """
        field f: Int
        method m(x: Ref) returns (y: Int)
          requires acc(x.f, write)
          ensures acc(x.f, write) && old(y) == 0
        { y := 0 }
        """
        with pytest.raises(OldExprError, match="return"):
            desugar_old(parse_program(source))


class TestSemantics:
    def test_incr_method_is_correct(self):
        desugared = desugar_old(parse_program(INCR))
        info = check_program(desugared)
        assert check_method_correct_bounded(desugared, info, "incr").ok

    def test_wrong_old_relation_detected(self):
        source = """
        field f: Int
        method m(x: Ref)
          requires acc(x.f, write)
          ensures acc(x.f, write) && x.f == old(x.f) + 1
        {
          x.f := x.f + 2
        }
        """
        desugared = desugar_old(parse_program(source))
        info = check_program(desugared)
        assert not check_method_correct_bounded(desugared, info, "m").ok


class TestCertification:
    def test_old_program_certifies(self):
        report = repro.certify_source(INCR)
        assert report.ok, report.error

    def test_old_with_loop_combines(self):
        report = repro.certify_source(
            """
            field f: Int
            method m(x: Ref, n: Int)
              requires acc(x.f, write) && n >= 0
              ensures acc(x.f, write) && x.f >= old(x.f)
            {
              var i: Int
              i := 0
              while (i < n)
                invariant acc(x.f, write) && x.f >= old(x.f) && i >= 0
              {
                x.f := x.f + 1
                i := i + 1
              }
            }
            """
        )
        assert report.ok, report.error
