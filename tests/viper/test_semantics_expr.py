"""Tests for Viper expression evaluation (partiality per Sec. 2.3)."""

from fractions import Fraction

import pytest

from repro.viper import eval_expr, ILL_DEFINED, parse_expr
from repro.viper.values import NULL, VBool, VInt, VPerm, VRef

from tests.helpers import vstate


def ev(source: str, **state_parts):
    return eval_expr(parse_expr(source), vstate(**state_parts))


class TestTotalCases:
    def test_literals(self):
        assert ev("42") == VInt(42)
        assert ev("true") == VBool(True)
        assert ev("null") == NULL
        assert ev("write") == VPerm(Fraction(1))

    def test_variable_lookup(self):
        assert ev("x", store={"x": VInt(5)}) == VInt(5)

    def test_arithmetic(self):
        assert ev("2 + 3 * 4") == VInt(14)
        assert ev("10 - 3") == VInt(7)

    def test_int_division_truncates_toward_zero(self):
        assert ev("7 \\ 2") == VInt(3)
        assert ev("-7 \\ 2") == VInt(-3)
        assert ev("7 \\ -2") == VInt(-3)

    def test_mod_matches_truncating_division(self):
        assert ev("7 % 2") == VInt(1)
        assert ev("-7 % 2") == VInt(-1)

    def test_perm_division(self):
        assert ev("p / 2", store={"p": VPerm(Fraction(1, 2))}) == VPerm(Fraction(1, 4))

    def test_comparisons(self):
        assert ev("1 < 2") == VBool(True)
        assert ev("2 <= 2") == VBool(True)
        assert ev("3 > 4") == VBool(False)
        assert ev("3 >= 4") == VBool(False)

    def test_numeric_equality_coerces_int_and_perm(self):
        assert ev("p == 1", store={"p": VPerm(Fraction(1))}) == VBool(True)

    def test_reference_equality(self):
        assert ev("x == y", store={"x": VRef(1), "y": VRef(1)}) == VBool(True)
        assert ev("x == null", store={"x": NULL}) == VBool(True)

    def test_conditional_expression(self):
        assert ev("b ? 1 : 2", store={"b": VBool(True)}) == VInt(1)
        assert ev("b ? 1 : 2", store={"b": VBool(False)}) == VInt(2)

    def test_unary(self):
        assert ev("-x", store={"x": VInt(3)}) == VInt(-3)
        assert ev("!b", store={"b": VBool(False)}) == VBool(True)

    def test_heap_read_with_permission(self):
        result = ev(
            "x.f",
            store={"x": VRef(1)},
            heap={(1, "f"): VInt(9)},
            mask={(1, "f"): "1/2"},
        )
        assert result == VInt(9)

    def test_heap_read_default_value(self):
        # Total heap: unmapped location reads the typed default.
        result = ev("x.f", store={"x": VRef(1)}, mask={(1, "f"): 1})
        assert result == VInt(0)


class TestIllDefinedness:
    def test_division_by_zero(self):
        assert ev("1 \\ 0") is ILL_DEFINED
        assert ev("1 % 0") is ILL_DEFINED
        assert ev("x / 0", store={"x": VInt(1)}) is ILL_DEFINED

    def test_heap_read_without_permission(self):
        assert ev("x.f", store={"x": VRef(1)}) is ILL_DEFINED

    def test_null_dereference(self):
        assert ev("x.f", store={"x": NULL}) is ILL_DEFINED

    def test_ill_definedness_propagates(self):
        assert ev("x.f + 1", store={"x": VRef(1)}) is ILL_DEFINED

    def test_lazy_and_shields_right_operand(self):
        # false && ill-defined  ==>  false (not ill-defined)
        result = ev("b && x.f > 0", store={"b": VBool(False), "x": VRef(1)})
        assert result == VBool(False)

    def test_lazy_and_exposes_right_operand_when_left_true(self):
        result = ev("b && x.f > 0", store={"b": VBool(True), "x": VRef(1)})
        assert result is ILL_DEFINED

    def test_lazy_or_shields_right_operand(self):
        result = ev("b || x.f > 0", store={"b": VBool(True), "x": VRef(1)})
        assert result == VBool(True)

    def test_lazy_implication_shields_right_operand(self):
        result = ev("b ==> x.f > 0", store={"b": VBool(False), "x": VRef(1)})
        assert result == VBool(True)

    def test_conditional_shields_untaken_branch(self):
        result = ev(
            "b ? 1 : x.f", store={"b": VBool(True), "x": VRef(1)}
        )
        assert result == VInt(1)

    def test_ill_defined_guard_poisons_conditional(self):
        result = ev("x.f > 0 ? 1 : 2", store={"x": VRef(1)})
        assert result is ILL_DEFINED


class TestEvalExprs:
    def test_list_evaluation_short_circuits_on_ill_defined(self):
        from repro.viper.semantics import eval_exprs

        state = vstate(store={"x": VRef(1)})
        exprs = [parse_expr("1"), parse_expr("x.f"), parse_expr("2")]
        assert eval_exprs(exprs, state) is ILL_DEFINED

    def test_list_evaluation_collects_values(self):
        from repro.viper.semantics import eval_exprs

        values = eval_exprs([parse_expr("1"), parse_expr("2")], vstate())
        assert values == [VInt(1), VInt(2)]
