"""Tests for while loops and their invariant-based desugaring."""

import pytest

import repro
from repro.certification import certify_translation
from repro.viper import (
    check_program,
    desugar_loops,
    parse_program,
    parse_stmt,
    program_has_loops,
    While,
)
from repro.viper.loops import loop_targets
from repro.viper.wellformed import check_method_correct_bounded


LOOP_PROGRAM = """
field f: Int

method countdown(x: Ref, n: Int)
  requires acc(x.f, write) && n >= 0
  ensures acc(x.f, write)
{
  var i: Int
  i := n
  while (i > 0)
    invariant acc(x.f, write) && i >= 0
  {
    x.f := i
    i := i - 1
  }
  assert i <= 0
}
"""


class TestParsing:
    def test_while_parses(self):
        stmt = parse_stmt(
            "while (i > 0) invariant acc(x.f, write) { i := i - 1 }"
        )
        assert isinstance(stmt, While)

    def test_multiple_invariants_conjoin(self):
        stmt = parse_stmt(
            "while (i > 0) invariant i >= 0 invariant acc(x.f) { i := i - 1 }"
        )
        from repro.viper.ast import SepConj

        assert isinstance(stmt.invariant, SepConj)

    def test_missing_invariant_defaults_to_true(self):
        stmt = parse_stmt("while (b) { b := false }")
        from repro.viper.ast import AExpr, BoolLit

        assert stmt.invariant == AExpr(BoolLit(True))


class TestLoopTargets:
    def test_direct_assignment(self):
        stmt = parse_stmt("i := 1 j := 2")
        assert loop_targets(stmt) == {"i", "j"}

    def test_targets_in_branches_and_calls(self):
        stmt = parse_stmt("if (b) { i := 1 } else { r := m(x) }")
        assert loop_targets(stmt) == {"i", "r"}

    def test_field_writes_are_not_local_targets(self):
        stmt = parse_stmt("x.f := 1")
        assert loop_targets(stmt) == set()

    def test_nested_loops(self):
        stmt = parse_stmt(
            "while (b) invariant true { while (c) invariant true { i := 1 } }"
        )
        assert loop_targets(stmt) == {"i"}


class TestDesugaring:
    def test_removes_all_loops(self):
        program = parse_program(LOOP_PROGRAM)
        assert program_has_loops(program)
        desugared = desugar_loops(program)
        assert not program_has_loops(desugared)

    def test_result_typechecks(self):
        check_program(desugar_loops(parse_program(LOOP_PROGRAM)))

    def test_nested_loops_desugar(self):
        source = """
        field f: Int
        method m(x: Ref, n: Int) requires acc(x.f, write) ensures acc(x.f, write)
        {
          var i: Int
          i := 0
          while (i < n) invariant acc(x.f, write)
          {
            var j: Int
            j := 0
            while (j < i) invariant acc(x.f, write) { j := j + 1 }
            i := i + 1
          }
        }
        """
        desugared = desugar_loops(parse_program(source))
        assert not program_has_loops(desugared)
        check_program(desugared)

    def test_desugared_shape(self):
        """exhale I; havoc targets; inhale I; if (c) {...; inhale false};
        inhale !c."""
        from repro.viper.ast import Exhale, If, Inhale

        program = desugar_loops(parse_program(LOOP_PROGRAM))
        body = program.method("countdown").body

        def flatten(stmt):
            from repro.viper.ast import Seq

            if isinstance(stmt, Seq):
                return flatten(stmt.first) + flatten(stmt.second)
            return [stmt]

        kinds = [type(s).__name__ for s in flatten(body)]
        assert "Exhale" in kinds and "Inhale" in kinds and "If" in kinds


class TestSemantics:
    def test_correct_loop_method_is_bounded_correct(self):
        program = desugar_loops(parse_program(LOOP_PROGRAM))
        info = check_program(program)
        verdict = check_method_correct_bounded(program, info, "countdown")
        assert verdict.ok, verdict.reason

    def test_broken_invariant_entry_detected(self):
        source = """
        field f: Int
        method m(x: Ref)
          requires acc(x.f, 1/2) ensures true
        {
          while (x.f > 0) invariant acc(x.f, write) { x.f := 0 }
        }
        """
        program = desugar_loops(parse_program(source))
        info = check_program(program)
        verdict = check_method_correct_bounded(program, info, "m")
        assert not verdict.ok  # only half permission held on entry

    def test_invariant_not_preserved_detected(self):
        source = """
        field f: Int
        method m(x: Ref, b: Bool)
          requires acc(x.f, write) && x.f >= 0
          ensures acc(x.f, write)
        {
          while (b) invariant acc(x.f, write) && x.f >= 0
          {
            x.f := 0 - 1
            b := false
          }
        }
        """
        program = desugar_loops(parse_program(source))
        info = check_program(program)
        verdict = check_method_correct_bounded(program, info, "m")
        assert not verdict.ok

    def test_invariant_available_after_loop(self):
        source = """
        field f: Int
        method m(x: Ref, b: Bool)
          requires acc(x.f, write)
          ensures acc(x.f, write) && x.f >= 0
        {
          x.f := 1
          while (b) invariant acc(x.f, write) && x.f >= 0
          {
            x.f := x.f + 1
            b := false
          }
        }
        """
        program = desugar_loops(parse_program(source))
        info = check_program(program)
        verdict = check_method_correct_bounded(program, info, "m")
        assert verdict.ok, verdict.reason


class TestCertification:
    def test_loop_program_certifies(self):
        report = repro.certify_source(LOOP_PROGRAM)
        assert report.ok, report.error

    def test_loop_with_call_certifies(self):
        report = repro.certify_source(
            """
            field f: Int
            method helper(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
            { assert true }
            method m(x: Ref, n: Int)
              requires acc(x.f, write) && n >= 0 ensures acc(x.f, write)
            {
              var i: Int
              i := 0
              while (i < n) invariant acc(x.f, write) && i >= 0
              {
                helper(x)
                i := i + 1
              }
            }
            """
        )
        assert report.ok, report.error
