"""Tests for the Viper type checker."""

import pytest

from repro.viper import check_program, parse_program, Type, ViperTypeError


def check(source: str):
    return check_program(parse_program(source))


def rejects(source: str, fragment: str = ""):
    with pytest.raises(ViperTypeError) as excinfo:
        check(source)
    if fragment:
        assert fragment in str(excinfo.value)


HEADER = "field f: Int\nfield r: Ref\nfield b: Bool\n"


class TestWellTyped:
    def test_simple_method(self):
        info = check(
            HEADER
            + """
            method m(x: Ref, n: Int) returns (y: Int)
              requires acc(x.f, 1/2) && n > 0
              ensures acc(x.f, 1/2)
            {
              var t: Int
              t := x.f + n
              y := t
            }
            """
        )
        assert info.methods["m"].var_types["t"] is Type.INT
        assert info.methods["m"].locals_in_order == [("t", Type.INT)]

    def test_perm_arithmetic(self):
        check(
            HEADER
            + """
            method m(x: Ref, p: Perm)
              requires acc(x.f, p) && p > none
              ensures true
            {
              var q: Perm
              q := p / 2
              exhale acc(x.f, q)
            }
            """
        )

    def test_int_coerces_to_perm(self):
        check(HEADER + "method m(x: Ref) requires acc(x.f, 1) { var p: Perm p := 1 }")

    def test_ref_field_chain(self):
        check(HEADER + "method m(x: Ref) requires acc(x.r) && acc(x.r.f) { assert true }")

    def test_conditional_expression_type_join(self):
        check(HEADER + "method m(b: Bool) { var p: Perm p := b ? 1/2 : 1 }")

    def test_call_checks(self):
        check(
            HEADER
            + """
            method callee(x: Ref) returns (y: Int)
              requires acc(x.f) ensures acc(x.f)
            { y := 0 }
            method caller(a: Ref)
              requires acc(a.f) ensures acc(a.f)
            {
              var out: Int
              out := callee(a)
            }
            """
        )


class TestRejections:
    def test_undeclared_variable(self):
        rejects(HEADER + "method m() { x := 1 }", "undeclared variable")

    def test_undeclared_field(self):
        rejects(HEADER + "method m(x: Ref) { x.nope := 1 }", "undeclared field")

    def test_duplicate_field(self):
        rejects("field f: Int\nfield f: Bool\nmethod m() { assert true }", "duplicate field")

    def test_duplicate_method(self):
        rejects(
            HEADER + "method m() { assert true }\nmethod m() { assert true }",
            "duplicate method",
        )

    def test_shadowing_rejected(self):
        rejects(HEADER + "method m(x: Ref) { var x: Int }", "redeclared")

    def test_type_mismatch_in_assignment(self):
        rejects(HEADER + "method m() { var t: Int t := true }")

    def test_bad_if_condition(self):
        rejects(HEADER + "method m() { if (1) { assert true } }", "Bool")

    def test_bad_acc_receiver(self):
        rejects(HEADER + "method m(n: Int) requires acc(n.f) { assert true }")

    def test_precondition_cannot_mention_returns(self):
        rejects(
            HEADER
            + "method m(x: Ref) returns (y: Int) requires y > 0 { y := 1 }",
            "undeclared variable",
        )

    def test_postcondition_may_mention_returns(self):
        check(HEADER + "method m() returns (y: Int) ensures y == y { y := 1 }")

    def test_call_arity_mismatch(self):
        rejects(
            HEADER
            + """
            method callee(x: Ref) { assert true }
            method caller(a: Ref) { callee(a, a) }
            """,
            "arguments",
        )

    def test_call_target_count_mismatch(self):
        rejects(
            HEADER
            + """
            method callee(x: Ref) returns (y: Int) { y := 0 }
            method caller(a: Ref) { callee(a) }
            """,
            "targets",
        )

    def test_call_duplicate_targets(self):
        rejects(
            HEADER
            + """
            method callee() returns (a: Int, b: Int) { a := 0 b := 0 }
            method caller() { var t: Int t, t := callee() }
            """,
        )

    def test_call_argument_reads_target(self):
        rejects(
            HEADER
            + """
            method callee(n: Int) returns (y: Int) { y := n }
            method caller() { var t: Int t := 0 t := callee(t) }
            """,
            "reads target",
        )

    def test_call_to_unknown_method(self):
        rejects(HEADER + "method m(x: Ref) { ghost(x) }", "undeclared method")

    def test_branch_local_declarations_do_not_escape(self):
        rejects(
            HEADER
            + """
            method m(b: Bool) {
              if (b) { var t: Int t := 1 }
              t := 2
            }
            """,
            "undeclared variable",
        )

    def test_pure_assertion_must_be_bool(self):
        rejects(HEADER + "method m() requires 1 { assert true }", "Bool")

    def test_division_requires_ints(self):
        rejects(HEADER + "method m(b: Bool) { var t: Int t := b \\ 2 }")

    def test_comparison_requires_numeric(self):
        rejects(HEADER + "method m(b: Bool) { assert b < true }")

    def test_equality_across_incompatible_types(self):
        rejects(HEADER + "method m(x: Ref, n: Int) { assert x == n }")

    def test_field_write_type(self):
        rejects(HEADER + "method m(x: Ref) requires acc(x.f) { x.f := true }")
