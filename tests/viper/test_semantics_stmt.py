"""Tests for Viper statement execution, including method calls."""

from fractions import Fraction

import pytest

from repro.choice import all_executions, DefaultOracle
from repro.viper import (
    exec_stmt,
    Failure,
    Magic,
    Normal,
    parse_stmt,
)
from repro.viper.semantics import run_method
from repro.viper.state import zero_mask_state
from repro.viper.values import NULL, VBool, VInt, VPerm, VRef

from tests.helpers import context_for, scaffold_context, vstate


def run(source: str, state, ctx):
    return exec_stmt(parse_stmt(source), state, ctx, DefaultOracle())


class TestBasicStatements:
    def test_local_assignment(self):
        _, _, ctx = scaffold_context()
        outcome = run("r := n + 1", vstate(store={"n": VInt(2), "r": VInt(0)}), ctx)
        assert isinstance(outcome, Normal)
        assert outcome.state.lookup("r") == VInt(3)

    def test_assignment_with_ill_defined_rhs_fails(self):
        _, _, ctx = scaffold_context()
        outcome = run("r := x.f", vstate(store={"x": VRef(1), "r": VInt(0)}), ctx)
        assert outcome == Failure()

    def test_assignment_coerces_int_to_perm(self):
        _, _, ctx = scaffold_context()
        outcome = run("p := 1", vstate(store={"p": VPerm(Fraction(0))}), ctx)
        assert outcome.state.lookup("p") == VPerm(Fraction(1))

    def test_field_write_requires_full_permission(self):
        _, _, ctx = scaffold_context()
        state = vstate(store={"x": VRef(1)}, mask={(1, "f"): "1/2"})
        assert run("x.f := 1", state, ctx) == Failure()

    def test_field_write_with_full_permission(self):
        _, _, ctx = scaffold_context()
        state = vstate(store={"x": VRef(1)}, mask={(1, "f"): 1})
        outcome = run("x.f := 7", state, ctx)
        assert isinstance(outcome, Normal)
        assert outcome.state.heap_value((1, "f")) == VInt(7)

    def test_field_write_to_null_fails(self):
        _, _, ctx = scaffold_context()
        assert run("x.f := 1", vstate(store={"x": NULL}), ctx) == Failure()

    def test_var_decl_havocs(self):
        _, _, ctx = scaffold_context()
        state = vstate()
        values = set()
        for outcome in all_executions(
            lambda o: exec_stmt(parse_stmt("var t: Int"), state, ctx, o)
        ):
            values.add(outcome.state.lookup("t"))
        assert len(values) > 1

    def test_sequence_threads_state(self):
        _, _, ctx = scaffold_context()
        outcome = run(
            "r := 1 r := r + 1", vstate(store={"r": VInt(0)}), ctx
        )
        assert outcome.state.lookup("r") == VInt(2)

    def test_sequence_stops_on_failure(self):
        _, _, ctx = scaffold_context()
        outcome = run("r := 1 \\ 0 r := 2", vstate(store={"r": VInt(0)}), ctx)
        assert outcome == Failure()

    def test_if_selects_branch(self):
        _, _, ctx = scaffold_context()
        outcome = run(
            "if (b) { r := 1 } else { r := 2 }",
            vstate(store={"b": VBool(False), "r": VInt(0)}),
            ctx,
        )
        assert outcome.state.lookup("r") == VInt(2)

    def test_if_with_ill_defined_condition_fails(self):
        _, _, ctx = scaffold_context()
        outcome = run(
            "if (x.f > 0) { r := 1 }", vstate(store={"x": VRef(1), "r": VInt(0)}), ctx
        )
        assert outcome == Failure()

    def test_assert_does_not_remove_permission(self):
        _, _, ctx = scaffold_context()
        state = vstate(store={"x": VRef(1)}, mask={(1, "f"): 1})
        outcome = run("assert acc(x.f, write)", state, ctx)
        assert isinstance(outcome, Normal)
        assert outcome.state.perm((1, "f")) == Fraction(1)

    def test_assert_failure(self):
        _, _, ctx = scaffold_context()
        state = vstate(store={"x": VRef(1)}, mask={(1, "f"): "1/2"})
        assert run("assert acc(x.f, write)", state, ctx) == Failure()


CALL_PROGRAM = """
field f: Int

method double(x: Ref) returns (out: Int)
  requires acc(x.f, 1/2) && x.f >= 0
  ensures acc(x.f, 1/2) && out == x.f + x.f
{
  out := x.f + x.f
}

method main(a: Ref) returns (res: Int)
  requires acc(a.f, write)
  ensures acc(a.f, write)
{
  a.f := 3
  res := double(a)
}
"""


class TestMethodCalls:
    def test_call_transfers_permission_and_constrains_result(self):
        program, info, ctx = context_for(CALL_PROGRAM, "main")
        # The target havoc draws from a finite candidate set, so pick a heap
        # value whose doubled result (0) is among the candidates.
        state = vstate(
            store={"a": VRef(1), "res": VInt(3)},
            heap={(1, "f"): VInt(0)},
            mask={(1, "f"): 1},
            field_types=info.field_types,
        )
        results = set()
        for outcome in all_executions(
            lambda o: exec_stmt(parse_stmt("res := double(a)"), state, ctx, o)
        ):
            assert not isinstance(outcome, Failure)
            if isinstance(outcome, Normal):
                results.add(outcome.state.lookup("res"))
                # Half permission came back via the postcondition.
                assert outcome.state.perm((1, "f")) == Fraction(1)
        # Only res == 0 == x.f + x.f survives the postcondition assumption.
        assert results == {VInt(0)}

    def test_call_without_required_permission_fails(self):
        program, info, ctx = context_for(CALL_PROGRAM, "main")
        state = vstate(
            store={"a": VRef(1), "res": VInt(0)}, field_types=info.field_types
        )
        outcome = exec_stmt(parse_stmt("res := double(a)"), state, ctx, DefaultOracle())
        assert outcome == Failure()

    def test_call_with_failing_precondition_constraint(self):
        program, info, ctx = context_for(CALL_PROGRAM, "main")
        state = vstate(
            store={"a": VRef(1), "res": VInt(0)},
            heap={(1, "f"): VInt(-1)},
            mask={(1, "f"): 1},
            field_types=info.field_types,
        )
        outcome = exec_stmt(parse_stmt("res := double(a)"), state, ctx, DefaultOracle())
        assert outcome == Failure()  # x.f >= 0 does not hold

    def test_whole_method_obligation(self):
        program, info, ctx = context_for(CALL_PROGRAM, "main")
        state = zero_mask_state(
            {"a": VRef(1), "res": VInt(0)}, info.field_types
        )
        for outcome in all_executions(
            lambda o: run_method(program.method("main"), state, ctx, o)
        ):
            assert not isinstance(outcome, Failure)
