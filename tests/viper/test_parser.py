"""Tests for the Viper parser."""

from fractions import Fraction

import pytest

from repro.viper import (
    Acc,
    AExpr,
    AssertStmt,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    NullLit,
    parse_assertion,
    parse_expr,
    parse_program,
    parse_stmt,
    PermLit,
    SepConj,
    Seq,
    Skip,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
    ViperSyntaxError,
)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == BinOp(
            BinOpKind.ADD, IntLit(1), BinOp(BinOpKind.MUL, IntLit(2), IntLit(3))
        )

    def test_parentheses_override(self):
        assert parse_expr("(1 + 2) * 3") == BinOp(
            BinOpKind.MUL, BinOp(BinOpKind.ADD, IntLit(1), IntLit(2)), IntLit(3)
        )

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse_expr("a + 1 < b * 2")
        assert isinstance(expr, BinOp) and expr.op is BinOpKind.LT

    def test_and_binds_tighter_than_or(self):
        expr = parse_expr("a || b && c")
        assert expr.op is BinOpKind.OR
        assert expr.right.op is BinOpKind.AND

    def test_implication_is_right_associative(self):
        expr = parse_expr("a ==> b ==> c")
        assert expr.op is BinOpKind.IMPLIES
        assert isinstance(expr.right, BinOp)
        assert expr.right.op is BinOpKind.IMPLIES

    def test_field_access_chains(self):
        assert parse_expr("x.f.g") == FieldAcc(FieldAcc(Var("x"), "f"), "g")

    def test_unary_operators(self):
        assert parse_expr("-x") == UnOp(UnOpKind.NEG, Var("x"))
        assert parse_expr("!b") == UnOp(UnOpKind.NOT, Var("b"))

    def test_conditional_expression(self):
        expr = parse_expr("b ? 1 : 2")
        assert expr == CondExp(Var("b"), IntLit(1), IntLit(2))

    def test_literal_fraction_folds_to_perm(self):
        assert parse_expr("1/2") == PermLit(Fraction(1, 2))
        assert parse_expr("3/4") == PermLit(Fraction(3, 4))

    def test_non_literal_division_stays_binop(self):
        expr = parse_expr("p/2")
        assert isinstance(expr, BinOp) and expr.op is BinOpKind.PERM_DIV

    def test_write_none_literals(self):
        assert parse_expr("write") == PermLit(Fraction(1))
        assert parse_expr("none") == PermLit(Fraction(0))

    def test_null_literal(self):
        assert parse_expr("null") == NullLit()

    def test_int_division_and_mod(self):
        assert parse_expr("a \\ b").op is BinOpKind.DIV
        assert parse_expr("a % b").op is BinOpKind.MOD


class TestAssertions:
    def test_acc_with_default_write(self):
        assert parse_assertion("acc(x.f)") == Acc(Var("x"), "f", PermLit(Fraction(1)))

    def test_acc_with_amount(self):
        assert parse_assertion("acc(x.f, 1/2)") == Acc(
            Var("x"), "f", PermLit(Fraction(1, 2))
        )

    def test_separating_conjunction(self):
        assertion = parse_assertion("acc(x.f) && x.f > 0")
        assert isinstance(assertion, SepConj)
        assert isinstance(assertion.left, Acc)
        assert isinstance(assertion.right, AExpr)

    def test_sep_conj_is_right_nested(self):
        assertion = parse_assertion("a > 0 && b > 0 && c > 0")
        assert isinstance(assertion, SepConj)
        assert isinstance(assertion.right, SepConj)

    def test_implication_assertion(self):
        assertion = parse_assertion("b ==> acc(x.f)")
        assert isinstance(assertion, Implies)
        assert isinstance(assertion.body, Acc)

    def test_conditional_assertion(self):
        assertion = parse_assertion("b ? acc(x.f) : x.g == 0")
        assert isinstance(assertion, CondAssert)

    def test_pure_and_inside_expression_position(self):
        # Inside parentheses '&&' is a boolean operator, not SepConj.
        assertion = parse_assertion("(a && b) ==> acc(x.f)")
        assert isinstance(assertion, Implies)
        assert isinstance(assertion.cond, BinOp)


class TestStatements:
    def test_assignment(self):
        assert parse_stmt("x := 1") == LocalAssign("x", IntLit(1))

    def test_field_assignment(self):
        assert parse_stmt("x.f := 2") == FieldAssign(Var("x"), "f", IntLit(2))

    def test_var_decl(self):
        assert parse_stmt("var t: Int") == VarDecl("t", Type.INT)

    def test_var_decl_with_initialiser_desugars(self):
        stmt = parse_stmt("var t: Int := 5")
        assert stmt == Seq(VarDecl("t", Type.INT), LocalAssign("t", IntLit(5)))

    def test_inhale_exhale_assert(self):
        assert isinstance(parse_stmt("inhale acc(x.f)"), Inhale)
        assert isinstance(parse_stmt("exhale acc(x.f)"), Exhale)
        assert isinstance(parse_stmt("assert x.f == 1"), AssertStmt)

    def test_sequence_is_right_nested(self):
        stmt = parse_stmt("x := 1 y := 2 z := 3")
        assert isinstance(stmt, Seq)
        assert isinstance(stmt.second, Seq)

    def test_if_with_else(self):
        stmt = parse_stmt("if (b) { x := 1 } else { x := 2 }")
        assert isinstance(stmt, If)
        assert not isinstance(stmt.otherwise, Skip)

    def test_if_without_else(self):
        stmt = parse_stmt("if (b) { x := 1 }")
        assert isinstance(stmt, If)
        assert isinstance(stmt.otherwise, Skip)

    def test_else_if_chain(self):
        stmt = parse_stmt("if (a) { x := 1 } else if (b) { x := 2 }")
        assert isinstance(stmt.otherwise, If)

    def test_call_with_targets(self):
        stmt = parse_stmt("a, b := m(x, 1)")
        assert stmt == MethodCall(("a", "b"), "m", (Var("x"), IntLit(1)))

    def test_call_without_targets(self):
        assert parse_stmt("m(x)") == MethodCall((), "m", (Var("x"),))

    def test_single_target_call(self):
        assert parse_stmt("r := m()") == MethodCall(("r",), "m", ())


class TestPrograms:
    def test_full_program(self):
        program = parse_program(
            """
            field f: Int
            field g: Ref

            method m(x: Ref) returns (y: Int)
              requires acc(x.f, 1/2)
              ensures acc(x.f, 1/2) && y == x.f
            {
              y := x.f
            }

            method abstract_m(x: Ref)
              requires acc(x.f)
              ensures acc(x.f)
            """
        )
        assert [f.name for f in program.fields] == ["f", "g"]
        assert program.field("g").typ is Type.REF
        assert program.method("m").body is not None
        assert program.method("abstract_m").body is None

    def test_multiple_requires_conjoin(self):
        program = parse_program(
            """
            field f: Int
            method m(x: Ref)
              requires acc(x.f)
              requires x.f > 0
              ensures true
            { assert true }
            """
        )
        assert isinstance(program.method("m").pre, SepConj)

    def test_missing_spec_defaults_to_true(self):
        program = parse_program(
            "field f: Int\nmethod m() { assert true }"
        )
        assert program.method("m").pre == AExpr(BoolLit(True))
        assert program.method("m").post == AExpr(BoolLit(True))


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "field f Int",
            "method m( {",
            "method m() { x := }",
            "method m() { if b { } }",
            "method m() { acc(x.f) }",
            "method m() { a, b := 3 }",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ViperSyntaxError):
            parse_program(source)
