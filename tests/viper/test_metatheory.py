"""Metatheory of the Viper semantics: the paper's auxiliary lemmas, tested.

Property-based validation of the semantic facts the paper's proofs rest
on, most importantly Lemma 4.1 — the partial *inversion* between
``remcheck`` and ``inhale`` that justifies propagating the non-local
hypothesis Q_pre through assertions (Sec. 4.2) — plus the footnote-4
Hoare-style facts and basic well-behavedness (consistency preservation,
determinism, heap immutability of remcheck).
"""

from fractions import Fraction

from hypothesis import given, settings

from repro.viper.ast import Type
from repro.viper.semantics import Failure, inhale, Magic, Normal, remcheck
from repro.viper.state import ViperState

from tests.strategies import assertions, FIELDS
from tests.certification.simharness import EffectHarness

_HARNESS = EffectHarness()
_STATES = _HARNESS.states(count=10, seed=11)


def _adapt(assertion):
    # The strategy env has variables m, g not present in the scaffold.
    from repro.viper.ast import substitute_assertion, Var

    return substitute_assertion(assertion, {"m": Var("n"), "g": Var("n")})


def _sub_mask(state: ViperState, other: ViperState) -> dict:
    """σ ⊖ σ' on masks (pointwise, nonnegative entries only)."""
    diff = {}
    for loc in set(state.mask) | set(other.mask):
        delta = state.perm(loc) - other.perm(loc)
        if delta != 0:
            diff[loc] = delta
    return diff


def _add_masks(state: ViperState, extra: dict) -> ViperState:
    result = state
    for loc, amount in extra.items():
        result = result.add_perm(loc, amount)
    return result


class TestLemma41Inversion:
    """Lemma 4.1: if σ⁰ ⊢ ⟨A, σ⟩ →rc N(σ') and ⟨A, σⁱ⟩ →inh does not fail,
    then ⟨A, σⁱ⟩ →inh N(σˢ) with σˢ = σⁱ ⊕ (σ ⊖ σ'), provided σˢ is
    consistent — the permissions remcheck removes are exactly those a
    corresponding non-failing inhale adds."""

    @given(assertions(2))
    @settings(max_examples=120, deadline=None)
    def test_inversion(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            checked = remcheck(assertion, sigma, sigma)
            if not isinstance(checked, Normal):
                continue
            removed = _sub_mask(sigma, checked.state)
            # Choose σⁱ := σ' (the post-remcheck state): same store/heap,
            # and σˢ = σ' ⊕ removed = σ is consistent by construction.
            sigma_i = checked.state
            inhaled = inhale(assertion, sigma_i)
            if isinstance(inhaled, Failure):
                continue  # the lemma's hypothesis ¬(→inh F) does not hold
            if isinstance(inhaled, Magic):
                continue  # pruned: nothing to invert
            expected = _add_masks(sigma_i, removed)
            assert dict(inhaled.state.mask) == {
                k: v for k, v in expected.mask.items() if v != 0
            }, (
                f"inversion failed for {assertion!r}: remcheck removed "
                f"{removed}, inhale added a different amount"
            )

    @given(assertions(2))
    @settings(max_examples=120, deadline=None)
    def test_inhale_from_empty_state_witnesses_q_pre(self, assertion):
        """The non-local check inhales from an *empty* state (Sec. 4.2);
        if that inhale does not fail, no inhale of the same assertion from
        a larger consistent state fails either (monotonicity of
        well-definedness in permissions)."""
        assertion = _adapt(assertion)
        for sigma in _STATES:
            empty = ViperState(
                store=sigma.store, heap=sigma.heap, mask={}, field_types=sigma.field_types
            )
            from_empty = inhale(assertion, empty)
            if isinstance(from_empty, Failure):
                continue
            bigger = inhale(assertion, sigma)
            # Failure is exactly ill-definedness/negative amounts, none of
            # which can be *introduced* by holding more permission.
            assert not isinstance(bigger, Failure), (
                f"{assertion!r}: inhale fails from a larger state but not "
                f"from the empty one"
            )


class TestFootnote4Triples:
    """Footnote 4: {R} inhale A {R * A} and {R * A} exhale A {R}."""

    @given(assertions(2))
    @settings(max_examples=100, deadline=None)
    def test_inhale_then_remcheck_succeeds(self, assertion):
        # After a successful inhale of A, remchecking A cannot fail.
        assertion = _adapt(assertion)
        for sigma in _STATES:
            inhaled = inhale(assertion, sigma)
            if not isinstance(inhaled, Normal):
                continue
            checked = remcheck(assertion, inhaled.state, inhaled.state)
            assert not isinstance(checked, Failure), (
                f"{assertion!r}: remcheck fails right after a successful inhale"
            )

    @given(assertions(2))
    @settings(max_examples=100, deadline=None)
    def test_remcheck_then_inhale_restores_mask(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            checked = remcheck(assertion, sigma, sigma)
            if not isinstance(checked, Normal):
                continue
            restored = inhale(assertion, checked.state)
            if not isinstance(restored, Normal):
                continue
            assert dict(restored.state.mask) == {
                k: v for k, v in sigma.mask.items() if v != 0
            }


class TestWellBehavedness:
    @given(assertions(2))
    @settings(max_examples=100, deadline=None)
    def test_remcheck_preserves_heap_and_store(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            checked = remcheck(assertion, sigma, sigma)
            if isinstance(checked, Normal):
                assert checked.state.same_store_and_heap(sigma)

    @given(assertions(2))
    @settings(max_examples=100, deadline=None)
    def test_inhale_preserves_heap_and_store(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            inhaled = inhale(assertion, sigma)
            if isinstance(inhaled, Normal):
                assert inhaled.state.same_store_and_heap(sigma)

    @given(assertions(2))
    @settings(max_examples=100, deadline=None)
    def test_consistency_preserved(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            assert sigma.is_consistent()
            for outcome in (inhale(assertion, sigma), remcheck(assertion, sigma, sigma)):
                if isinstance(outcome, Normal):
                    assert outcome.state.is_consistent(), (
                        f"{assertion!r} produced an inconsistent state"
                    )

    @given(assertions(2))
    @settings(max_examples=60, deadline=None)
    def test_inhale_and_remcheck_are_deterministic(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            assert inhale(assertion, sigma) == inhale(assertion, sigma)
            assert remcheck(assertion, sigma, sigma) == remcheck(assertion, sigma, sigma)

    @given(assertions(2))
    @settings(max_examples=60, deadline=None)
    def test_remcheck_only_removes(self, assertion):
        assertion = _adapt(assertion)
        for sigma in _STATES:
            checked = remcheck(assertion, sigma, sigma)
            if isinstance(checked, Normal):
                for loc in set(sigma.mask) | set(checked.state.mask):
                    assert checked.state.perm(loc) <= sigma.perm(loc)
