"""Property tests: the pretty-printer round-trips with the parser."""

from hypothesis import given, settings

from repro.viper import (
    parse_assertion,
    parse_expr,
    parse_program,
    parse_stmt,
    pretty_assertion,
    pretty_expr,
    pretty_program,
    pretty_stmt,
)
from repro.viper.pretty import count_loc

from tests.strategies import assertions, expr_of, statements
from repro.viper.ast import Type


@given(expr_of(Type.INT, 3))
@settings(max_examples=150)
def test_int_expr_roundtrip(expr):
    assert parse_expr(pretty_expr(expr)) == expr


@given(expr_of(Type.BOOL, 3))
@settings(max_examples=150)
def test_bool_expr_roundtrip(expr):
    assert parse_expr(pretty_expr(expr)) == expr


@given(expr_of(Type.PERM, 3))
@settings(max_examples=100)
def test_perm_expr_roundtrip(expr):
    assert parse_expr(pretty_expr(expr)) == expr


def right_nest_assertion(assertion):
    """Reassociate separating conjunctions to the right.

    ``*`` is associative, and the parser produces right-nested trees; the
    printer flattens, so round-tripping is equality modulo reassociation.
    """
    from repro.viper.ast import CondAssert, Implies, SepConj

    if isinstance(assertion, SepConj):
        left = right_nest_assertion(assertion.left)
        right = right_nest_assertion(assertion.right)
        if isinstance(left, SepConj):
            return right_nest_assertion(
                SepConj(left.left, SepConj(left.right, right))
            )
        return SepConj(left, right)
    if isinstance(assertion, Implies):
        return Implies(assertion.cond, right_nest_assertion(assertion.body))
    if isinstance(assertion, CondAssert):
        return CondAssert(
            assertion.cond,
            right_nest_assertion(assertion.then),
            right_nest_assertion(assertion.otherwise),
        )
    return assertion


def right_nest_stmt(stmt):
    """Reassociate sequential composition to the right (same argument)."""
    from repro.viper.ast import AssertStmt, Exhale, If, Inhale, Seq

    if isinstance(stmt, Seq):
        first = right_nest_stmt(stmt.first)
        second = right_nest_stmt(stmt.second)
        if isinstance(first, Seq):
            return right_nest_stmt(Seq(first.first, Seq(first.second, second)))
        return Seq(first, second)
    if isinstance(stmt, If):
        return If(stmt.cond, right_nest_stmt(stmt.then), right_nest_stmt(stmt.otherwise))
    if isinstance(stmt, Inhale):
        return Inhale(right_nest_assertion(stmt.assertion))
    if isinstance(stmt, Exhale):
        return Exhale(right_nest_assertion(stmt.assertion))
    if isinstance(stmt, AssertStmt):
        return AssertStmt(right_nest_assertion(stmt.assertion))
    return stmt


@given(assertions(2))
@settings(max_examples=150)
def test_assertion_roundtrip(assertion):
    reparsed = parse_assertion(pretty_assertion(assertion))
    assert reparsed == right_nest_assertion(assertion)


@given(statements(2))
@settings(max_examples=150)
def test_statement_roundtrip(stmt):
    printed = pretty_stmt(stmt)
    assert parse_stmt(printed) == right_nest_stmt(stmt)


def test_program_roundtrip_example():
    source = """
field f: Int

method m(x: Ref, n: Int) returns (y: Int)
  requires acc(x.f, 1/2) && n > 0
  ensures acc(x.f, 1/2) && y == x.f
{
  var t: Int
  t := x.f
  if (n > 1) {
    y := t
  } else {
    y := t
  }
}
"""
    program = parse_program(source)
    assert parse_program(pretty_program(program)) == program


def test_count_loc_ignores_blanks_and_comments():
    text = "a\n\n// comment\n  b\n   \n"
    assert count_loc(text) == 2
