"""Tests for the bounded correctness and spec well-formedness checkers."""

import pytest

from repro.viper.wellformed import (
    check_method_correct_bounded,
    check_program_correct_bounded,
    check_spec_wellformed_bounded,
)

from tests.helpers import parsed


def correctness(source: str, method: str):
    program, info = parsed(source)
    return check_method_correct_bounded(program, info, method)


def spec_wf(source: str, method: str):
    program, info = parsed(source)
    return check_spec_wellformed_bounded(program, info, method)


class TestMethodCorrectness:
    def test_correct_getter(self):
        verdict = correctness(
            """
            field f: Int
            method get(x: Ref) returns (y: Int)
              requires acc(x.f, 1/2)
              ensures acc(x.f, 1/2) && y == x.f
            { y := x.f }
            """,
            "get",
        )
        assert verdict.ok

    def test_wrong_postcondition_detected(self):
        verdict = correctness(
            """
            field f: Int
            method bad(x: Ref)
              requires acc(x.f, write)
              ensures acc(x.f, write) && x.f == 0
            { x.f := 1 }
            """,
            "bad",
        )
        assert not verdict.ok
        assert verdict.counterexample is not None

    def test_missing_write_permission_detected(self):
        verdict = correctness(
            """
            field f: Int
            method bad(x: Ref)
              requires acc(x.f, 1/2)
              ensures acc(x.f, 1/2)
            { x.f := 1 }
            """,
            "bad",
        )
        assert not verdict.ok

    def test_leaked_permission_detected(self):
        # Exhaling more than inhaled fails.
        verdict = correctness(
            """
            field f: Int
            method bad(x: Ref)
              requires acc(x.f, 1/2)
              ensures acc(x.f, write)
            { assert true }
            """,
            "bad",
        )
        assert not verdict.ok

    def test_havoc_after_full_exhale_is_observable(self):
        # After exhaling all permission and re-inhaling, the value is
        # arbitrary; asserting the old value must fail on some execution.
        verdict = correctness(
            """
            field f: Int
            method bad(x: Ref)
              requires acc(x.f, write)
              ensures acc(x.f, write)
            {
              x.f := 5
              exhale acc(x.f, write)
              inhale acc(x.f, write)
              assert x.f == 5
            }
            """,
            "bad",
        )
        assert not verdict.ok

    def test_partial_exhale_preserves_value(self):
        verdict = correctness(
            """
            field f: Int
            method ok(x: Ref)
              requires acc(x.f, write)
              ensures acc(x.f, write)
            {
              x.f := 5
              exhale acc(x.f, 1/2)
              inhale acc(x.f, 1/2)
              assert x.f == 5
            }
            """,
            "ok",
        )
        assert verdict.ok


class TestSpecWellFormedness:
    def test_well_formed_spec(self):
        verdict = spec_wf(
            """
            field f: Int
            method m(x: Ref)
              requires acc(x.f, 1/2) && x.f > 0
              ensures acc(x.f, 1/2)
            { assert true }
            """,
            "m",
        )
        assert verdict.ok

    def test_heap_read_before_permission_is_ill_formed(self):
        verdict = spec_wf(
            """
            field f: Int
            method m(x: Ref)
              requires x.f > 0 && acc(x.f, 1/2)
              ensures true
            { assert true }
            """,
            "m",
        )
        assert not verdict.ok
        assert "precondition" in verdict.reason

    def test_postcondition_may_use_precondition_permissions(self):
        # Postcondition well-formedness is checked in a state that has
        # inhaled the precondition (the C1 section of the translation).
        verdict = spec_wf(
            """
            field f: Int
            method m(x: Ref) returns (y: Int)
              requires acc(x.f, write)
              ensures x.f == y
            { y := 0 }
            """,
            "m",
        )
        assert verdict.ok

    def test_ill_formed_postcondition(self):
        verdict = spec_wf(
            """
            field f: Int
            method m(x: Ref) returns (y: Int)
              requires true
              ensures x.f == y
            { y := 0 }
            """,
            "m",
        )
        # The postcondition reads x.f but no permission was ever inhaled.
        assert not verdict.ok
        assert "postcondition" in verdict.reason

    def test_guarded_heap_read_is_well_formed(self):
        verdict = spec_wf(
            """
            field f: Int
            method m(x: Ref, b: Bool)
              requires acc(x.f, 1/2) && (b ==> x.f > 0)
              ensures true
            { assert true }
            """,
            "m",
        )
        assert verdict.ok

    def test_division_in_spec(self):
        verdict = spec_wf(
            """
            field f: Int
            method m(n: Int)
              requires 10 \\ n > 0
              ensures true
            { assert true }
            """,
            "m",
        )
        assert not verdict.ok  # n may be zero


class TestProgramLevel:
    def test_mixed_program(self):
        program, info = parsed(
            """
            field f: Int
            method good(x: Ref)
              requires acc(x.f, write) ensures acc(x.f, write)
            { x.f := 1 }
            method abstract_ok(x: Ref)
              requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
            method bad(x: Ref)
              requires acc(x.f, write) ensures acc(x.f, write) && x.f == 9
            { x.f := 1 }
            """
        )
        verdicts = check_program_correct_bounded(program, info)
        assert verdicts["good"].ok
        assert verdicts["abstract_ok"].ok
        assert not verdicts["bad"].ok
