"""Tests for the call-argument hoisting pass."""

import pytest

import repro
from repro.viper import (
    check_program,
    hoist_call_args,
    parse_program,
    program_has_complex_call_args,
)
from repro.viper.wellformed import check_method_correct_bounded

SOURCE = """
field f: Int

method callee(n: Int, x: Ref) returns (out: Int)
  requires acc(x.f, 1/2) && n >= 0
  ensures acc(x.f, 1/2) && out == n
{
  out := n
}

method caller(a: Ref, i: Int) returns (r: Int)
  requires acc(a.f, write) && i >= 0
  ensures acc(a.f, write)
{
  r := callee(i + i, a)
}
"""


class TestHoisting:
    def test_detection(self):
        program = parse_program(SOURCE)
        assert program_has_complex_call_args(program)
        hoisted = hoist_call_args(program)
        assert not program_has_complex_call_args(hoisted)

    def test_result_typechecks(self):
        check_program(hoist_call_args(parse_program(SOURCE)))

    def test_variable_args_untouched(self):
        source = SOURCE.replace("callee(i + i, a)", "callee(i, a)")
        program = parse_program(source)
        assert not program_has_complex_call_args(program)
        assert hoist_call_args(program) == program

    def test_hoisting_preserves_evaluation_order(self):
        from repro.viper.pretty import pretty_stmt

        hoisted = hoist_call_args(parse_program(SOURCE))
        body = pretty_stmt(hoisted.method("caller").body)
        assign = body.index("arg__hoist0 := i + i")
        call = body.index("callee(arg__hoist0, a)")
        assert assign < call

    def test_ill_defined_argument_still_fails(self):
        source = """
        field f: Int
        method callee(n: Int) requires true ensures true { assert true }
        method caller(x: Ref) requires true ensures true
        { callee(x.f) }
        """
        hoisted = hoist_call_args(parse_program(source))
        info = check_program(hoisted)
        verdict = check_method_correct_bounded(hoisted, info, "caller")
        assert not verdict.ok  # reading x.f without permission must fail

    def test_semantics_preserved(self):
        hoisted = hoist_call_args(parse_program(SOURCE))
        info = check_program(hoisted)
        assert check_method_correct_bounded(hoisted, info, "caller").ok

    def test_hoisted_program_certifies(self):
        report = repro.certify_source(SOURCE)
        assert report.ok, report.error

    def test_nested_in_branches(self):
        report = repro.certify_source(
            """
            field f: Int
            method callee(n: Int) requires n > 0 ensures true { assert true }
            method caller(b: Bool) requires true ensures true
            {
              if (b) { callee(1 + 1) } else { callee(2 + 1) }
            }
            """
        )
        assert report.ok, report.error
