"""Unit tests for the Viper state model."""

from fractions import Fraction

import pytest

from repro.viper.ast import Type
from repro.viper.state import (
    default_value,
    non_det_related,
    ViperState,
    zero_mask_state,
)
from repro.viper.values import NULL, VBool, VInt, VPerm, VRef


class TestStore:
    def test_lookup_and_update(self):
        state = ViperState(store={"x": VInt(1)})
        assert state.lookup("x") == VInt(1)
        updated = state.set_var("x", VInt(2))
        assert updated.lookup("x") == VInt(2)
        assert state.lookup("x") == VInt(1)  # immutability

    def test_missing_variable(self):
        with pytest.raises(KeyError, match="not in store"):
            ViperState().lookup("ghost")

    def test_set_vars_bulk(self):
        state = ViperState().set_vars({"a": VInt(1), "b": VBool(True)})
        assert state.lookup("a") == VInt(1)
        assert state.lookup("b") == VBool(True)


class TestHeap:
    def test_total_heap_reads_typed_default(self):
        state = ViperState(field_types={"f": Type.INT, "r": Type.REF})
        assert state.heap_value((1, "f")) == VInt(0)
        assert state.heap_value((1, "r")) == NULL

    def test_defaults_per_type(self):
        assert default_value(Type.INT) == VInt(0)
        assert default_value(Type.BOOL) == VBool(False)
        assert default_value(Type.REF) == NULL
        assert default_value(Type.PERM) == VPerm(Fraction(0))

    def test_heap_update(self):
        state = ViperState(field_types={"f": Type.INT})
        updated = state.set_heap((1, "f"), VInt(9))
        assert updated.heap_value((1, "f")) == VInt(9)
        assert state.heap_value((1, "f")) == VInt(0)


class TestMask:
    def test_permissions_default_to_zero(self):
        assert ViperState().perm((1, "f")) == 0

    def test_add_and_remove(self):
        state = ViperState().add_perm((1, "f"), Fraction(1, 2))
        assert state.perm((1, "f")) == Fraction(1, 2)
        state = state.remove_perm((1, "f"), Fraction(1, 2))
        assert state.perm((1, "f")) == 0
        # Zero entries are normalised away.
        assert (1, "f") not in state.mask

    def test_consistency(self):
        good = ViperState(mask={(1, "f"): Fraction(1)})
        assert good.is_consistent()
        over = ViperState(mask={(1, "f"): Fraction(3, 2)})
        assert not over.is_consistent()
        negative = ViperState(mask={(1, "f"): Fraction(-1, 4)})
        assert not negative.is_consistent()

    def test_permissioned_locs_sorted(self):
        state = ViperState(
            mask={(2, "f"): Fraction(1), (1, "g"): Fraction(1, 2), (1, "a"): Fraction(0)}
        )
        assert state.permissioned_locs() == ((1, "g"), (2, "f"))

    def test_zeroed_locations(self):
        before = ViperState(mask={(1, "f"): Fraction(1), (2, "f"): Fraction(1, 2)})
        after = before.set_perm((1, "f"), Fraction(0))
        assert before.zeroed_locations(after) == ((1, "f"),)

    def test_mask_difference(self):
        a = ViperState(mask={(1, "f"): Fraction(1)})
        b = ViperState(mask={(1, "f"): Fraction(1, 4)})
        assert a.mask_difference(b) == {(1, "f"): Fraction(3, 4)}


class TestNonDetRelation:
    def setup_method(self):
        self.before = ViperState(
            heap={(1, "f"): VInt(5), (2, "f"): VInt(7)},
            mask={(1, "f"): Fraction(1), (2, "f"): Fraction(1)},
            field_types={"f": Type.INT},
        )
        # remcheck removed all permission at (1, f) only.
        self.after_rc = self.before.set_perm((1, "f"), Fraction(0))

    def test_havocked_location_may_change(self):
        result = self.after_rc.set_heap((1, "f"), VInt(99))
        assert non_det_related(self.before, self.after_rc, result)

    def test_kept_location_must_not_change(self):
        result = self.after_rc.set_heap((2, "f"), VInt(99))
        assert not non_det_related(self.before, self.after_rc, result)

    def test_identity_is_always_allowed(self):
        assert non_det_related(self.before, self.after_rc, self.after_rc)

    def test_store_must_agree(self):
        result = self.after_rc.set_var("x", VInt(1))
        assert not non_det_related(self.before, self.after_rc, result)


class TestZeroMaskState:
    def test_construction(self):
        state = zero_mask_state({"x": VRef(1)}, {"f": Type.INT}, {(1, "f"): VInt(3)})
        assert state.has_no_permissions()
        assert state.lookup("x") == VRef(1)
        assert state.heap_value((1, "f")) == VInt(3)

    def test_same_store_and_heap(self):
        a = zero_mask_state({"x": VInt(1)}, {"f": Type.INT})
        b = a.add_perm((1, "f"), Fraction(1))
        assert a.same_store_and_heap(b)
        c = b.set_heap((1, "f"), VInt(8))
        assert not a.same_store_and_heap(c)
