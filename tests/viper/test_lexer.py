"""Tests for the Viper lexer."""

import pytest

from repro.viper.lexer import Token, tokenize, ViperSyntaxError


def kinds(source: str):
    return [t.kind for t in tokenize(source)]


def texts(source: str):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "int"
        assert tokens[0].text == "42"

    def test_identifier(self):
        tokens = tokenize("foo_bar9")
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "foo_bar9"

    def test_keywords_have_their_own_kind(self):
        for keyword in ("field", "method", "inhale", "exhale", "assert", "acc",
                        "requires", "ensures", "returns", "var", "if", "else",
                        "true", "false", "null", "write", "none"):
            assert tokenize(keyword)[0].kind == keyword

    def test_type_names_are_keywords(self):
        assert kinds("Int Bool Ref Perm")[:4] == ["Int", "Bool", "Ref", "Perm"]


class TestOperators:
    def test_multi_character_operators_win_over_prefixes(self):
        assert texts("==> == := :")[0] == "==>"
        assert texts("x := y") == ["x", ":=", "y"]
        assert texts("a == b") == ["a", "==", "b"]
        assert texts("a <= b >= c") == ["a", "<=", "b", ">=", "c"]

    def test_logical_operators(self):
        assert texts("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_arithmetic_operators(self):
        assert texts("a + b - c * d / e % g") == [
            "a", "+", "b", "-", "c", "*", "d", "/", "e", "%", "g"
        ]

    def test_int_division_backslash(self):
        assert texts("a \\ b") == ["a", "\\", "b"]

    def test_punctuation(self):
        assert texts("( ) { } . , ; ? : !") == [
            "(", ")", "{", "}", ".", ",", ";", "?", ":", "!"
        ]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment with := tokens\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x := y \n more */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ViperSyntaxError):
            tokenize("a /* never closed")

    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_column_tracking_after_block_comment_same_line(self):
        tokens = tokenize("/* c */ x")
        assert tokens[0].text == "x"
        assert tokens[0].column == 9


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ViperSyntaxError) as excinfo:
            tokenize("a $ b")
        assert "$" in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(ViperSyntaxError) as excinfo:
            tokenize("ok\n   #")
        assert excinfo.value.line == 2
