"""Mutator coverage: every class produces kernel rejections, never crashes.

This is the acceptance bar of the fuzzing machinery: for each of the 21
mutator classes there is at least one (subject, seed) combination on
which the mutator fires and the trusted reparse+check path **rejects**
the corrupted artifact.  Inert corruptions (which the kernel would be
right to accept) are a mutator-design bug, caught here.
"""

from __future__ import annotations

import random

import pytest

from repro.fuzz.driver import _judge_mutation, FuzzConfig, OPTION_VARIANTS
from repro.fuzz.generate import SEED_CORPUS
from repro.fuzz.mutators import make_subject, Mutation, MUTATORS, MUTATORS_BY_NAME
from repro.pipeline import run_pipeline

#: Mutators that need a specific translation variant to fire (mirrors
#: repro.fuzz.driver._PREFERRED_SUBJECT).
_VARIANT_FOR = {
    "hints-claim-wd-omitted": "wd-at-calls",
    "hints-lie-fastpath": "no-fastpath",
}

_CONFIG = FuzzConfig()
_SUBJECTS = {}


def _subject(options_name: str):
    if options_name not in _SUBJECTS:
        ctx = run_pipeline(
            SEED_CORPUS[0],
            options=OPTION_VARIANTS[options_name],
            check_axioms=False,
        )
        assert ctx.report.ok
        _SUBJECTS[options_name] = make_subject(ctx.translation)
    return _SUBJECTS[options_name]


def test_catalog_shape():
    assert len(MUTATORS) == 21
    assert set(MUTATORS_BY_NAME) == {m.name for m in MUTATORS}
    by_artifact = {}
    for mutator in MUTATORS:
        by_artifact.setdefault(mutator.artifact, []).append(mutator)
        assert mutator.attacks, mutator.name
        if mutator.artifact == "cert":
            assert "§" in mutator.spec_section, (
                f"{mutator.name} must cite a CERTIFICATE_FORMAT.md section"
            )
    assert set(by_artifact) == {"boogie", "hints", "cert"}
    assert all(len(muts) == 7 for muts in by_artifact.values())


@pytest.mark.parametrize("mutator", MUTATORS, ids=lambda m: m.name)
def test_every_class_draws_a_kernel_rejection(mutator):
    subject = _subject(_VARIANT_FOR.get(mutator.name, "default"))
    rejected = False
    for attempt in range(8):
        mutation = mutator.apply(random.Random(attempt), subject)
        if mutation is None:
            continue
        assert isinstance(mutation, Mutation)
        assert mutation.mutator == mutator.name
        outcome, detail = _judge_mutation(mutation, subject, _CONFIG)
        assert outcome in {"mutant-reject", "mutant-accept-benign", "mutant-noop"}, (
            f"{mutator.name}: {outcome}: {detail}"
        )
        if outcome == "mutant-reject":
            rejected = True
            break
    assert rejected, f"{mutator.name} never produced a kernel rejection"


def test_mutations_are_deterministic():
    subject = _subject("default")
    for mutator in MUTATORS:
        first = mutator.apply(random.Random(5), subject)
        second = mutator.apply(random.Random(5), subject)
        if first is None:
            assert second is None
        else:
            assert second is not None
            assert first.certificate_text == second.certificate_text
            assert first.detail == second.detail
