"""The ``repro fuzz`` subcommand: exit codes, JSON report, replay."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fuzz.corpus import FailureRecord, FuzzCorpus

UNPARSEABLE = "method {{{ not viper at all\n"


def test_fuzz_smoke_exits_zero(tmp_path, capsys):
    json_path = tmp_path / "report.json"
    code = main([
        "fuzz", "--seed", "0", "--iterations", "4",
        "--corpus-dir", str(tmp_path / "corpus"),
        "--json", str(json_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "iterations=4/4" in out
    assert "no failures" in out
    payload = json.loads(json_path.read_text())
    assert payload["iterations_run"] == 4
    assert payload["failures"] == []


def test_fuzz_replay_of_forced_failure_exits_one(tmp_path, capsys):
    corpus = FuzzCorpus(tmp_path / "corpus")
    record = FailureRecord(
        outcome="crash",
        detail="forced parse crash",
        source=UNPARSEABLE,
        case={"seed": 0, "index": 0, "options_name": "default"},
    )
    bucket_dir, created = corpus.persist(record)
    assert created
    json_path = tmp_path / "replay.json"
    code = main(["fuzz", "--replay", str(bucket_dir), "--json", str(json_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAILURES" in out
    payload = json.loads(json_path.read_text())
    assert payload["failures"]
    assert payload["failures"][0]["minimized_source"] is not None


def test_fuzz_replay_missing_bucket_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["fuzz", "--replay", str(tmp_path / "nope")])


def test_fuzz_jobs_flag_matches_serial(tmp_path, capsys):
    # --jobs 2 must produce the identical outcome table (order-preserving
    # executor; falls back to serial where pools are unavailable).
    code = main([
        "fuzz", "--seed", "3", "--iterations", "3",
        "--corpus-dir", str(tmp_path / "c1"),
    ])
    serial = capsys.readouterr().out
    assert code == 0
    code = main([
        "fuzz", "--seed", "3", "--iterations", "3", "--jobs", "2",
        "--corpus-dir", str(tmp_path / "c2"),
    ])
    parallel = capsys.readouterr().out
    assert code == 0
    strip = lambda text: [
        line for line in text.splitlines()
        if not line.startswith("fuzz:")  # timing line differs
    ]
    assert strip(serial) == strip(parallel)
