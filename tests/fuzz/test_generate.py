"""The seeded program generator: determinism, well-typedness, coverage."""

from __future__ import annotations

import pytest

from repro.fuzz.generate import (
    derive_seed,
    generate_corpus,
    generate_program,
    GeneratorConfig,
    SEED_CORPUS,
)
from repro.pipeline import run_pipeline
from repro.viper.parser import parse_program
from repro.viper.typechecker import check_program


def test_generation_is_deterministic():
    first = generate_program(1234)
    second = generate_program(1234)
    assert first == second
    assert first.source == second.source


def test_different_seeds_differ():
    sources = {generate_program(seed).source for seed in range(8)}
    assert len(sources) > 1


def test_derive_seed_decorrelates():
    derived = [derive_seed(0, i) for i in range(64)]
    assert len(set(derived)) == len(derived)
    assert derived != list(range(64))
    # Different root seeds produce different streams.
    assert [derive_seed(1, i) for i in range(64)] != derived


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_are_well_typed(seed):
    generated = generate_program(derive_seed(99, seed))
    parse_program(generated.source)  # concrete syntax round-trips
    # Desugar + typecheck through the pipeline (loops/new/old lower to
    # the core subset before the type checker sees them).
    ctx = run_pipeline(generated.source, upto="typecheck")
    check_program(ctx.program)  # idempotent on the desugared core


@pytest.mark.parametrize("seed", range(6))
def test_generated_programs_certify(seed):
    generated = generate_program(derive_seed(7, seed))
    ctx = run_pipeline(generated.source, check_axioms=False)
    assert ctx.report.ok, ctx.report.error


def test_feature_metadata_matches_source():
    corpus = generate_corpus(0, 20)
    seen = set()
    for generated in corpus:
        seen |= set(generated.features)
        if "loops" in generated.features:
            assert "while" in generated.source
        if "new" in generated.features:
            assert "new(" in generated.source
        if "old" in generated.features:
            assert "old(" in generated.source
        if "calls" in generated.features:
            assert ":= m" in generated.source or " m" in generated.source
    # A modest corpus exercises every desugaring extension.
    assert {"loops", "new", "old", "calls"} <= seen


def test_feature_switches_prune_features():
    config = GeneratorConfig(
        allow_loops=False, allow_old=False, allow_new=False,
        allow_calls=False, allow_complex_call_args=False,
    )
    for generated in generate_corpus(3, 10, config):
        assert generated.features == ()
        assert "while" not in generated.source
        assert "new(" not in generated.source
        assert "old(" not in generated.source


def test_seed_corpus_certifies():
    for source in SEED_CORPUS:
        ctx = run_pipeline(source, check_axioms=False)
        assert ctx.report.ok, ctx.report.error
