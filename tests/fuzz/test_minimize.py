"""Minimizer determinism and correctness (byte-identical reproducers)."""

from __future__ import annotations

from repro.fuzz.generate import generate_program
from repro.fuzz.minimize import ddmin_lines, minimize_cert_text, minimize_source
from repro.pipeline import run_pipeline
from repro.viper.parser import parse_program


def test_ddmin_finds_single_culprit_line():
    lines = [f"line{i}" for i in range(32)]
    predicate = lambda ls: "line17" in ls
    result = ddmin_lines(lines, predicate)
    assert result == ["line17"]


def test_ddmin_finds_line_pair():
    lines = [f"line{i}" for i in range(20)]
    predicate = lambda ls: "line3" in ls and "line15" in ls
    result = ddmin_lines(lines, predicate)
    assert result == ["line3", "line15"]


def test_ddmin_keeps_input_when_predicate_fails():
    lines = ["a", "b", "c"]
    assert ddmin_lines(lines, lambda ls: False) == lines


def test_ddmin_is_deterministic():
    lines = [f"l{i}" for i in range(25)]
    predicate = lambda ls: sum(1 for l in ls if l in {"l2", "l9", "l20"}) >= 2
    assert ddmin_lines(lines, predicate) == ddmin_lines(lines, predicate)


def test_minimize_source_shrinks_to_culprit():
    generated = generate_program(3)
    source = generated.source
    # Failure model: "fails" iff the program still contains a while loop
    # *after desugaring through the same parser the pipeline uses*.
    def predicate(text: str) -> bool:
        try:
            parse_program(text)
        except Exception:
            return False
        return "while" in text

    minimized = minimize_source(source, predicate)
    assert predicate(minimized)
    assert len(minimized) <= len(source)
    # Determinism: byte-identical on a second run.
    assert minimize_source(source, predicate) == minimized


def test_minimize_source_unparseable_falls_back_to_ddmin():
    source = "garbage {{{\nmethod m0()\nmore garbage\n"
    predicate = lambda text: "garbage" in text
    minimized = minimize_source(source, predicate)
    assert predicate(minimized)
    assert minimized.count("\n") <= source.count("\n")
    assert minimize_source(source, predicate) == minimized


def test_minimize_source_keeps_original_when_normalisation_heals():
    generated = generate_program(5)
    # A predicate satisfied by the raw source but never by pretty-printed
    # candidates (the reproducer must not be lost to normalisation).
    marker_source = generated.source + "\n// marker\n"
    predicate = lambda text: "// marker" in text
    assert minimize_source(marker_source, predicate) == marker_source


def test_minimize_cert_text_is_deterministic_and_minimal():
    ctx = run_pipeline(generate_program(2).source, check_axioms=False)
    text = ctx.certificate_text
    predicate = lambda t: "METHOD-BODY-SIM" in t
    minimized = minimize_cert_text(text, predicate)
    assert predicate(minimized)
    assert len(minimized.splitlines()) <= len(text.splitlines())
    assert minimize_cert_text(text, predicate) == minimized
    # 1-minimal: removing any single remaining line breaks the predicate.
    lines = minimized.splitlines()
    if len(lines) > 1:
        for index in range(len(lines)):
            candidate = "\n".join(lines[:index] + lines[index + 1:]) + "\n"
            assert not predicate(candidate) or candidate == minimized
