"""Driver classification, corpus persistence, replay, and reporting."""

from __future__ import annotations

import json

from repro.fuzz.corpus import bucket_for, FailureRecord, FuzzCorpus
from repro.fuzz.driver import (
    build_case,
    FAILURE_OUTCOMES,
    FuzzConfig,
    replay_record,
    run_case,
    run_fuzz,
)
from repro.fuzz.mutators import MUTATORS

UNPARSEABLE = "method {{{ not viper at all\ninhale garbage\n"


def test_schedule_is_deterministic():
    config = FuzzConfig(seed=42)
    for index in range(10):
        assert build_case(config, index) == build_case(config, index)
    # Distinct indices draw distinct case seeds.
    seeds = {build_case(config, i).case_seed for i in range(10)}
    assert len(seeds) == 10


def test_schedule_covers_all_mutator_starts():
    config = FuzzConfig(seed=0)
    starts = {build_case(config, i).mutator_start for i in range(len(MUTATORS))}
    assert starts == set(range(len(MUTATORS)))


def test_run_case_accepts_pristine_and_rejects_mutant():
    config = FuzzConfig(seed=0)
    result = run_case((config, build_case(config, 0)))
    assert result.clean_outcome == "accept"
    assert result.mutant_outcome == "mutant-reject"
    assert result.mutator is not None
    assert result.failures() == []


def test_run_case_classifies_crash():
    config = FuzzConfig(seed=0)
    case = build_case(config, 1)
    broken = type(case)(
        index=case.index,
        case_seed=case.case_seed,
        source_kind="forced",
        source=UNPARSEABLE,
        options_name=case.options_name,
        mutator_start=case.mutator_start,
    )
    result = run_case((config, broken))
    assert result.clean_outcome == "crash"
    assert result.failures()


def test_bucket_normalisation_collapses_volatile_details():
    a = bucket_for("crash", "IndexError: index 12 out of range for 'v_x'")
    b = bucket_for("crash", "IndexError: index 99 out of range for 'v_y'")
    c = bucket_for("crash", "TypeError: something else entirely")
    assert a == b
    assert a != c
    assert a.startswith("crash-")


def test_corpus_roundtrip_and_dedup(tmp_path):
    corpus = FuzzCorpus(tmp_path / "corpus")
    record = FailureRecord(
        outcome="crash",
        detail="ValueError: boom at 3",
        source=UNPARSEABLE,
        case={"seed": 0, "index": 5, "options_name": "default"},
        certificate_text="CERTIFICATE-V1\nend-certificate\n",
    )
    path, created = corpus.persist(record)
    assert created
    assert (path / "input.vpr").read_text() == UNPARSEABLE
    assert (path / "mutated.cert").exists()
    # Dedup: same shape is not rewritten.
    again = FailureRecord(
        outcome="crash", detail="ValueError: boom at 7", source="different"
    )
    _, created_again = corpus.persist(again)
    assert not created_again
    assert corpus.buckets() == [record.bucket]
    loaded = FuzzCorpus.load(path)
    assert loaded.outcome == "crash"
    assert loaded.source == UNPARSEABLE
    assert loaded.certificate_text == record.certificate_text


def test_run_fuzz_end_to_end(tmp_path):
    config = FuzzConfig(seed=0, iterations=6, corpus_dir=str(tmp_path / "c"))
    report = run_fuzz(config)
    assert report.ok
    assert report.iterations_run == 6
    assert report.outcome_counts["accept"] == 6
    assert report.outcome_counts["mutant-reject"] == 6
    payload = json.loads(report.to_json())
    assert payload["iterations_run"] == 6
    assert "no failures" in report.summary()


def test_run_fuzz_is_deterministic(tmp_path):
    config = FuzzConfig(seed=9, iterations=5, corpus_dir="")
    first = run_fuzz(config)
    second = run_fuzz(config)
    assert first.outcome_counts == second.outcome_counts
    assert first.mutator_stats == second.mutator_stats


def test_run_fuzz_time_budget_yields_prefix():
    full = run_fuzz(FuzzConfig(seed=0, iterations=12, corpus_dir=""))
    cut = run_fuzz(
        FuzzConfig(seed=0, iterations=12, corpus_dir="", time_budget=0.0)
    )
    assert 0 < cut.iterations_run <= full.iterations_run


def test_forced_failure_persists_and_replays_minimized(tmp_path):
    """A forced failure round-trips through corpus + replay, minimized."""
    corpus_dir = tmp_path / "corpus"
    config = FuzzConfig(seed=0, iterations=1, corpus_dir=str(corpus_dir))
    case = build_case(config, 0)
    broken = type(case)(
        index=0,
        case_seed=case.case_seed,
        source_kind="forced",
        source=UNPARSEABLE,
        options_name="default",
        mutator_start=0,
    )
    # Run through the full loop by injecting the broken case's source as
    # a one-record corpus round trip.
    result = run_case((config, broken))
    assert result.clean_outcome == "crash"
    corpus = FuzzCorpus(corpus_dir)
    record = FailureRecord(
        outcome=result.clean_outcome,
        detail=result.clean_detail,
        source=result.source,
        case={
            "seed": 0,
            "index": 0,
            "case_seed": broken.case_seed,
            "source_kind": "forced",
            "options_name": "default",
        },
    )
    bucket_dir, created = corpus.persist(record)
    assert created
    loaded = FuzzCorpus.load(bucket_dir)
    report = replay_record(loaded)
    assert not report.ok
    (failure,) = report.failures
    assert failure["outcome"] in FAILURE_OUTCOMES
    minimized = failure["minimized_source"]
    assert minimized is not None
    assert len(minimized) <= len(UNPARSEABLE)
    # Replay minimization is deterministic: byte-identical on re-run.
    report2 = replay_record(loaded)
    assert report2.failures[0]["minimized_source"] == minimized
