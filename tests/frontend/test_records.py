"""Tests for translation records and the expression type synthesiser."""

import pytest

from repro.boogie.ast import BOOL, INT, REAL, TCon
from repro.frontend.records import (
    boogie_type_of,
    field_type_con,
    TranslationRecord,
    viper_expr_type,
)
from repro.viper import parse_expr, Type


def record(**overrides):
    defaults = dict(
        var_map={"x": "v_x", "n": "v_n"},
        heap_var="H",
        mask_var="M",
        field_consts={"f": "field_f"},
    )
    defaults.update(overrides)
    return TranslationRecord(**defaults)


class TestBoogieTypeOf:
    def test_mapping(self):
        assert boogie_type_of(Type.INT) == INT
        assert boogie_type_of(Type.BOOL) == BOOL
        assert boogie_type_of(Type.REF) == TCon("Ref")
        assert boogie_type_of(Type.PERM) == REAL

    def test_field_type_constructor(self):
        assert field_type_con(Type.INT) == TCon("Field", (INT,))


class TestTranslationRecord:
    def test_lookup(self):
        tr = record()
        assert tr.boogie_var("x") == "v_x"
        assert tr.field_const("f") == "field_f"

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            record().boogie_var("ghost")

    def test_effective_wd_mask_defaults_to_mask(self):
        assert record().effective_wd_mask == "M"

    def test_with_wd_mask(self):
        tr = record().with_wd_mask("WM_0")
        assert tr.effective_wd_mask == "WM_0"
        assert tr.mask_var == "M"
        # The original record is unchanged (records are immutable).
        assert record().wd_mask_var is None

    def test_with_mask_var(self):
        tr = record().with_mask_var("AM_0")
        assert tr.mask_var == "AM_0"

    def test_with_var_extends_map(self):
        tr = record().with_var("t", "v_t")
        assert tr.boogie_var("t") == "v_t"


class TestExprTypeSynthesis:
    VARS = {"x": Type.REF, "n": Type.INT, "b": Type.BOOL, "p": Type.PERM}
    FIELDS = {"f": Type.INT, "r": Type.REF}

    def typ(self, source: str) -> Type:
        return viper_expr_type(parse_expr(source), self.VARS, self.FIELDS)

    def test_literals(self):
        assert self.typ("1") is Type.INT
        assert self.typ("true") is Type.BOOL
        assert self.typ("null") is Type.REF
        assert self.typ("1/2") is Type.PERM

    def test_field_access_takes_field_type(self):
        assert self.typ("x.f") is Type.INT
        assert self.typ("x.r") is Type.REF
        assert self.typ("x.r.f") is Type.INT

    def test_arithmetic_stays_int(self):
        assert self.typ("n + 1") is Type.INT
        assert self.typ("n \\ 2") is Type.INT

    def test_perm_arithmetic_promotes(self):
        assert self.typ("p + 1") is Type.PERM
        assert self.typ("p / 2") is Type.PERM
        assert self.typ("n / 2") is Type.PERM

    def test_comparisons_are_bool(self):
        assert self.typ("n > 1") is Type.BOOL
        assert self.typ("x == null") is Type.BOOL

    def test_conditional_joins(self):
        assert self.typ("b ? 1 : 2") is Type.INT
        assert self.typ("b ? p : 1") is Type.PERM
        assert self.typ("b ? 1 : p") is Type.PERM
