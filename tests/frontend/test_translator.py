"""Tests for the Viper-to-Boogie translator (encoding shapes and hints)."""

import pytest

from repro.boogie import (
    Assign,
    Assume,
    BAssert,
    check_boogie_program,
    FuncApp,
    Havoc,
)
from repro.boogie.ast import BIf
from repro.frontend import (
    AccHint,
    CallHint,
    procedure_name,
    SepHint,
    translate_program,
    TranslationError,
    TranslationOptions,
)
from repro.viper import check_program, parse_program

from tests.helpers import parsed


def translate(source: str, **options):
    program, info = parsed(source)
    return translate_program(program, info, TranslationOptions(**options) if options else None)


def body_cmds(result, method: str):
    """Flatten all simple commands of the translated procedure body."""
    proc = result.boogie_program.procedure(procedure_name(method))

    def walk(stmt):
        for block in stmt:
            yield from block.cmds
            if block.ifopt is not None:
                yield block.ifopt
                yield from walk(block.ifopt.then)
                yield from walk(block.ifopt.otherwise)

    return list(walk(proc.body))


SIMPLE = """
field f: Int

method m(x: Ref, q: Perm)
  requires acc(x.f, q) && q > none
  ensures acc(x.f, q)
{
  x.f := x.f + 1
}
"""


class TestProcedureStructure:
    def test_output_typechecks(self):
        result = translate(SIMPLE)
        check_boogie_program(result.boogie_program)

    def test_one_procedure_per_method(self):
        result = translate(SIMPLE)
        assert [p.name for p in result.boogie_program.procedures] == ["m_m"]

    def test_init_resets_mask(self):
        result = translate(SIMPLE)
        proc = result.boogie_program.procedure("m_m")
        first = proc.body[0].cmds[0]
        assert first == Assign("M", __import__("repro.boogie.ast", fromlist=["BVar"]).BVar("ZeroMask"))

    def test_wellformedness_branch_is_nondeterministic_and_dies(self):
        result = translate(SIMPLE)
        proc = result.boogie_program.procedure("m_m")
        branch = proc.body[0].ifopt
        assert branch is not None and branch.cond is None
        assert branch.otherwise == ()
        # The branch's final command is assume false.
        last_cmds = branch.then[-1].cmds
        from repro.boogie.ast import FALSE

        assert Assume(FALSE) in [c for b in branch.then for c in b.cmds]

    def test_viper_vars_become_typed_locals(self):
        result = translate(SIMPLE)
        proc = result.boogie_program.procedure("m_m")
        local_names = {name for name, _ in proc.locals}
        assert {"v_x", "v_q"} <= local_names

    def test_abstract_method_has_no_body_section(self):
        result = translate(
            """
            field f: Int
            method spec_only(x: Ref)
              requires acc(x.f, 1/2)
              ensures acc(x.f, 1/2)
            """
        )
        hint = result.methods["spec_only"].hint
        assert hint.body is None
        assert hint.body_inhale_pre is None


class TestEncodingShapes:
    def test_field_write_checks_full_permission(self):
        result = translate(SIMPLE)
        asserts = [c for c in body_cmds(result, "m") if isinstance(c, BAssert)]
        texts = [repr(a.expr) for a in asserts]
        assert any("readMask" in t and "1" in t for t in texts)

    def test_exhale_emits_wm_snapshot_and_havoc(self):
        result = translate(SIMPLE)
        cmds = body_cmds(result, "m")
        wm_assigns = [
            c for c in cmds
            if isinstance(c, Assign) and c.target.startswith("WM")
        ]
        assert wm_assigns, "exhale must snapshot the mask into WM"
        havocs = [c for c in cmds if isinstance(c, Havoc) and c.target.startswith("HH")]
        assert havocs, "exhale of an acc must havoc the heap"

    def test_pure_exhale_omits_heap_havoc(self):
        result = translate(
            """
            field f: Int
            method m(n: Int) requires n > 0 ensures true { exhale n > 0 }
            """
        )
        cmds = body_cmds(result, "m")
        assert not [c for c in cmds if isinstance(c, Havoc) and c.target.startswith("HH")]

    def test_always_emit_havoc_option(self):
        result = translate(
            """
            field f: Int
            method m(n: Int) requires n > 0 ensures true { exhale n > 0 }
            """,
            always_emit_exhale_havoc=True,
        )
        cmds = body_cmds(result, "m")
        assert [c for c in cmds if isinstance(c, Havoc) and c.target.startswith("HH")]

    def test_literal_fastpath_skips_temp(self):
        result = translate(
            """
            field f: Int
            method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
            { assert true }
            """
        )
        hint = result.methods["m"].hint
        acc_hint = hint.body_inhale_pre.assertion
        assert isinstance(acc_hint, AccHint)
        assert acc_hint.perm_temp_var is None

    def test_fastpath_disabled_by_option(self):
        result = translate(
            """
            field f: Int
            method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
            { assert true }
            """,
            literal_perm_fastpath=False,
        )
        acc_hint = result.methods["m"].hint.body_inhale_pre.assertion
        assert acc_hint.perm_temp_var is not None

    def test_variable_permission_uses_temp_and_guard(self):
        result = translate(SIMPLE)
        acc_hint = result.methods["m"].hint.body_exhale_post.assertion
        assert isinstance(acc_hint, SepHint) or isinstance(acc_hint, AccHint)


class TestCalls:
    CALL_SRC = """
    field f: Int
    method callee(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
    { assert true }
    method caller(a: Ref) requires acc(a.f, write) ensures acc(a.f, write)
    { callee(a) }
    """

    def test_call_omits_wd_checks_by_default(self):
        result = translate(self.CALL_SRC)
        call_hint = result.methods["caller"].hint.body
        assert isinstance(call_hint, CallHint)
        assert call_hint.exhale_pre.with_wd_checks is False
        assert call_hint.exhale_pre.wd_mask_var is None
        assert call_hint.inhale_post.with_wd_checks is False

    def test_wd_checks_at_calls_option(self):
        result = translate(self.CALL_SRC, wd_checks_at_calls=True)
        call_hint = result.methods["caller"].hint.body
        assert call_hint.exhale_pre.with_wd_checks is True
        assert call_hint.exhale_pre.wd_mask_var is not None

    def test_call_records_callee_dependency(self):
        result = translate(self.CALL_SRC)
        assert result.methods["caller"].hint.body.callee == "callee"

    def test_call_targets_are_havoced(self):
        result = translate(
            """
            field f: Int
            method callee(x: Ref) returns (y: Int)
              requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
            { y := 0 }
            method caller(a: Ref) requires acc(a.f, write) ensures acc(a.f, write)
            { var out: Int out := callee(a) }
            """
        )
        cmds = body_cmds(result, "caller")
        assert Havoc("v_out") in cmds

    def test_non_variable_argument_rejected(self):
        with pytest.raises(TranslationError, match="variables"):
            translate(
                """
                field f: Int
                method callee(n: Int) requires true ensures true { assert true }
                method caller() requires true ensures true { callee(1 + 2) }
                """
            )


class TestConditionalAssertions:
    def test_implication_becomes_guarded_if(self):
        result = translate(
            """
            field f: Int
            method m(x: Ref, b: Bool)
              requires b ==> acc(x.f, 1/2)
              ensures true
            { assert true }
            """
        )
        proc = result.boogie_program.procedure("m_m")
        wf_branch = proc.body[0].ifopt.then
        nested_ifs = [b.ifopt for b in wf_branch if b.ifopt is not None]
        assert nested_ifs, "implication must translate to an if-statement"
