"""Tests for the background theory and the standard interpretation."""

from fractions import Fraction

import pytest

from repro.boogie import check_axioms_bounded, check_boogie_program, BoogieProgram
from repro.boogie.ast import INT
from repro.boogie.values import BVBool, BVInt, BVReal, FrozenMap, UValue
from repro.frontend.background import (
    build_background,
    constant_valuation,
    field_const_name,
    from_boogie_value,
    GOOD_MASK,
    heap_to_boogie,
    ID_ON_POSITIVE,
    mask_to_boogie,
    NULL_ADDRESS,
    standard_interpretation,
    to_boogie_value,
    values_correspond,
)
from repro.viper.ast import Type
from repro.viper.state import ViperState
from repro.viper.values import NULL, VBool, VInt, VPerm, VRef

FIELDS = {"f": Type.INT, "g": Type.BOOL}


class TestDeclarations:
    def test_background_program_typechecks(self):
        bg = build_background(FIELDS)
        program = BoogieProgram(
            type_decls=bg.type_decls,
            consts=bg.consts,
            functions=bg.functions,
            axioms=bg.axioms,
        )
        check_boogie_program(program)

    def test_field_constants_declared_per_field(self):
        bg = build_background(FIELDS)
        const_names = {c.name for c in bg.consts}
        assert field_const_name("f") in const_names
        assert field_const_name("g") in const_names

    def test_axioms_satisfied_by_standard_interpretation(self):
        bg = build_background(FIELDS)
        program = BoogieProgram(
            type_decls=bg.type_decls,
            consts=bg.consts,
            functions=bg.functions,
            axioms=bg.axioms,
        )
        interp = standard_interpretation(FIELDS)
        result = check_axioms_bounded(program, interp, constant_valuation(bg))
        assert result.ok, result.detail


class TestValueCorrespondence:
    @pytest.mark.parametrize(
        "viper_value",
        [VInt(3), VBool(True), VRef(2), NULL, VPerm(Fraction(1, 2))],
    )
    def test_roundtrip(self, viper_value):
        viper_type = {
            VInt: Type.INT,
            VBool: Type.BOOL,
            VRef: Type.REF,
            type(NULL): Type.REF,
            VPerm: Type.PERM,
        }[type(viper_value)]
        boogie_value = to_boogie_value(viper_value)
        assert from_boogie_value(boogie_value, viper_type) == viper_value

    def test_numeric_correspondence_coerces(self):
        assert values_correspond(VPerm(Fraction(1)), BVInt(1))
        assert values_correspond(VInt(1), BVReal(Fraction(1)))
        assert not values_correspond(VInt(1), BVReal(Fraction(2)))

    def test_null_is_address_zero(self):
        assert to_boogie_value(NULL) == UValue("Ref", NULL_ADDRESS)

    def test_heap_encoding(self):
        state = ViperState(
            heap={(1, "f"): VInt(5)}, field_types=dict(FIELDS)
        )
        heap = heap_to_boogie(state)
        assert heap.payload.get((1, "f")) == BVInt(5)

    def test_mask_encoding_drops_zero_entries(self):
        state = ViperState(
            mask={(1, "f"): Fraction(0), (2, "f"): Fraction(1, 2)},
            field_types=dict(FIELDS),
        )
        mask = mask_to_boogie(state)
        assert (1, "f") not in mask.payload
        assert mask.payload.get((2, "f")) == Fraction(1, 2)


class TestStandardInterpretation:
    def setup_method(self):
        self.interp = standard_interpretation(FIELDS)

    def test_good_mask_accepts_consistent(self):
        mask = UValue("MaskType", FrozenMap({(1, "f"): Fraction(1)}))
        assert self.interp.apply(GOOD_MASK, (), (mask,)) == BVBool(True)

    def test_good_mask_rejects_inconsistent(self):
        mask = UValue("MaskType", FrozenMap({(1, "f"): Fraction(3, 2)}))
        assert self.interp.apply(GOOD_MASK, (), (mask,)) == BVBool(False)
        negative = UValue("MaskType", FrozenMap({(1, "f"): Fraction(-1, 2)}))
        assert self.interp.apply(GOOD_MASK, (), (negative,)) == BVBool(False)

    def test_read_after_update(self):
        heap = UValue("HeapType", FrozenMap())
        updated = self.interp.apply(
            "updHeap", (INT,), (heap, UValue("Ref", 1), UValue("Field", "f"), BVInt(9))
        )
        read = self.interp.apply(
            "readHeap", (INT,), (updated, UValue("Ref", 1), UValue("Field", "f"))
        )
        assert read == BVInt(9)

    def test_mask_read_defaults_to_zero(self):
        mask = UValue("MaskType", FrozenMap())
        read = self.interp.apply(
            "readMask", (INT,), (mask, UValue("Ref", 1), UValue("Field", "f"))
        )
        assert read == BVReal(Fraction(0))

    def test_id_on_positive_semantics(self):
        h1 = UValue("HeapType", FrozenMap({(1, "f"): BVInt(1)}))
        h2 = UValue("HeapType", FrozenMap({(1, "f"): BVInt(2)}))
        protected = UValue("MaskType", FrozenMap({(1, "f"): Fraction(1, 2)}))
        unprotected = UValue("MaskType", FrozenMap())
        assert self.interp.apply(ID_ON_POSITIVE, (), (h1, h2, protected)) == BVBool(False)
        assert self.interp.apply(ID_ON_POSITIVE, (), (h1, h2, unprotected)) == BVBool(True)
        assert self.interp.apply(ID_ON_POSITIVE, (), (h1, h1, protected)) == BVBool(True)

    def test_field_carrier_is_type_indexed(self):
        int_fields = self.interp.carrier_of(
            __import__("repro.boogie.ast", fromlist=["TCon"]).TCon("Field", (INT,))
        )
        assert UValue("Field", "f") in int_fields
        assert UValue("Field", "g") not in int_fields
