"""Tests for the hint datatypes and the instrumentation footprint."""

import pytest

from repro.frontend import translate_program, TranslationOptions
from repro.frontend.hints import (
    AccHint,
    CallHint,
    count_hint_nodes,
    ExhaleHint,
    InhaleHint,
    MethodHint,
    PureHint,
    SeqHint,
    SepHint,
)

from tests.helpers import parsed

SOURCE = """
field f: Int

method callee(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
{ assert true }

method m(x: Ref, p: Perm)
  requires acc(x.f, write) && p > none
  ensures acc(x.f, 1/2)
{
  x.f := 1
  callee(x)
  exhale acc(x.f, p) && x.f >= 0
  inhale acc(x.f, p)
}
"""


def hints_for(method="m", **options):
    program, info = parsed(SOURCE)
    result = translate_program(
        program, info, TranslationOptions(**options) if options else None
    )
    return result.methods[method].hint


class TestHintStructure:
    def test_method_hint_shape(self):
        hint = hints_for()
        assert isinstance(hint, MethodHint)
        assert hint.method == "m"
        assert hint.init_cmd_count == 2
        assert isinstance(hint.body_inhale_pre, InhaleHint)
        assert isinstance(hint.body_exhale_post, ExhaleHint)

    def test_wellformedness_hints_mirror_spec(self):
        hint = hints_for()
        pre_hint = hint.wellformedness.inhale_pre.assertion
        assert isinstance(pre_hint, SepHint)
        assert isinstance(pre_hint.left, AccHint)
        assert isinstance(pre_hint.right, PureHint)

    def test_call_hint_carries_dependency(self):
        hint = hints_for()

        def find_call(node):
            if isinstance(node, CallHint):
                return node
            if isinstance(node, SeqHint):
                return find_call(node.first) or find_call(node.second)
            return None

        call = find_call(hint.body)
        assert call is not None
        assert call.callee == "callee"
        assert call.exhale_pre.with_wd_checks is False

    def test_variable_amount_uses_temp(self):
        hint = hints_for()

        def find_exhale(node):
            if isinstance(node, ExhaleHint):
                return node
            if isinstance(node, SeqHint):
                return find_exhale(node.first) or find_exhale(node.second)
            return None

        exhale = find_exhale(hint.body)
        acc = exhale.assertion.left
        assert isinstance(acc, AccHint)
        assert acc.perm_temp_var is not None
        assert acc.guarded_update


class TestInstrumentationFootprint:
    """The paper instruments <500 lines to emit hints; the analog here is
    that the hint stream stays small relative to the generated code."""

    def test_hint_nodes_are_compact(self):
        program, info = parsed(SOURCE)
        result = translate_program(program, info)
        from repro.boogie.ast import stmt_cmd_count

        for name, translated in result.methods.items():
            hint_nodes = count_hint_nodes(translated.hint)
            boogie_cmds = stmt_cmd_count(translated.procedure.body)
            assert hint_nodes <= boogie_cmds, (
                f"{name}: {hint_nodes} hint nodes for {boogie_cmds} commands"
            )

    def test_count_is_structural(self):
        hint = hints_for()
        assert count_hint_nodes(hint) == (
            1
            + count_hint_nodes(hint.wellformedness.inhale_pre)
            + count_hint_nodes(hint.wellformedness.inhale_post)
            + count_hint_nodes(hint.body_inhale_pre)
            + count_hint_nodes(hint.body)
            + count_hint_nodes(hint.body_exhale_post)
        )


class TestHintsAreUntrusted:
    def test_hints_do_not_reference_boogie_ast(self):
        """Hints carry only names and counts — never Boogie expressions —
        so the tactic cannot smuggle translator state past the kernel."""
        import dataclasses

        from repro.frontend import hints as hints_module
        from repro.boogie import ast as boogie_ast

        boogie_types = {
            getattr(boogie_ast, name)
            for name in dir(boogie_ast)
            if isinstance(getattr(boogie_ast, name), type)
        }
        for name in dir(hints_module):
            obj = getattr(hints_module, name)
            if dataclasses.is_dataclass(obj) and isinstance(obj, type):
                for field in dataclasses.fields(obj):
                    for boogie_type in boogie_types:
                        assert boogie_type.__name__ not in str(field.type), (
                            f"{name}.{field.name} references Boogie AST"
                        )
