"""Determinism: the pipeline is a pure function of (source, options).

Reproducible translation and certification matter operationally (CI caches,
certificate diffing) and for the harness's metrics.
"""

from repro.boogie import pretty_boogie_program
from repro.certification import generate_program_certificate, render_program_certificate
from repro.frontend import translate_program, TranslationOptions

from tests.helpers import parsed

SOURCE = """
field f: Int
field g: Bool

method callee(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
{ assert true }

method m(x: Ref, p: Perm, b: Bool) returns (r: Int)
  requires acc(x.f, p) && p > none
  ensures acc(x.f, p)
{
  if (b) { r := x.f } else { r := 0 }
  callee(x)
  exhale b ==> acc(x.f, p/2)
  inhale b ==> acc(x.f, p/2)
}
"""


def test_translation_is_deterministic():
    program, info = parsed(SOURCE)
    first = translate_program(program, info)
    second = translate_program(program, info)
    assert first.boogie_program == second.boogie_program
    assert pretty_boogie_program(first.boogie_program) == pretty_boogie_program(
        second.boogie_program
    )


def test_hints_are_deterministic():
    program, info = parsed(SOURCE)
    first = translate_program(program, info)
    second = translate_program(program, info)
    for name in first.methods:
        assert first.methods[name].hint == second.methods[name].hint
        assert first.methods[name].record == second.methods[name].record


def test_certificates_are_deterministic():
    program, info = parsed(SOURCE)
    first = render_program_certificate(
        generate_program_certificate(translate_program(program, info))
    )
    second = render_program_certificate(
        generate_program_certificate(translate_program(program, info))
    )
    assert first == second


def test_options_change_output_but_stay_deterministic():
    program, info = parsed(SOURCE)
    options = TranslationOptions(wd_checks_at_calls=True)
    default = translate_program(program, info)
    varied_a = translate_program(program, info, options)
    varied_b = translate_program(program, info, options)
    assert varied_a.boogie_program == varied_b.boogie_program
    assert varied_a.boogie_program != default.boogie_program
