"""Integration: corpus files through the CLI's independent-check path.

Dumps the corpus to disk, then runs the full external workflow on one file
from each suite: ``certify`` (writes .bpl + .cert) followed by ``check``
(parses all three text files and runs only the kernel).
"""

import pytest

from repro.cli import main
from repro.harness import dump_corpus


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("corpus")
    count = dump_corpus(directory)
    assert count == 72
    return directory


SAMPLES = [
    ("viper", "0063"),
    ("gobra", "fail3"),
    ("vercors", "permissions"),
    ("mpp", "darvas"),
]


@pytest.mark.parametrize("suite,name", SAMPLES)
def test_certify_then_independent_check(corpus_dir, tmp_path, suite, name, capsys):
    source = corpus_dir / suite / f"{name}.vpr"
    assert source.exists()
    bpl = tmp_path / f"{name}.bpl"
    cert = tmp_path / f"{name}.cert"
    assert main([
        "certify", str(source), "-o", str(cert), "--boogie-output", str(bpl)
    ]) == 0
    assert main(["check", str(source), str(bpl), str(cert)]) == 0
    out = capsys.readouterr().out
    assert "ACCEPTED" in out


def test_dumped_files_parse_as_standalone_sources(corpus_dir):
    from repro.viper import check_program, parse_program

    sample = corpus_dir / "mpp" / "banerjee.vpr"
    program = parse_program(sample.read_text())
    check_program(program)
    assert len(program.methods) == 8
