"""Semantic oracle over a corpus sample.

Beyond kernel acceptance (RQ1), a sample of corpus programs is re-validated
by failure-direction co-execution — the translated procedure must have a
failing Boogie execution wherever the Viper obligation has a failing run.
The sample keeps small files from each suite (the oracle enumerates both
semantics exhaustively, so large files are out of budget here; the kernel
covers those).
"""

import pytest

from repro.certification.oracle import validate_method_semantically
from repro.frontend import translate_program
from repro.harness import generate_file
from repro.viper import check_program, parse_program

SAMPLE = [
    ("Viper", "0005", 4, 1),
    ("Viper", "0227", 5, 1),
    ("Viper", "test", 6, 1),
    ("Gobra", "simple2", 10, 1),
    ("Gobra", "fail3", 19, 2),
    ("VerCors", "permissions", 39, 5),
]


@pytest.mark.parametrize("suite,name,loc,methods", SAMPLE)
def test_corpus_file_failure_direction(suite, name, loc, methods):
    corpus_file = generate_file(suite, name, loc, methods)
    program = parse_program(corpus_file.source)
    type_info = check_program(program)
    result = translate_program(program, type_info)
    for method in program.methods:
        if method.body is None:
            continue
        verdict = validate_method_semantically(
            result, method.name, max_states=8, max_boogie_paths=40_000
        )
        assert verdict.ok, f"{suite}/{name}/{method.name}: {verdict.detail}"
