"""Tests for the benchmark corpus and the evaluation pipeline."""

import pytest

from repro.harness import (
    aggregate,
    aggregate_overall,
    analysis_overhead,
    bench_report,
    blowup_factor,
    full_corpus,
    generate_file,
    render_detail_table,
    render_table1,
    run_file,
    run_files,
    suite_files,
    TABLE2_SELECTION,
)
from repro.viper import check_program, parse_program


class TestCorpusShape:
    """The corpus mirrors the paper's Table 1 structure exactly."""

    @pytest.mark.parametrize(
        "suite,files,methods",
        [("Viper", 34, 105), ("Gobra", 17, 65), ("VerCors", 18, 116), ("MPP", 3, 13)],
    )
    def test_suite_counts_match_the_paper(self, suite, files, methods):
        corpus = suite_files(suite)
        assert len(corpus) == files
        total_methods = 0
        for corpus_file in corpus:
            program = parse_program(corpus_file.source)
            total_methods += len(program.methods)
        assert total_methods == methods

    def test_total_is_72_files_299_methods(self):
        corpus = full_corpus()
        assert sum(len(files) for files in corpus.values()) == 72
        total = 0
        for files in corpus.values():
            for corpus_file in files:
                total += len(parse_program(corpus_file.source).methods)
        assert total == 299

    def test_generation_is_deterministic(self):
        first = generate_file("Gobra", "fail1", 44, 3)
        second = generate_file("Gobra", "fail1", 44, 3)
        assert first.source == second.source

    def test_every_file_typechecks(self):
        for files in full_corpus().values():
            for corpus_file in files:
                program = parse_program(corpus_file.source)
                check_program(program)

    def test_every_file_uses_the_heap(self):
        # The paper's selection criterion: at least one acc predicate.
        for files in full_corpus().values():
            for corpus_file in files:
                assert "acc(" in corpus_file.source, corpus_file.name

    def test_table2_selection_exists(self):
        corpus = full_corpus()
        for suite, name in TABLE2_SELECTION:
            assert any(f.name == name for f in corpus[suite]), (suite, name)


class TestRunner:
    def test_run_file_metrics(self):
        corpus_file = generate_file("Viper", "0008", 12, 2)
        metrics = run_file(corpus_file)
        assert metrics.certified, metrics.error
        assert metrics.methods == 2
        assert metrics.viper_loc > 0
        assert metrics.boogie_loc > metrics.viper_loc
        assert metrics.cert_loc > 0
        assert metrics.check_seconds > 0

    def test_run_file_records_analyze_timing(self):
        corpus_file = generate_file("Viper", "0008", 12, 2)
        metrics = run_file(corpus_file)
        assert metrics.analyze_seconds > 0
        assert metrics.total_seconds > metrics.analyze_seconds
        payload = metrics.to_dict()
        assert "analyze_seconds" in payload and "total_seconds" in payload

    def test_analysis_overhead_within_budget_on_full_corpus(self):
        # The acceptance criterion: the advisory analyze stage stays under
        # 5% of pipeline wall-clock over the *full* benchmark corpus (the
        # denominator the budget is defined against — tiny suites like MPP
        # legitimately sit higher because their per-file pipelines are
        # cheap).  ``bench --json`` publishes the same summary.
        per_suite = {
            suite: run_files(files) for suite, files in full_corpus().items()
        }
        summary = analysis_overhead(per_suite)
        assert summary["analyze_seconds"] > 0
        assert summary["budget_fraction"] == 0.05
        assert summary["within_budget"], summary
        report = bench_report(per_suite)
        assert report["analysis_overhead"] == summary
        # Every per-file row carries the analyze timing bench consumes.
        for metrics in per_suite.values():
            assert all(m.total_seconds > m.analyze_seconds > 0 for m in metrics)

    def test_aggregate(self):
        files = suite_files("MPP")
        metrics = run_files(files)
        row = aggregate("MPP", metrics)
        assert row.files == 3
        assert row.methods == 13
        assert row.all_certified

    def test_render_tables(self):
        metrics = run_files(suite_files("MPP"))
        per_suite = {"MPP": metrics}
        table1 = render_table1(per_suite)
        assert "MPP" in table1 and "Overall" in table1
        detail = render_detail_table(metrics, "Table 4: MPP")
        assert "banerjee" in detail

    def test_blowup_is_positive(self):
        metrics = run_files(suite_files("MPP"))
        factor = blowup_factor({"MPP": metrics})
        assert factor > 1.0
