"""End-to-end checks of the paper's headline claims (Sec. 5).

These tests run the full 72-file corpus through the pipeline and assert the
*shape* results the paper reports:

* RQ1 — every file's certificate is generated and checks successfully
  (the paper: "Isabelle successfully checked the generated proofs for all
  Viper files");
* the Boogie translation is several times larger than the Viper source
  (the paper: 6.2× mean);
* certificates are larger than the Boogie programs they justify (the
  paper's Isabelle proofs average ~6.6× the Boogie LoC);
* RQ2 — checking completes within a CI-friendly bound, and no file takes
  disproportionately long (the paper: no file over 4 minutes; here the
  Python kernel is far faster, so the bound is seconds).
"""

import statistics

import pytest

from repro.harness import blowup_factor, full_corpus, run_files

# The corpus is expensive enough to share across all tests in this module.
_PER_SUITE = None


def per_suite():
    global _PER_SUITE
    if _PER_SUITE is None:
        _PER_SUITE = {suite: run_files(files) for suite, files in full_corpus().items()}
    return _PER_SUITE


def all_metrics():
    return [m for metrics in per_suite().values() for m in metrics]


class TestRQ1AllProofsCheck:
    def test_every_certificate_checks(self):
        failures = [(m.suite, m.name, m.error) for m in all_metrics() if not m.certified]
        assert not failures, failures

    def test_all_four_suites_covered(self):
        assert set(per_suite()) == {"Viper", "Gobra", "VerCors", "MPP"}


class TestSizeShape:
    def test_boogie_blowup_in_paper_range(self):
        factor = blowup_factor(per_suite())
        # Paper: 6.2x; our encoding is the same shape, modestly leaner.
        assert 3.0 <= factor <= 9.0, factor

    def test_certificates_scale_with_boogie(self):
        metrics = all_metrics()
        ratios = [m.cert_loc / m.viper_loc for m in metrics]
        assert statistics.mean(ratios) > 1.5

    def test_mpp_has_the_largest_files(self):
        means = {
            suite: statistics.mean(m.viper_loc for m in metrics)
            for suite, metrics in per_suite().items()
        }
        assert means["MPP"] == max(means.values())


class TestRQ2CheckTimes:
    def test_no_file_exceeds_bound(self):
        # Paper bound: 4 minutes in Isabelle; the Python kernel must stay
        # well under a couple of seconds per file.
        worst = max(m.check_seconds for m in all_metrics())
        assert worst < 5.0, worst

    def test_check_time_correlates_with_certificate_size(self):
        metrics = sorted(all_metrics(), key=lambda m: m.cert_loc)
        small = statistics.mean(m.check_seconds for m in metrics[:10])
        large = statistics.mean(m.check_seconds for m in metrics[-10:])
        assert large > small

    def test_largest_file_is_banerjee_shaped(self):
        # The paper's slowest file is MPP/banerjee; ours must be among the
        # largest certificates as well.
        metrics = all_metrics()
        banerjee = next(m for m in metrics if m.name == "banerjee")
        cert_sizes = sorted(m.cert_loc for m in metrics)
        assert banerjee.cert_loc >= cert_sizes[-3]
