"""Tracing must cost (almost) nothing.

Two guards, per the design contract in ``docs/OBSERVABILITY.md``:

* **Tracing off is structurally free** — with no ambient context and no
  trace store, no span object is ever constructed: the worker returns no
  trace keys, and the executor ships the bare worker callable (no
  wrapper, no header pickling).
* **Tracing on is cheap** — spans are *derived* from instrumentation
  records the pipeline collects anyway, so the marginal cost is one
  post-hoc derive + export pass.  That pass must stay under 3% of the
  pipeline wall it describes.
"""

from __future__ import annotations

import time

from repro.harness import suite_files
from repro.pipeline import run_pipeline
from repro.pipeline.executor import _TracedWorker, parallel_map
from repro.service import worker
from repro.trace.derive import spans_from_instrumentation
from repro.trace.export import chrome_trace
from repro.trace.spans import Span, current_traceparent


class TestTracingOffIsFree:
    def test_no_ambient_context_by_default(self):
        assert current_traceparent() is None

    def test_worker_response_has_no_trace_keys(self):
        worker.configure({})
        source = suite_files("Viper")[0].source
        response = worker.handle_job({"action": "certify", "source": source})
        assert response["ok"]
        assert "trace" not in response
        assert "trace_id" not in response

    def test_executor_ships_the_bare_worker(self, monkeypatch):
        # Without a context there must be nothing to wrap: any
        # _TracedWorker construction on this path is a regression.
        def forbid(*args, **kwargs):
            raise AssertionError("tracing-off path constructed a _TracedWorker")

        monkeypatch.setattr(_TracedWorker, "__init__", forbid)
        assert parallel_map(len, ["ab", "abc"], jobs=2) == [2, 3]


class TestTracingOnIsCheap:
    def test_derive_and_export_under_three_percent_of_pipeline_wall(self):
        source = suite_files("Viper")[0].source

        started = time.perf_counter()
        ctx = run_pipeline(source)
        pipeline_wall = time.perf_counter() - started
        assert ctx.report.ok

        root = Span.start("certify")
        started = time.perf_counter()
        spans = spans_from_instrumentation(ctx.instrumentation, root.context())
        chrome_trace([root.end()] + spans)
        tracing_wall = time.perf_counter() - started

        assert spans  # the pass actually derived the full span set
        assert tracing_wall < 0.03 * pipeline_wall, (
            f"derive+export took {tracing_wall:.6f}s against a "
            f"{pipeline_wall:.6f}s pipeline run (>{3}%)"
        )
