"""The span model: IDs, traceparent propagation, ambient context."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.trace.spans import (
    Span,
    SpanContext,
    TraceCollector,
    current_context,
    current_trace_id,
    current_traceparent,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    start_span,
    use_context,
)


class TestIdentifiers:
    def test_trace_id_is_32_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        int(trace_id, 16)

    def test_span_id_is_16_hex(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        int(span_id, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestTraceparent:
    def test_round_trip(self):
        ctx = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        parsed = parse_traceparent(format_traceparent(ctx))
        assert parsed == ctx

    def test_unsampled_flag_round_trips(self):
        ctx = SpanContext(
            trace_id=new_trace_id(), span_id=new_span_id(), sampled=False
        )
        header = format_traceparent(ctx)
        assert header.endswith("-00")
        assert parse_traceparent(header) == ctx

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                     # wrong lengths
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",          # unknown version
        "00-" + "g" * 32 + "-" + "b" * 16 + "-01",          # non-hex trace
        "00-" + "a" * 32 + "-" + "z" * 16 + "-01",          # non-hex span
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",          # all-zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",          # all-zero span
        "00-" + "a" * 32 + "-" + "b" * 16,                   # missing flags
        "00-" + "a" * 32 + "-" + "b" * 16 + "-01-extra",     # extra part
        42,
    ])
    def test_malformed_headers_drop_to_none(self, header):
        # Corrupt propagation must degrade to an untraced request, never
        # raise into the request path.
        assert parse_traceparent(header) is None


class TestSpan:
    def test_start_end_measures_duration(self):
        span = Span.start("work")
        assert span.start_unix > 0
        span.end()
        assert span.duration >= 0.0

    def test_end_is_idempotent(self):
        span = Span.start("work")
        span.end()
        first = span.duration
        span.end()
        assert span.duration == first

    def test_parenting(self):
        parent = Span.start("parent")
        child = Span.start("child", parent=parent.context())
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_set_error(self):
        span = Span.start("work")
        span.set_error("boom")
        assert span.status == "error"
        assert span.attributes["error"] == "boom"

    def test_dict_round_trip(self):
        span = Span.start("work", attributes={"k": "v"})
        span.set_error("bad")
        span.end()
        restored = Span.from_dict(span.to_dict())
        assert restored == span

    def test_spans_are_picklable(self):
        span = Span.start("work").end()
        assert pickle.loads(pickle.dumps(span)) == span


class TestCollector:
    def test_collects_in_order(self):
        collector = TraceCollector()
        a, b = Span.start("a").end(), Span.start("b").end()
        collector.add(a)
        collector.extend([b])
        assert collector.spans == [a, b]
        assert len(collector) == 2

    def test_drain_clears(self):
        collector = TraceCollector()
        collector.add(Span.start("a").end())
        assert len(collector.drain()) == 1
        assert len(collector) == 0

    def test_by_trace_filters(self):
        collector = TraceCollector()
        a, b = Span.start("a").end(), Span.start("b").end()
        collector.extend([a, b])
        assert collector.by_trace(a.trace_id) == [a]

    def test_thread_safety(self):
        collector = TraceCollector()

        def add_many():
            for _ in range(200):
                collector.add(Span.start("x").end())

        threads = [threading.Thread(target=add_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(collector) == 800


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_context() is None
        assert current_trace_id() is None
        assert current_traceparent() is None

    def test_use_context_scopes(self):
        ctx = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        with use_context(ctx):
            assert current_context() == ctx
            assert current_trace_id() == ctx.trace_id
            assert parse_traceparent(current_traceparent()) == ctx
        assert current_context() is None

    def test_start_span_nests_and_collects(self):
        collector = TraceCollector()
        with start_span("outer", collector=collector) as outer:
            with start_span("inner", collector=collector) as inner:
                assert current_context() == inner.context()
            assert current_context() == outer.context()
        assert [s.name for s in collector.spans] == ["inner", "outer"]
        assert collector.spans[0].parent_id == outer.span_id

    def test_start_span_marks_error_on_raise(self):
        collector = TraceCollector()
        with pytest.raises(ValueError):
            with start_span("broken", collector=collector):
                raise ValueError("nope")
        (span,) = collector.spans
        assert span.status == "error"
        assert "ValueError" in span.attributes["error"]
        assert current_context() is None
