"""`repro certify --trace` and `repro trace summarize` end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.trace.export import read_spans

GOOD = """
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""

#: Type-defective: assigns to an undeclared variable, so the pipeline
#: raises during typecheck and the CLI exits 2 with a diagnostic.
BAD = """
method broken()
{
  x := 1
}
"""


@pytest.fixture
def viper_file(tmp_path):
    path = tmp_path / "demo.vpr"
    path.write_text(GOOD)
    return path


class TestCertifyTrace:
    def test_writes_chrome_loadable_trace(self, viper_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["certify", str(viper_file), "--trace", str(out)]) == 0
        message = capsys.readouterr().out
        assert f"wrote {out}" in message

        document = json.loads(out.read_text())
        assert "traceEvents" in document
        spans = read_spans(str(out))
        names = {s.name for s in spans}
        assert "certify" in names
        assert {"stage.parse", "stage.translate", "stage.check"} <= names
        assert {"unit.translate", "unit.generate"} <= names
        # One trace id, rooted at the certify span.
        assert len({s.trace_id for s in spans}) == 1
        (root,) = [s for s in spans if s.parent_id is None]
        assert root.name == "certify"
        assert root.attributes["file"] == str(viper_file)

    def test_failed_run_still_writes_an_error_trace(self, tmp_path, capsys):
        # A typecheck failure exits through the diagnostic path (rc 2);
        # the trace must still land on disk, covering the stages that ran.
        bad = tmp_path / "bad.vpr"
        bad.write_text(BAD)
        out = tmp_path / "trace.json"
        assert main(["certify", str(bad), "--trace", str(out)]) == 2
        capsys.readouterr()
        spans = read_spans(str(out))
        (root,) = [s for s in spans if s.parent_id is None]
        assert root.status == "error"
        assert root.attributes["error"]
        names = {s.name for s in spans}
        assert "stage.parse" in names
        assert "stage.check" not in names

    def test_without_flag_no_trace_is_written(self, viper_file, tmp_path, capsys):
        assert main(["certify", str(viper_file)]) == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("*.json"))


class TestTraceSummarize:
    @pytest.fixture
    def trace_file(self, viper_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["certify", str(viper_file), "--trace", str(out)]) == 0
        capsys.readouterr()
        return out

    def test_renders_flame_table(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "certify" in out
        assert "stage.translate" in out
        # Aggregate table: span names with counts and total seconds.
        assert "count" in out and "total" in out

    def test_accepts_multiple_files(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file), str(trace_file)]) == 0
        capsys.readouterr()

    def test_empty_input_exits_one(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty)]) == 1
        assert "no spans found" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["trace", "summarize", str(missing)]) == 2
        capsys.readouterr()

    def test_json_emits_stats_and_flame_tree(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["spans"] > 0
        assert "certify" in payload["names"]
        stats = payload["names"]["certify"]
        assert {"count", "total", "mean", "max"} <= set(stats)
        # The slowest trace's flame tree, rooted at the certify span.
        assert payload["slowest_trace"] in {
            t["trace_id"] for t in payload["traces"]
        }
        flame = payload["flame"]
        assert flame["name"] == "certify"
        child_names = {c["name"] for c in flame["children"]}
        assert "stage.translate" in child_names
        assert all(0.0 <= c["share"] <= 1.0 for c in flame["children"])

    def test_json_to_file(self, trace_file, tmp_path, capsys):
        out = tmp_path / "summary.json"
        assert main([
            "trace", "summarize", str(trace_file), "--json", str(out),
        ]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["flame"]["name"] == "certify"

    def test_json_empty_input_still_exits_one(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "summarize", str(empty), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 0
        assert "flame" not in payload

    def test_garbage_file_exits_two(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["trace", "summarize", str(garbage)]) == 2
        capsys.readouterr()
