"""Loadgen against a traced server: every 5xx has a persisted trace.

The load report's ``error_trace_ids`` must name exactly the ids a
``--trace-dir`` server persisted as ``.error.trace.json`` files, so an
operator can go from a failed load run to the flame view of each failure
without grepping logs.
"""

from __future__ import annotations

from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.server import BackgroundServer, ServerConfig
from repro.trace.export import read_spans
from repro.trace.sampling import RequestTraceStore


def _run(server, requests=4):
    config = LoadgenConfig(
        port=server.port,
        requests=requests,
        concurrency=2,
        suite="Viper",
        report_path=None,
    )
    return run_loadgen(config)


class TestLoadgenTracing:
    def test_every_5xx_has_a_persisted_error_trace(self, tmp_path):
        # A deadline no request can meet: every certify expires to 504.
        config = ServerConfig(
            port=0, use_threads=True, jobs=1, quiet=True,
            trace_dir=str(tmp_path), request_timeout=0.0001, drain_grace=0.5,
        )
        with BackgroundServer(config) as server:
            report = _run(server)

        outcomes = report["outcomes"]
        assert outcomes["server_errors"] == outcomes["completed"] > 0
        error_ids = outcomes["error_trace_ids"]
        assert len(error_ids) == outcomes["completed"]

        store = RequestTraceStore(str(tmp_path))
        persisted = set(store.persisted_trace_ids())
        for trace_id in error_ids:
            assert trace_id in persisted
            (path,) = tmp_path.glob(f"{trace_id}.error.trace.json")
            (root,) = [
                s for s in read_spans(str(path)) if s.name == "request"
            ]
            assert root.status == "error"
            assert root.attributes["status"] == 504

    def test_healthy_run_reports_no_error_ids(self):
        config = ServerConfig(port=0, use_threads=True, jobs=1, quiet=True)
        with BackgroundServer(config) as server:
            report = _run(server, requests=2)
        outcomes = report["outcomes"]
        assert outcomes["server_errors"] == 0
        assert outcomes["error_trace_ids"] == []
        assert outcomes["ok"] == outcomes["completed"] == 2
