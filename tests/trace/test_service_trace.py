"""End-to-end request tracing through the live service.

A :class:`BackgroundServer` with ``trace_dir`` set must produce, for one
``/v1/certify`` request, a single persisted Chrome-loadable trace whose
spans cover server accept → admission → pool dispatch → worker handling
→ every pipeline stage → every method unit — all under one ``trace_id``
that the response and the ``X-Trace-Id`` header echo.  Deadline expiries
(504) persist an error trace unconditionally.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.service import worker
from repro.service.server import BackgroundServer, ServerConfig
from repro.trace.export import read_spans
from repro.trace.spans import SpanContext, format_traceparent, new_span_id, new_trace_id

SMALL = """
field val: Int

method get(self: Ref) returns (r: Int)
  requires acc(self.val)
  ensures acc(self.val) && r == self.val
{
  r := self.val
}
"""


def _post(port: int, path: str, body: dict, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def _config(**overrides) -> ServerConfig:
    return ServerConfig(port=0, use_threads=True, jobs=1, quiet=True, **overrides)


class TestTracedRequests:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        trace_dir = tmp_path_factory.mktemp("traces")
        config = _config(trace_dir=str(trace_dir), trace_rate=1.0)
        with BackgroundServer(config) as server:
            status, body, headers = _post(
                server.port, "/v1/certify", {"source": SMALL}
            )
            yield trace_dir, status, body, headers, server

    def test_response_carries_trace_id(self, traced):
        _, status, body, headers, _ = traced
        assert status == 200 and body["ok"]
        assert len(body["trace_id"]) == 32
        assert headers["X-Trace-Id"] == body["trace_id"]

    def test_trace_never_leaks_into_the_response_body(self, traced):
        # Span dicts travel worker→server internally and are folded into
        # the store; clients get only the id.
        _, _, body, _, _ = traced
        assert "trace" not in body

    def test_one_trace_covers_server_pool_stage_unit(self, traced):
        trace_dir, _, body, _, _ = traced
        (path,) = trace_dir.glob(f"{body['trace_id']}*.trace.json")
        spans = read_spans(str(path))
        assert {s.trace_id for s in spans} == {body["trace_id"]}
        names = {s.name for s in spans}
        assert {"request", "admission", "pool.submit", "worker.handle"} <= names
        assert {"stage.parse", "stage.translate", "stage.check"} <= names
        assert {"unit.translate", "unit.generate"} <= names

    def test_span_tree_is_connected(self, traced):
        trace_dir, _, body, _, _ = traced
        (path,) = trace_dir.glob(f"{body['trace_id']}*.trace.json")
        spans = read_spans(str(path))
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["request"]
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, span.name

    def test_worker_span_reports_queue_wait(self, traced):
        trace_dir, _, body, _, _ = traced
        (path,) = trace_dir.glob(f"{body['trace_id']}*.trace.json")
        (handle,) = [s for s in read_spans(str(path)) if s.name == "worker.handle"]
        assert handle.attributes["queue_wait_seconds"] >= 0.0
        assert handle.attributes["action"] == "certify"

    def test_persisted_counter_and_openmetrics_exemplar(self, traced):
        trace_dir, _, body, _, server = traced
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/metrics",
            headers={"Accept": "application/openmetrics-text"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            content_type = response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert content_type.startswith("application/openmetrics-text")
        assert "repro_traces_persisted_total" in text
        assert f'# {{trace_id="{body["trace_id"]}"}}' in text
        assert text.rstrip().endswith("# EOF")

        # The plain Prometheus variant stays exemplar-free.
        with urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/metrics", timeout=10
        ) as response:
            plain = response.read().decode("utf-8")
        assert "# {" not in plain
        assert "# EOF" not in plain


class TestUntracedRequests:
    def test_no_trace_dir_still_mints_ids_but_writes_nothing(self, tmp_path):
        with BackgroundServer(_config()) as server:
            status, body, headers = _post(
                server.port, "/v1/certify", {"source": SMALL}
            )
        assert status == 200 and body["ok"]
        assert len(body["trace_id"]) == 32
        assert headers["X-Trace-Id"] == body["trace_id"]
        assert "trace" not in body
        assert list(tmp_path.iterdir()) == []


class TestErrorTraces:
    def test_504_persists_an_error_trace(self, tmp_path):
        # A deadline the pipeline cannot meet: every certify times out.
        config = _config(
            trace_dir=str(tmp_path), request_timeout=0.0001, drain_grace=0.5
        )
        with BackgroundServer(config) as server:
            status, body, _ = _post(server.port, "/v1/certify", {"source": SMALL})
        assert status == 504
        trace_id = body["trace_id"]
        (path,) = tmp_path.glob(f"{trace_id}.error.trace.json")
        spans = read_spans(str(path))
        (root,) = [s for s in spans if s.name == "request"]
        assert root.status == "error"
        assert root.attributes["status"] == 504
        (pool,) = [s for s in spans if s.name == "pool.submit"]
        assert pool.status == "error"


class TestWorkerJobTracing:
    """handle_job-level behaviour, without a server in the way."""

    def setup_method(self):
        worker.configure({})

    def test_traceparent_yields_trace_and_trace_id(self):
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        response = worker.handle_job({
            "action": "certify",
            "source": SMALL,
            "traceparent": format_traceparent(parent),
        })
        assert response["ok"]
        assert response["trace_id"] == parent.trace_id
        names = {s["name"] for s in response["trace"]}
        assert "worker.handle" in names and "stage.check" in names
        (handle,) = [s for s in response["trace"] if s["name"] == "worker.handle"]
        assert handle["parent_id"] == parent.span_id

    def test_no_traceparent_yields_no_trace_keys(self):
        response = worker.handle_job({"action": "certify", "source": SMALL})
        assert response["ok"]
        assert "trace" not in response
        assert "trace_id" not in response

    def test_malformed_traceparent_degrades_to_untraced(self):
        response = worker.handle_job({
            "action": "certify", "source": SMALL, "traceparent": "junk",
        })
        assert response["ok"]
        assert "trace" not in response

    def test_early_reject_is_traced_without_stage_spans(self):
        parent = SpanContext(trace_id=new_trace_id(), span_id=new_span_id())
        response = worker.handle_job({
            "action": "nonsense",
            "traceparent": format_traceparent(parent),
        })
        assert response["status"] == 400
        assert response["trace_id"] == parent.trace_id
        names = [s["name"] for s in response["trace"]]
        assert names == ["worker.handle"]
        (handle,) = response["trace"]
        assert handle["status"] == "error"
