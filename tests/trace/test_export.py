"""Exporter round-trips and the Chrome ``trace_event`` document shape."""

from __future__ import annotations

import json

import pytest

from repro.trace.export import (
    chrome_trace,
    read_many,
    read_spans,
    spans_from_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.spans import Span


@pytest.fixture
def spans():
    root = Span.start("request", attributes={"endpoint": "/v1/certify"})
    child = Span.start("stage.parse", parent=root.context())
    child.end()
    root.end()
    other = Span.start("request").end()
    other.set_error("boom")
    return [root, child, other]


class TestChromeTrace:
    def test_document_shape(self, spans):
        document = chrome_trace(spans)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        # One thread-name row per trace, one complete event per span.
        assert len(metadata) == 2
        assert len(complete) == len(spans)
        assert all(e["name"] == "thread_name" for e in metadata)

    def test_timestamps_are_microseconds(self, spans):
        events = [e for e in chrome_trace(spans)["traceEvents"] if e["ph"] == "X"]
        for event, span in zip(events, spans):
            assert event["ts"] == pytest.approx(span.start_unix * 1e6)
            assert event["dur"] == pytest.approx(span.duration * 1e6)
            assert event["cat"] == "repro"

    def test_same_trace_shares_tid(self, spans):
        events = [e for e in chrome_trace(spans)["traceEvents"] if e["ph"] == "X"]
        root, child, other = events
        assert root["tid"] == child["tid"]
        assert other["tid"] != root["tid"]

    def test_document_is_json_serialisable(self, spans):
        json.dumps(chrome_trace(spans))

    def test_lossless_round_trip(self, spans):
        assert spans_from_chrome(chrome_trace(spans)) == spans


class TestFileRoundTrips:
    def test_chrome_file_round_trip(self, spans, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, spans)
        assert read_spans(path) == spans

    def test_jsonl_file_round_trip(self, spans, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, spans)
        assert read_spans(path) == spans

    def test_jsonl_skips_blank_lines(self, spans, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(s.to_dict()) for s in spans]
        path.write_text(lines[0] + "\n\n" + "\n".join(lines[1:]) + "\n")
        assert read_spans(str(path)) == spans

    def test_single_span_object_file(self, spans, tmp_path):
        path = tmp_path / "span.json"
        path.write_text(json.dumps(spans[0].to_dict()))
        assert read_spans(str(path)) == [spans[0]]

    def test_read_many_concatenates(self, spans, tmp_path):
        chrome = str(tmp_path / "a.json")
        jsonl = str(tmp_path / "b.jsonl")
        write_chrome_trace(chrome, spans[:2])
        write_jsonl(jsonl, spans[2:])
        assert read_many([chrome, jsonl]) == spans


class TestGoldenDocument:
    """A fully pinned export: field-for-field, nothing implicit."""

    def test_golden_chrome_document(self):
        span = Span(
            name="stage.check",
            trace_id="ab" * 16,
            span_id="cd" * 8,
            parent_id="ef" * 8,
            start_unix=1700000000.0,
            duration=0.5,
            attributes={"cached": True},
        )
        assert chrome_trace([span]) == {
            "traceEvents": [
                {
                    "name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
                    "args": {"name": "trace abababab"},
                },
                {
                    "name": "stage.check",
                    "ph": "X",
                    "ts": 1700000000.0 * 1e6,
                    "dur": 0.5 * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "cat": "repro",
                    "args": {"span": {
                        "name": "stage.check",
                        "trace_id": "ab" * 16,
                        "span_id": "cd" * 8,
                        "parent_id": "ef" * 8,
                        "start_unix": 1700000000.0,
                        "duration": 0.5,
                        "attributes": {"cached": True},
                    }},
                },
            ],
            "displayTimeUnit": "ms",
        }
