"""Spans derived from instrumentation records — the reconciliation story.

Traces are *derived* from the same :class:`PipelineInstrumentation`
records that feed ``bench --json``, so by construction the two cannot
disagree about where the time went.  These tests pin that contract: the
stage span minus its ``cache_lookup`` child equals the record's
``seconds`` — the bench number.
"""

from __future__ import annotations

import time

import pytest

from repro.pipeline.instrumentation import PipelineInstrumentation
from repro.trace.derive import _SKIP_WIDTH, spans_from_instrumentation
from repro.trace.spans import Span, TraceCollector


@pytest.fixture
def parent():
    return Span.start("request").context()


def _by_name(spans):
    index = {}
    for span in spans:
        index.setdefault(span.name, []).append(span)
    return index


class TestStageSpans:
    def test_one_span_per_stage_record(self, parent):
        inst = PipelineInstrumentation()
        with inst.stage("parse"):
            pass
        with inst.stage("check"):
            pass
        spans = _by_name(spans_from_instrumentation(inst, parent))
        assert set(spans) == {"stage.parse", "stage.check"}
        for span in spans["stage.parse"] + spans["stage.check"]:
            assert span.trace_id == parent.trace_id
            assert span.parent_id == parent.span_id

    def test_start_times_convert_to_unix(self, parent):
        inst = PipelineInstrumentation()
        before = time.time()
        with inst.stage("parse"):
            pass
        after = time.time()
        (span,) = spans_from_instrumentation(inst, parent)
        assert before - 0.01 <= span.start_unix <= after + 0.01

    def test_skipped_stage_gets_marker_width(self, parent):
        inst = PipelineInstrumentation()
        inst.record_skip("translate", cached=True)
        (span,) = spans_from_instrumentation(inst, parent)
        assert span.name == "stage.translate"
        assert span.duration == _SKIP_WIDTH
        assert span.attributes["cached"] is True
        assert span.attributes["skipped"] is True

    def test_artifact_sizes_become_attributes(self, parent):
        inst = PipelineInstrumentation()
        with inst.stage("render") as record:
            record.artifacts["boogie_loc"] = 42
        (span,) = spans_from_instrumentation(inst, parent)
        assert span.attributes["boogie_loc"] == 42

    def test_collector_receives_spans(self, parent):
        inst = PipelineInstrumentation()
        with inst.stage("parse"):
            pass
        collector = TraceCollector()
        spans = spans_from_instrumentation(inst, parent, collector=collector)
        assert collector.spans == spans


class TestCacheLookupSplit:
    def test_stage_span_covers_work_plus_lookup(self, parent):
        inst = PipelineInstrumentation()
        with inst.stage("translate"):
            inst.record_cache_lookup(0.25)
            time.sleep(0.002)
        spans = _by_name(spans_from_instrumentation(inst, parent))
        (stage,) = spans["stage.translate"]
        (lookup,) = spans["cache_lookup"]
        record = inst.records[0]
        # span wall = work + probes; child carves out the probe share, so
        # span − child == record.seconds == the bench --json stage number.
        assert stage.duration == pytest.approx(
            record.seconds + record.cache_lookup_seconds
        )
        assert lookup.duration == pytest.approx(record.cache_lookup_seconds)
        assert stage.duration - lookup.duration == pytest.approx(record.seconds)
        assert stage.attributes["work_seconds"] == pytest.approx(record.seconds)
        assert stage.attributes["cache_lookup_seconds"] == pytest.approx(0.25)
        assert lookup.parent_id == stage.span_id

    def test_lookup_outside_stage_synthesises_record(self, parent):
        inst = PipelineInstrumentation()
        with inst.cache_lookup():
            pass
        spans = _by_name(spans_from_instrumentation(inst, parent))
        (stage,) = spans["stage.cache_lookup"]
        (lookup,) = spans["cache_lookup"]
        assert lookup.parent_id == stage.span_id
        assert inst.counters["cache_lookup.probes"] == 1

    def test_bench_number_excludes_lookup_time(self):
        inst = PipelineInstrumentation()
        with inst.stage("translate"):
            inst.record_cache_lookup(10.0)
        # The regression this split fixed: lookup wall must not inflate
        # the stage's reported work.
        assert inst.stage_seconds("translate") < 1.0
        assert inst.cache_lookup_seconds("translate") == pytest.approx(10.0)
        assert inst.total_seconds() >= 10.0


class TestUnitSpans:
    def test_units_parent_under_their_stage(self, parent):
        inst = PipelineInstrumentation()
        with inst.stage("translate"):
            inst.record_unit("m1", "translate", seconds=0.001)
            inst.record_unit("m2", "translate", reused=True, tier="disk")
        spans = _by_name(spans_from_instrumentation(inst, parent))
        (stage,) = spans["stage.translate"]
        units = spans["unit.translate"]
        assert len(units) == 2
        assert all(u.parent_id == stage.span_id for u in units)
        fresh = next(u for u in units if u.attributes["method"] == "m1")
        reused = next(u for u in units if u.attributes["method"] == "m2")
        assert fresh.duration == pytest.approx(0.001)
        assert fresh.attributes["tier"] == "fresh"
        assert reused.duration == _SKIP_WIDTH
        assert reused.attributes["reused"] is True
        assert reused.attributes["tier"] == "disk"

    def test_unit_without_stage_record_parents_to_root(self, parent):
        inst = PipelineInstrumentation()
        inst.record_unit("m1", "generate", seconds=0.001)
        spans = _by_name(spans_from_instrumentation(inst, parent))
        (unit,) = spans["unit.generate"]
        assert unit.parent_id == parent.span_id

    def test_rerun_stage_wins_unit_parenting(self, parent):
        inst = PipelineInstrumentation()
        with inst.stage("translate"):
            pass
        with inst.stage("translate"):
            inst.record_unit("m1", "translate", seconds=0.0)
        spans = spans_from_instrumentation(inst, parent)
        stages = [s for s in spans if s.name == "stage.translate"]
        (unit,) = [s for s in spans if s.name == "unit.translate"]
        assert unit.parent_id == stages[-1].span_id
