"""Trace-context propagation across the real process-pool boundary.

The ambient context is a contextvar — it does not survive pickling on
its own.  :func:`repro.pipeline.executor.parallel_map` ships a
traceparent header into each worker via a picklable wrapper; these tests
run genuine ``ProcessPoolExecutor`` children (no mocks) and assert the
trace id observed inside them.
"""

from __future__ import annotations

from repro.pipeline.executor import _TracedWorker, parallel_map
from repro.trace.spans import (
    SpanContext,
    current_trace_id,
    format_traceparent,
    new_span_id,
    new_trace_id,
    use_context,
)


def _observed_trace(_item):
    """Module-level (picklable) worker reporting the ambient trace id."""
    return current_trace_id()


def _context():
    return SpanContext(trace_id=new_trace_id(), span_id=new_span_id())


class TestProcessPoolPropagation:
    def test_trace_id_reaches_pool_workers(self):
        ctx = _context()
        with use_context(ctx):
            observed = parallel_map(_observed_trace, [1, 2, 3, 4], jobs=2)
        assert observed == [ctx.trace_id] * 4

    def test_fresh_pool_gets_fresh_context(self):
        # Each parallel_map spawns fresh worker processes; a second run
        # under a different context must not see the first one's id.
        first, second = _context(), _context()
        with use_context(first):
            a = parallel_map(_observed_trace, [1, 2], jobs=2)
        with use_context(second):
            b = parallel_map(_observed_trace, [1, 2], jobs=2)
        assert a == [first.trace_id] * 2
        assert b == [second.trace_id] * 2

    def test_no_context_means_no_propagation(self):
        assert current_trace_id() is None
        observed = parallel_map(_observed_trace, [1, 2], jobs=2)
        assert observed == [None, None]

    def test_serial_path_inherits_natively(self):
        ctx = _context()
        with use_context(ctx):
            observed = parallel_map(_observed_trace, [1, 2], jobs=1)
        assert observed == [ctx.trace_id] * 2


class TestTracedWorker:
    def test_wrapper_survives_pickle_round_trip(self):
        import pickle

        ctx = _context()
        wrapper = _TracedWorker(_observed_trace, format_traceparent(ctx))
        restored = pickle.loads(pickle.dumps(wrapper))
        assert restored(0) == ctx.trace_id

    def test_wrapper_restores_context_only_for_the_call(self):
        ctx = _context()
        wrapper = _TracedWorker(_observed_trace, format_traceparent(ctx))
        assert wrapper(0) == ctx.trace_id
        assert current_trace_id() is None

    def test_malformed_header_degrades_to_untraced(self):
        wrapper = _TracedWorker(_observed_trace, "not-a-traceparent")
        assert wrapper(0) is None
