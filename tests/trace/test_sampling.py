"""Deterministic trace sampling and the slowest-N/error persistence store."""

from __future__ import annotations

import json
import os

from repro.trace.sampling import RequestTraceStore, hash_sample
from repro.trace.spans import Span, new_trace_id


def _request(duration: float, error: bool = False) -> Span:
    root = Span.start("request")
    root.end()
    root.duration = duration
    if error:
        root.set_error("boom")
    return root


class TestHashSample:
    def test_rate_edges(self):
        trace_id = new_trace_id()
        assert hash_sample(trace_id, 0.0) is False
        assert hash_sample(trace_id, -1.0) is False
        assert hash_sample(trace_id, 1.0) is True
        assert hash_sample(trace_id, 2.0) is True

    def test_deterministic_under_fixed_seed(self):
        ids = [new_trace_id() for _ in range(200)]
        first = [hash_sample(i, 0.3, seed=7) for i in ids]
        second = [hash_sample(i, 0.3, seed=7) for i in ids]
        assert first == second

    def test_seed_changes_the_subset(self):
        ids = [f"{i:032x}" for i in range(1, 401)]
        a = {i for i in ids if hash_sample(i, 0.5, seed=0)}
        b = {i for i in ids if hash_sample(i, 0.5, seed=1)}
        assert a != b

    def test_rate_approximates_fraction(self):
        ids = [f"{i:032x}" for i in range(1, 2001)]
        kept = sum(hash_sample(i, 0.25) for i in ids)
        assert 0.15 < kept / len(ids) < 0.35

    def test_monotone_in_rate(self):
        # Anything kept at a low rate stays kept at any higher rate.
        ids = [f"{i:032x}" for i in range(1, 501)]
        low = {i for i in ids if hash_sample(i, 0.1)}
        high = {i for i in ids if hash_sample(i, 0.6)}
        assert low <= high


class TestRequestTraceStore:
    def test_keeps_slowest_n_and_evicts_faster(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=2)
        slow, mid, fast = _request(3.0), _request(2.0), _request(1.0)
        assert store.offer(fast, [fast]) == ["slowest"]
        assert store.offer(slow, [slow]) == ["slowest"]
        # Capacity reached; a slower request evicts the fastest file.
        assert store.offer(mid, [mid]) == ["slowest"]
        assert set(store.persisted_trace_ids()) == {slow.trace_id, mid.trace_id}

    def test_faster_than_floor_is_dropped(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=1)
        slow, fast = _request(2.0), _request(0.5)
        store.offer(slow, [slow])
        assert store.offer(fast, [fast]) == []
        assert store.persisted_trace_ids() == [slow.trace_id]

    def test_errors_always_kept_and_never_evicted(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=1)
        failed = _request(0.001, error=True)
        assert store.offer(failed, [failed]) == ["error"]
        for _ in range(3):
            ok = _request(5.0)
            store.offer(ok, [ok])
        assert failed.trace_id in store.persisted_trace_ids()
        error_files = [
            n for n in os.listdir(tmp_path) if n.endswith(".error.trace.json")
        ]
        assert error_files == [f"{failed.trace_id}.error.trace.json"]

    def test_sampled_reason_is_deterministic(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=0, rate=1.0, seed=3)
        root = _request(0.01)
        assert store.offer(root, [root]) == ["sampled"]
        # Same decision function, fresh store, same id: identical keep.
        again = RequestTraceStore(str(tmp_path / "b"), capacity=0, rate=1.0, seed=3)
        assert again.offer(root, [root]) == ["sampled"]

    def test_zero_capacity_zero_rate_persists_nothing_ok(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=0, rate=0.0)
        ok = _request(9.0)
        assert store.offer(ok, [ok]) == []
        assert store.persisted_trace_ids() == []

    def test_index_records_every_persist(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=2)
        first, second = _request(1.0), _request(2.0, error=True)
        store.offer(first, [first])
        store.offer(second, [second])
        entries = store.index_entries()
        assert [e["trace_id"] for e in entries] == [
            first.trace_id, second.trace_id
        ]
        assert entries[0]["reasons"] == ["slowest"]
        assert entries[1]["reasons"] == ["error"]
        assert entries[1]["status"] == "error"

    def test_persisted_files_are_chrome_loadable(self, tmp_path):
        store = RequestTraceStore(str(tmp_path), capacity=1)
        root = _request(1.0)
        child = Span.start("stage.check", parent=root.context()).end()
        store.offer(root, [root, child])
        (name,) = [n for n in os.listdir(tmp_path) if n.endswith(".trace.json")]
        document = json.load(open(tmp_path / name))
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert names == {"request", "stage.check"}
