"""Tests for interpretations and bounded axiom checking."""

from fractions import Fraction

import pytest

from repro.boogie import (
    AxiomDecl,
    beq,
    BIntLit,
    BOOL,
    BoogieProgram,
    BVar,
    check_axioms_bounded,
    ConstDecl,
    fixed_carrier,
    Forall,
    FuncApp,
    FuncDecl,
    INT,
    Interpretation,
    InterpretationError,
    TCon,
    TypeConDecl,
)
from repro.boogie.values import BVBool, BVInt, UValue


class TestCarriers:
    def test_builtin_samples(self):
        interp = Interpretation()
        assert BVInt(0) in interp.carrier_of(INT)
        assert len(interp.carrier_of(BOOL)) == 2

    def test_fixed_carrier_ignores_type_args(self):
        carrier = fixed_carrier((UValue("T0", 1),))
        assert carrier(()) == carrier((INT,))

    def test_missing_carrier_raises(self):
        with pytest.raises(InterpretationError, match="no carrier"):
            Interpretation().carrier_of(TCon("Mystery"))

    def test_missing_function_raises(self):
        with pytest.raises(InterpretationError, match="no interpretation"):
            Interpretation().apply("ghost", (), ())

    def test_with_function_is_functional_update(self):
        base = Interpretation()
        extended = base.with_function("one", lambda targs, args: BVInt(1))
        assert extended.apply("one", (), ()) == BVInt(1)
        with pytest.raises(InterpretationError):
            base.apply("one", (), ())


class TestAxiomChecking:
    def _program(self, axiom_expr):
        return BoogieProgram(
            type_decls=(TypeConDecl("T0", 0),),
            consts=(ConstDecl("c", INT),),
            functions=(FuncDecl("f", (), (INT,), INT),),
            axioms=(AxiomDecl(axiom_expr, comment="under test"),),
        )

    def test_satisfied_axiom(self):
        program = self._program(
            Forall((), (("i", INT),), beq(FuncApp("f", (), (BVar("i"),)), BVar("i")))
        )
        interp = Interpretation(functions={"f": lambda targs, args: args[0]})
        result = check_axioms_bounded(program, interp, {"c": BVInt(0)})
        assert result.ok

    def test_violated_axiom_reports_which(self):
        program = self._program(
            Forall((), (("i", INT),), beq(FuncApp("f", (), (BVar("i"),)), BIntLit(0)))
        )
        interp = Interpretation(functions={"f": lambda targs, args: args[0]})
        result = check_axioms_bounded(program, interp, {"c": BVInt(0)})
        assert not result.ok
        assert result.failed_axiom is not None
        assert "under test" in result.detail

    def test_constant_axiom_uses_valuation(self):
        program = self._program(beq(BVar("c"), BIntLit(5)))
        interp = Interpretation(functions={"f": lambda targs, args: args[0]})
        assert check_axioms_bounded(program, interp, {"c": BVInt(5)}).ok
        assert not check_axioms_bounded(program, interp, {"c": BVInt(4)}).ok
