"""Tests for the Boogie small-step semantics."""

from fractions import Fraction

import pytest

from repro.boogie import (
    Assign,
    Assume,
    BAssert,
    band,
    BBinOp,
    BBinOpKind,
    beq,
    BFailure,
    BIf,
    BIntLit,
    BMagic,
    BNormal,
    BOOL,
    BoogieContext,
    BoogieProgram,
    BoogieState,
    BRealLit,
    BVar,
    Cursor,
    eval_bexpr,
    Exists,
    Forall,
    FuncApp,
    FuncDecl,
    GlobalVarDecl,
    Havoc,
    INT,
    Interpretation,
    Procedure,
    REAL,
    run_from,
    run_procedure,
    single_block,
    StmtBlock,
    TRUE,
    TVar,
    TCon,
    TypeConDecl,
    fixed_carrier,
)
from repro.boogie.values import BVBool, BVInt, BVReal, UValue
from repro.choice import all_executions


def empty_ctx(var_types=None, interp=None):
    return BoogieContext(
        BoogieProgram(), interp or Interpretation(), dict(var_types or {})
    )


class TestExpressionEvaluation:
    def test_arithmetic(self):
        ctx = empty_ctx()
        expr = BBinOp(BBinOpKind.ADD, BIntLit(2), BIntLit(3))
        assert eval_bexpr(expr, BoogieState(), ctx) == BVInt(5)

    def test_div_and_mod_are_total(self):
        ctx = empty_ctx()
        div = BBinOp(BBinOpKind.DIV, BIntLit(1), BIntLit(0))
        mod = BBinOp(BBinOpKind.MOD, BIntLit(1), BIntLit(0))
        # Total (SMT-style) semantics: fixed, not crashing.
        assert isinstance(eval_bexpr(div, BoogieState(), ctx), BVInt)
        assert isinstance(eval_bexpr(mod, BoogieState(), ctx), BVInt)

    def test_real_arithmetic_is_exact(self):
        ctx = empty_ctx()
        expr = BBinOp(
            BBinOpKind.ADD, BRealLit(Fraction(1, 3)), BRealLit(Fraction(1, 6))
        )
        assert eval_bexpr(expr, BoogieState(), ctx) == BVReal(Fraction(1, 2))

    def test_int_real_comparison_coerces(self):
        ctx = empty_ctx()
        expr = beq(BIntLit(1), BRealLit(Fraction(1)))
        assert eval_bexpr(expr, BoogieState(), ctx) == BVBool(True)

    def test_uninterpreted_function_application(self):
        interp = Interpretation(functions={"inc": lambda t, a: BVInt(a[0].value + 1)})
        ctx = empty_ctx(interp=interp)
        expr = FuncApp("inc", (), (BIntLit(41),))
        assert eval_bexpr(expr, BoogieState(), ctx) == BVInt(42)

    def test_forall_over_carrier(self):
        interp = Interpretation(int_sample=(BVInt(0), BVInt(1), BVInt(2)))
        ctx = empty_ctx(interp=interp)
        expr = Forall((), (("i", INT),), BBinOp(BBinOpKind.GE, BVar("i"), BIntLit(0)))
        assert eval_bexpr(expr, BoogieState(), ctx) == BVBool(True)
        expr_neg = Forall((), (("i", INT),), BBinOp(BBinOpKind.GT, BVar("i"), BIntLit(0)))
        assert eval_bexpr(expr_neg, BoogieState(), ctx) == BVBool(False)

    def test_exists_over_carrier(self):
        ctx = empty_ctx()
        expr = Exists((), (("i", INT),), beq(BVar("i"), BIntLit(7)))
        assert eval_bexpr(expr, BoogieState(), ctx) == BVBool(True)

    def test_type_quantifier_ranges_over_universe(self):
        interp = Interpretation(
            functions={"isZero": lambda targs, args: BVBool(args[0] in (BVInt(0), BVBool(False)))}
        )
        ctx = empty_ctx(interp=interp)
        # forall<T> v: T :: isZero(v) — false because carriers contain 1.
        expr = Forall(("T",), (("v", TVar("T")),), FuncApp("isZero", (TVar("T"),), (BVar("v"),)))
        assert eval_bexpr(expr, BoogieState(), ctx) == BVBool(False)

    def test_short_circuit_logic(self):
        ctx = empty_ctx()
        expr = BBinOp(BBinOpKind.IMPLIES, BVar("a"), BVar("b"))
        state = BoogieState({"a": BVBool(False), "b": BVBool(False)})
        assert eval_bexpr(expr, state, ctx) == BVBool(True)


class TestExecution:
    def test_assert_failure(self):
        ctx = empty_ctx({"x": INT})
        body = single_block(
            Assign("x", BIntLit(1)), BAssert(beq(BVar("x"), BIntLit(2)))
        )
        outcome = run_from(Cursor.from_stmt(body), BoogieState({"x": BVInt(0)}), ctx)
        assert outcome == BFailure()

    def test_assume_magic(self):
        ctx = empty_ctx({"x": INT})
        body = single_block(Assume(beq(BVar("x"), BIntLit(9))))
        outcome = run_from(Cursor.from_stmt(body), BoogieState({"x": BVInt(0)}), ctx)
        assert isinstance(outcome, BMagic)

    def test_normal_completion(self):
        ctx = empty_ctx({"x": INT})
        body = single_block(Assign("x", BIntLit(3)))
        outcome = run_from(Cursor.from_stmt(body), BoogieState({"x": BVInt(0)}), ctx)
        assert isinstance(outcome, BNormal)
        assert outcome.state.lookup("x") == BVInt(3)

    def test_havoc_enumerates_carrier(self):
        ctx = empty_ctx({"x": INT})
        body = single_block(Havoc("x"))
        values = set()
        for outcome in all_executions(
            lambda o: run_from(Cursor.from_stmt(body), BoogieState({"x": BVInt(0)}), ctx, o)
        ):
            values.add(outcome.state.lookup("x"))
        assert len(values) == len(Interpretation().int_sample)

    def test_conditional_branching(self):
        ctx = empty_ctx({"x": INT, "b": BOOL})
        stmt = (
            StmtBlock(
                (),
                BIf(
                    BVar("b"),
                    single_block(Assign("x", BIntLit(1))),
                    single_block(Assign("x", BIntLit(2))),
                ),
            ),
        )
        for flag, expected in ((True, 1), (False, 2)):
            outcome = run_from(
                Cursor.from_stmt(stmt),
                BoogieState({"x": BVInt(0), "b": BVBool(flag)}),
                ctx,
            )
            assert outcome.state.lookup("x") == BVInt(expected)

    def test_nondeterministic_branching_explores_both(self):
        ctx = empty_ctx({"x": INT})
        stmt = (
            StmtBlock(
                (),
                BIf(
                    None,
                    single_block(Assign("x", BIntLit(1))),
                    single_block(Assign("x", BIntLit(2))),
                ),
            ),
        )
        results = {
            outcome.state.lookup("x")
            for outcome in all_executions(
                lambda o: run_from(
                    Cursor.from_stmt(stmt), BoogieState({"x": BVInt(0)}), ctx, o
                )
            )
        }
        assert results == {BVInt(1), BVInt(2)}

    def test_havoc_hook_overrides_candidates(self):
        ctx = empty_ctx({"x": INT})
        ctx.havoc_hook = lambda name, typ, state, c: (BVInt(99),)
        body = single_block(Havoc("x"))
        outcome = run_from(Cursor.from_stmt(body), BoogieState({"x": BVInt(0)}), ctx)
        assert outcome.state.lookup("x") == BVInt(99)

    def test_run_procedure_with_uninterpreted_types(self):
        program = BoogieProgram(
            type_decls=(TypeConDecl("T0", 0),),
            globals=(GlobalVarDecl("g", TCon("T0")),),
            procedures=(
                Procedure("p", (), single_block(Havoc("g"))),
            ),
        )
        interp = Interpretation(carriers={"T0": fixed_carrier((UValue("T0", 0),))})
        outcome = run_procedure(
            program, program.procedure("p"), interp, BoogieState({"g": UValue("T0", 5)})
        )
        assert outcome.state.lookup("g") == UValue("T0", 0)
