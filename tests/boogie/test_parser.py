"""Tests for the Boogie parser (round-trips with the pretty-printer)."""

from dataclasses import replace
from fractions import Fraction

import pytest

import repro
from repro.boogie import (
    AxiomDecl,
    BBinOp,
    BBinOpKind,
    BIntLit,
    BoogieProgram,
    BRealLit,
    BVar,
    check_boogie_program,
    CondB,
    Exists,
    Forall,
    FuncApp,
    INT,
    MapSelect,
    MapStore,
    MapType,
    pretty_boogie_program,
    TCon,
    TVar,
)
from repro.boogie.lexer import BoogieSyntaxError
from repro.boogie.parser import parse_boogie_expr, parse_boogie_program


def strip_comments(program: BoogieProgram) -> BoogieProgram:
    """Axiom comments are printed but not parsed; normalise them away."""
    return replace(
        program,
        axioms=tuple(AxiomDecl(a.expr, "") for a in program.axioms),
    )


class TestExpressions:
    def test_literals(self):
        assert parse_boogie_expr("42") == BIntLit(42)
        assert parse_boogie_expr("3.5") == BRealLit(Fraction(7, 2))
        assert parse_boogie_expr("-7") == BIntLit(-7)

    def test_real_fraction_folds(self):
        assert parse_boogie_expr("(1.0 / 2.0)") == BRealLit(Fraction(1, 2))

    def test_precedence(self):
        expr = parse_boogie_expr("a + b * c == d")
        assert expr.op is BBinOpKind.EQ
        assert expr.left.op is BBinOpKind.ADD

    def test_implies_right_associative(self):
        expr = parse_boogie_expr("a ==> b ==> c")
        assert expr.op is BBinOpKind.IMPLIES
        assert expr.right.op is BBinOpKind.IMPLIES

    def test_iff(self):
        assert parse_boogie_expr("a <==> b").op is BBinOpKind.IFF

    def test_function_application_with_type_args(self):
        expr = parse_boogie_expr("readHeap<int>(H, r, f)")
        assert expr == FuncApp(
            "readHeap", (INT,), (BVar("H"), BVar("r"), BVar("f"))
        )

    def test_type_args_do_not_shadow_comparison(self):
        expr = parse_boogie_expr("a < b")
        assert isinstance(expr, BBinOp) and expr.op is BBinOpKind.LT

    def test_nested_type_constructor_argument(self):
        expr = parse_boogie_expr("g<(Field int)>(x)")
        assert expr.type_args == (TCon("Field", (INT,)),)

    def test_quantifiers(self):
        expr = parse_boogie_expr("(forall i: int :: i >= 0)")
        assert isinstance(expr, Forall)
        assert expr.bound == (("i", INT),)
        expr = parse_boogie_expr("(exists i: int :: i == 0)")
        assert isinstance(expr, Exists)

    def test_type_quantifier(self):
        expr = parse_boogie_expr("(forall <T> v: T :: v == v)")
        assert expr.type_vars == ("T",)
        assert expr.bound == (("v", TVar("T")),)

    def test_if_then_else(self):
        expr = parse_boogie_expr("(if b then 1 else 2)")
        assert expr == CondB(BVar("b"), BIntLit(1), BIntLit(2))

    def test_map_select_and_store(self):
        assert parse_boogie_expr("m[1]") == MapSelect(BVar("m"), (), (BIntLit(1),))
        assert parse_boogie_expr("m[1 := 2]") == MapStore(
            BVar("m"), (), (BIntLit(1),), BIntLit(2)
        )

    def test_div_mod_keywords(self):
        assert parse_boogie_expr("a div b").op is BBinOpKind.DIV
        assert parse_boogie_expr("a mod b").op is BBinOpKind.MOD

    def test_error_position(self):
        with pytest.raises(BoogieSyntaxError):
            parse_boogie_expr("1 +")


class TestPrograms:
    def test_declarations(self):
        program = parse_boogie_program(
            """
            type Ref;
            type Field _;
            const unique f1: (Field int);
            var g: int;
            function read<T>((Field T)): T;
            axiom (forall i: int :: i == i);

            procedure p()
            {
              var x: int;
              x := 1;
              assert x == 1;
            }
            """
        )
        assert program.type_decls[1].arity == 1
        assert program.consts[0].unique
        assert program.functions[0].type_params == ("T",)
        check_boogie_program(program)

    def test_if_statements(self):
        program = parse_boogie_program(
            """
            procedure p()
            {
              var x: int;
              if (x > 0) {
                x := 1;
              } else {
                x := 2;
              }
              if (*) {
                havoc x;
              }
              assume x >= 0;
            }
            """
        )
        body = program.procedure("p").body
        assert body[0].ifopt is not None
        assert body[0].ifopt.cond is not None
        assert body[1].ifopt.cond is None
        assert len(body[2].cmds) == 1

    def test_map_typed_global(self):
        program = parse_boogie_program(
            """
            type Ref;
            type Field _;
            var H: <T>[Ref,(Field T)]T;
            """
        )
        heap_type = program.globals[0].typ
        assert isinstance(heap_type, MapType)
        assert heap_type.type_params == ("T",)


class TestRoundTrip:
    def test_translator_output_roundtrips(self):
        result = repro.translate_source(
            """
            field f: Int
            field g: Bool

            method callee(x: Ref) requires acc(x.f, 1/2) ensures acc(x.f, 1/2)
            { assert true }

            method m(x: Ref, p: Perm, b: Bool) returns (r: Int)
              requires acc(x.f, p) && p > none
              ensures acc(x.f, p)
            {
              if (b) { x.f := 0 - x.f } else { r := x.f }
              callee(x)
              exhale b ==> acc(x.f, p/2)
              inhale b ==> acc(x.f, p/2)
            }
            """
        )
        text = pretty_boogie_program(result.boogie_program)
        reparsed = parse_boogie_program(text)
        assert strip_comments(reparsed) == strip_comments(result.boogie_program)

    def test_reparsed_program_typechecks(self):
        result = repro.translate_source(
            "field f: Int\nmethod m(x: Ref) requires acc(x.f, write) "
            "ensures acc(x.f, write) { x.f := 1 }"
        )
        reparsed = parse_boogie_program(pretty_boogie_program(result.boogie_program))
        check_boogie_program(reparsed)
