"""Tests for the Boogie type checker."""

import pytest

from repro.boogie import (
    Assign,
    Assume,
    AxiomDecl,
    BAssert,
    BBinOp,
    BBinOpKind,
    beq,
    BIntLit,
    BOOL,
    BoogieProgram,
    BoogieTypeError,
    BRealLit,
    BVar,
    check_boogie_program,
    ConstDecl,
    Forall,
    FuncApp,
    FuncDecl,
    GlobalVarDecl,
    Havoc,
    INT,
    MapType,
    Procedure,
    REAL,
    single_block,
    TCon,
    TRUE,
    TVar,
    TypeConDecl,
)
from fractions import Fraction


def check(program: BoogieProgram):
    return check_boogie_program(program)


def rejects(program: BoogieProgram, fragment: str = ""):
    with pytest.raises(BoogieTypeError) as excinfo:
        check(program)
    if fragment:
        assert fragment in str(excinfo.value)


class TestDeclarations:
    def test_minimal_program(self):
        info = check(BoogieProgram())
        assert info.global_types == {}

    def test_undeclared_type_constructor(self):
        rejects(
            BoogieProgram(globals=(GlobalVarDecl("g", TCon("Mystery")),)),
            "undeclared type constructor",
        )

    def test_type_constructor_arity(self):
        rejects(
            BoogieProgram(
                type_decls=(TypeConDecl("Pair", 2),),
                globals=(GlobalVarDecl("g", TCon("Pair", (INT,))),),
            ),
            "expects 2 arguments",
        )

    def test_duplicate_global(self):
        rejects(
            BoogieProgram(
                globals=(GlobalVarDecl("g", INT), GlobalVarDecl("g", BOOL))
            ),
            "duplicate",
        )

    def test_unbound_type_variable_in_global(self):
        rejects(
            BoogieProgram(globals=(GlobalVarDecl("g", TVar("T")),)),
            "unbound type variable",
        )

    def test_function_signature_may_use_its_type_params(self):
        check(
            BoogieProgram(
                functions=(FuncDecl("id", ("T",), (TVar("T"),), TVar("T")),)
            )
        )


class TestAxioms:
    def test_axiom_must_be_boolean(self):
        rejects(BoogieProgram(axioms=(AxiomDecl(BIntLit(1)),)), "boolean")

    def test_axiom_may_use_constants(self):
        check(
            BoogieProgram(
                consts=(ConstDecl("c", INT),),
                axioms=(AxiomDecl(beq(BVar("c"), BIntLit(0))),),
            )
        )

    def test_axiom_must_not_read_global_variables(self):
        # The syntactic guard Boogie enforces where Viper uses semantics.
        rejects(
            BoogieProgram(
                globals=(GlobalVarDecl("g", INT),),
                axioms=(AxiomDecl(beq(BVar("g"), BIntLit(0))),),
            ),
            "global",
        )


class TestPolymorphicApplications:
    PROGRAM = BoogieProgram(
        type_decls=(TypeConDecl("Box", 1),),
        functions=(
            FuncDecl("wrap", ("T",), (TVar("T"),), TCon("Box", (TVar("T"),))),
        ),
        globals=(GlobalVarDecl("b", TCon("Box", (INT,))),),
    )

    def test_correct_instantiation(self):
        program = BoogieProgram(
            type_decls=self.PROGRAM.type_decls,
            functions=self.PROGRAM.functions,
            globals=self.PROGRAM.globals,
            procedures=(
                Procedure(
                    "p", (), single_block(Assign("b", FuncApp("wrap", (INT,), (BIntLit(1),))))
                ),
            ),
        )
        check(program)

    def test_wrong_type_argument_count(self):
        program = BoogieProgram(
            type_decls=self.PROGRAM.type_decls,
            functions=self.PROGRAM.functions,
            globals=self.PROGRAM.globals,
            procedures=(
                Procedure(
                    "p", (), single_block(Assign("b", FuncApp("wrap", (), (BIntLit(1),))))
                ),
            ),
        )
        rejects(program, "type")

    def test_argument_type_checked_after_substitution(self):
        program = BoogieProgram(
            type_decls=self.PROGRAM.type_decls,
            functions=self.PROGRAM.functions,
            globals=self.PROGRAM.globals,
            procedures=(
                Procedure(
                    "p",
                    (),
                    single_block(Assign("b", FuncApp("wrap", (INT,), (TRUE,)))),
                ),
            ),
        )
        rejects(program)

    def test_result_type_substituted(self):
        # wrap<bool>(true) : Box bool is not assignable to Box int.
        program = BoogieProgram(
            type_decls=self.PROGRAM.type_decls,
            functions=self.PROGRAM.functions,
            globals=self.PROGRAM.globals,
            procedures=(
                Procedure(
                    "p",
                    (),
                    single_block(Assign("b", FuncApp("wrap", (BOOL,), (TRUE,)))),
                ),
            ),
        )
        rejects(program)


class TestCommandsAndNumericRelaxation:
    def test_int_accepted_where_real_expected(self):
        program = BoogieProgram(
            globals=(GlobalVarDecl("r", REAL),),
            procedures=(
                Procedure("p", (), single_block(Assign("r", BIntLit(1)))),
            ),
        )
        check(program)

    def test_bool_rejected_where_real_expected(self):
        program = BoogieProgram(
            globals=(GlobalVarDecl("r", REAL),),
            procedures=(Procedure("p", (), single_block(Assign("r", TRUE))),),
        )
        rejects(program)

    def test_assume_requires_bool(self):
        program = BoogieProgram(
            procedures=(Procedure("p", (), single_block(Assume(BIntLit(1)))),)
        )
        rejects(program, "bool")

    def test_havoc_requires_declared_variable(self):
        program = BoogieProgram(
            procedures=(Procedure("p", (), single_block(Havoc("ghost"))),)
        )
        rejects(program, "undeclared")

    def test_local_shadowing_global_rejected(self):
        program = BoogieProgram(
            globals=(GlobalVarDecl("g", INT),),
            procedures=(Procedure("p", (("g", INT),), single_block()),),
        )
        rejects(program, "shadows")

    def test_quantifier_body_must_be_bool(self):
        program = BoogieProgram(
            procedures=(
                Procedure(
                    "p",
                    (),
                    single_block(Assume(Forall((), (("i", INT),), BVar("i")))),
                ),
            )
        )
        rejects(program)

    def test_map_select_typing(self):
        map_type = MapType((), (INT,), BOOL)
        from repro.boogie import MapSelect

        program = BoogieProgram(
            globals=(GlobalVarDecl("m", map_type),),
            procedures=(
                Procedure(
                    "p",
                    (),
                    single_block(Assume(MapSelect(BVar("m"), (), (BIntLit(0),)))),
                ),
            ),
        )
        check(program)
