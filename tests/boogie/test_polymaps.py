"""Tests for the polymorphic-map desugaring pass (Sec. 4.4)."""

import pytest

from repro.boogie import (
    Assign,
    Assume,
    beq,
    BIntLit,
    BoogieProgram,
    BVar,
    check_boogie_program,
    desugar_program,
    FuncApp,
    GlobalVarDecl,
    INT,
    MapSelect,
    MapStore,
    MapType,
    PolymapEnv,
    Procedure,
    single_block,
    TCon,
    TVar,
)

#: The heap map type of the Viper encoding: <T>[Ref, Field T]T.
HEAP_MAP = MapType(
    ("T",), (TCon("Ref"), TCon("Field", (TVar("T"),))), TVar("T")
)


def heap_program() -> BoogieProgram:
    from repro.boogie import TypeConDecl, ConstDecl

    read = MapSelect(BVar("H"), (INT,), (BVar("r"), BVar("f")))
    write = MapStore(BVar("H"), (INT,), (BVar("r"), BVar("f")), BIntLit(1))
    return BoogieProgram(
        type_decls=(TypeConDecl("Ref", 0), TypeConDecl("Field", 1)),
        consts=(
            ConstDecl("r", TCon("Ref")),
            ConstDecl("f", TCon("Field", (INT,))),
        ),
        globals=(GlobalVarDecl("H", HEAP_MAP),),
        procedures=(
            Procedure(
                "p",
                (("v", INT),),
                single_block(Assign("H", write), Assign("v", read)),
            ),
        ),
    )


class TestDesugaring:
    def test_map_type_replaced_by_uninterpreted_type(self):
        desugared = desugar_program(heap_program())
        heap_global = [g for g in desugared.globals if g.name == "H"][0]
        assert heap_global.typ == TCon("HeapType")

    def test_select_becomes_read_function(self):
        desugared = desugar_program(heap_program())
        proc = desugared.procedure("p")
        read_assign = proc.body[0].cmds[1]
        assert isinstance(read_assign.rhs, FuncApp)
        assert read_assign.rhs.name == "readHeapType"
        assert read_assign.rhs.type_args == (INT,)

    def test_store_becomes_upd_function(self):
        desugared = desugar_program(heap_program())
        proc = desugared.procedure("p")
        write_assign = proc.body[0].cmds[0]
        assert isinstance(write_assign.rhs, FuncApp)
        assert write_assign.rhs.name == "updHeapType"

    def test_two_axioms_emitted_per_map_type(self):
        desugared = desugar_program(heap_program())
        relevant = [a for a in desugared.axioms if "HeapType" in a.comment]
        assert len(relevant) == 2

    def test_result_typechecks(self):
        check_boogie_program(desugar_program(heap_program()))

    def test_original_with_sugar_also_typechecks(self):
        check_boogie_program(heap_program())

    def test_distinct_map_types_get_distinct_representations(self):
        mask_map = MapType(
            ("T",), (TCon("Ref"), TCon("Field", (TVar("T"),))), INT
        )
        from repro.boogie import TypeConDecl

        program = BoogieProgram(
            type_decls=(TypeConDecl("Ref", 0), TypeConDecl("Field", 1)),
            globals=(
                GlobalVarDecl("H", HEAP_MAP),
                GlobalVarDecl("M", mask_map),
            ),
        )
        env = PolymapEnv()
        desugared = desugar_program(program, env)
        names = {rep.type_name for rep in env.by_type.values()}
        assert len(names) == 2

    def test_nested_store_resolves_map_type(self):
        inner = MapStore(BVar("H"), (INT,), (BVar("r"), BVar("f")), BIntLit(1))
        outer = MapStore(inner, (INT,), (BVar("r"), BVar("f")), BIntLit(2))
        program = heap_program()
        program = BoogieProgram(
            type_decls=program.type_decls,
            consts=program.consts,
            globals=program.globals,
            procedures=(
                Procedure("p", (), single_block(Assign("H", outer))),
            ),
        )
        desugared = desugar_program(program)
        cmd = desugared.procedure("p").body[0].cmds[0]
        assert cmd.rhs.name == "updHeapType"
        assert cmd.rhs.args[0].name == "updHeapType"

    def test_unresolvable_map_expression_rejected(self):
        # A select on a map produced by an unknown function can't be typed.
        program = BoogieProgram(
            globals=(GlobalVarDecl("g", INT),),
            procedures=(
                Procedure(
                    "p",
                    (),
                    single_block(
                        Assign("g", MapSelect(BIntLit(0), (), (BIntLit(0),)))
                    ),
                ),
            ),
        )
        with pytest.raises(TypeError):
            desugar_program(program)


class TestCircularityModel:
    def test_empty_map_is_a_legal_heap_value(self):
        """The partial-map model admits the empty map as a heap — the
        construction that breaks the impredicativity circularity."""
        from repro.boogie.values import FrozenMap, UValue

        empty_heap = UValue("HeapType", FrozenMap())
        assert len(empty_heap.payload) == 0

    def test_read_returns_default_outside_domain(self):
        from repro.frontend.background import standard_interpretation
        from repro.boogie.values import BVInt, FrozenMap, UValue
        from repro.viper.ast import Type

        interp = standard_interpretation({"f": Type.INT})
        result = interp.apply(
            "readHeap",
            (INT,),
            (UValue("HeapType", FrozenMap()), UValue("Ref", 1), UValue("Field", "f")),
        )
        assert result == BVInt(0)
