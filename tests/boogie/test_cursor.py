"""Tests for Boogie program points (cursors)."""

from repro.boogie import (
    Assign,
    Assume,
    BAssert,
    BIf,
    BIntLit,
    BVar,
    Cursor,
    Havoc,
    single_block,
    StmtBlock,
    TRUE,
)


def cmds(*names):
    return tuple(Assign(name, BIntLit(0)) for name in names)


class TestConstruction:
    def test_empty_statement_is_done(self):
        assert Cursor.from_stmt(()).is_done

    def test_empty_blocks_normalise_away(self):
        stmt = (StmtBlock((), None), StmtBlock((), None))
        assert Cursor.from_stmt(stmt).is_done

    def test_initial_cursor_points_at_first_command(self):
        stmt = single_block(Assign("a", BIntLit(1)), Assign("b", BIntLit(2)))
        cursor = Cursor.from_stmt(stmt)
        assert cursor.current_cmd == Assign("a", BIntLit(1))

    def test_normalisation_skips_to_continuation(self):
        join = Cursor.from_stmt(single_block(Havoc("x")))
        cursor = Cursor.from_stmt((), cont=join)
        assert cursor == join


class TestMovement:
    def test_after_cmd_advances(self):
        stmt = single_block(*cmds("a", "b"))
        cursor = Cursor.from_stmt(stmt).after_cmd()
        assert cursor.current_cmd == Assign("b", BIntLit(0))

    def test_cursor_end_of_block_flows_into_next_block(self):
        stmt = (StmtBlock(cmds("a"), None), StmtBlock(cmds("b"), None))
        cursor = Cursor.from_stmt(stmt).after_cmd()
        assert cursor.current_cmd == Assign("b", BIntLit(0))

    def test_skip_cmds(self):
        stmt = single_block(*cmds("a", "b", "c"))
        cursor = Cursor.from_stmt(stmt).skip_cmds(2)
        assert cursor.current_cmd == Assign("c", BIntLit(0))

    def test_branching(self):
        then = single_block(Assign("t", BIntLit(1)))
        other = single_block(Assign("e", BIntLit(2)))
        stmt = (
            StmtBlock(cmds("a"), BIf(TRUE, then, other)),
            StmtBlock(cmds("z"), None),
        )
        cursor = Cursor.from_stmt(stmt).after_cmd()
        assert cursor.at_if
        join = cursor.after_if()
        assert join.current_cmd == Assign("z", BIntLit(0))
        then_cursor = cursor.enter_branch(True)
        assert then_cursor.current_cmd == Assign("t", BIntLit(1))
        # Falling off the branch lands exactly at the join point.
        assert then_cursor.after_cmd() == join

    def test_empty_branch_normalises_to_join(self):
        stmt = (
            StmtBlock((), BIf(TRUE, (), ())),
            StmtBlock(cmds("z"), None),
        )
        cursor = Cursor.from_stmt(stmt)
        assert cursor.enter_branch(True) == cursor.after_if()
        assert cursor.enter_branch(False) == cursor.after_if()

    def test_nested_branches_share_outer_join(self):
        inner = (StmtBlock((), BIf(TRUE, single_block(Havoc("i")), ())),)
        stmt = (
            StmtBlock((), BIf(TRUE, inner, ())),
            StmtBlock(cmds("z"), None),
        )
        outer = Cursor.from_stmt(stmt)
        outer_join = outer.after_if()
        inner_cursor = outer.enter_branch(True)
        assert inner_cursor.at_if
        # Leaving the inner if joins into the outer join.
        assert inner_cursor.after_if() == outer_join


class TestEquality:
    def test_structural_equality_is_program_point_identity(self):
        stmt = single_block(*cmds("a", "b"))
        c1 = Cursor.from_stmt(stmt).after_cmd()
        c2 = Cursor.from_stmt(stmt).skip_cmds(1)
        assert c1 == c2

    def test_different_points_differ(self):
        stmt = single_block(*cmds("a", "b"))
        assert Cursor.from_stmt(stmt) != Cursor.from_stmt(stmt).after_cmd()

    def test_peek_rendering(self):
        stmt = single_block(Assume(TRUE), BAssert(TRUE))
        assert "assume" in Cursor.from_stmt(stmt).peek()
        assert Cursor.from_stmt(()).peek() == "<end>"
