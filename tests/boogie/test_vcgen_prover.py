"""Tests for VC generation (wlp) and the bounded prover."""

import pytest

from repro.boogie import (
    Assign,
    Assume,
    BAssert,
    band,
    BBinOp,
    BBinOpKind,
    beq,
    BIf,
    BIntLit,
    bnot,
    BoogieProgram,
    BoogieState,
    BVar,
    check_vc_bounded,
    Forall,
    GlobalVarDecl,
    Havoc,
    INT,
    Interpretation,
    Procedure,
    procedure_vc,
    single_block,
    StmtBlock,
    TRUE,
    Verdict,
    verify_procedure_bounded,
    verify_procedure_via_vc,
    wlp_stmt,
)
from repro.boogie.values import BVInt
from repro.boogie.semantics import BoogieContext, eval_bexpr


def gt(l, r):
    return BBinOp(BBinOpKind.GT, l, r)


def ge(l, r):
    return BBinOp(BBinOpKind.GE, l, r)


class TestWlp:
    VAR_TYPES = {"x": INT, "y": INT}

    def test_assume_becomes_implication(self):
        stmt = single_block(Assume(gt(BVar("x"), BIntLit(0))))
        wlp = wlp_stmt(stmt, beq(BVar("x"), BIntLit(1)), self.VAR_TYPES)
        assert wlp == BBinOp(
            BBinOpKind.IMPLIES, gt(BVar("x"), BIntLit(0)), beq(BVar("x"), BIntLit(1))
        )

    def test_assert_becomes_conjunction(self):
        stmt = single_block(BAssert(gt(BVar("x"), BIntLit(0))))
        wlp = wlp_stmt(stmt, TRUE, self.VAR_TYPES)
        assert wlp == gt(BVar("x"), BIntLit(0))

    def test_assignment_substitutes(self):
        stmt = single_block(Assign("x", BIntLit(5)))
        wlp = wlp_stmt(stmt, gt(BVar("x"), BIntLit(0)), self.VAR_TYPES)
        assert wlp == gt(BIntLit(5), BIntLit(0))

    def test_havoc_quantifies(self):
        stmt = single_block(Havoc("x"))
        wlp = wlp_stmt(stmt, ge(BVar("x"), BVar("y")), self.VAR_TYPES)
        assert isinstance(wlp, Forall)
        assert wlp.bound == (("x", INT),)

    def test_havoc_of_unused_variable_is_identity(self):
        stmt = single_block(Havoc("x"))
        post = ge(BVar("y"), BIntLit(0))
        assert wlp_stmt(stmt, post, self.VAR_TYPES) == post

    def test_substitution_is_capture_avoiding(self):
        # wlp(y := x, forall x :: x >= y) must not capture the assigned x.
        stmt = single_block(Assign("y", BVar("x")))
        post = Forall((), (("x", INT),), ge(BVar("x"), BVar("y")))
        wlp = wlp_stmt(stmt, post, self.VAR_TYPES)
        assert isinstance(wlp, Forall)
        # The substituted occurrence of y must read the *outer* x.
        inner = wlp.body
        assert BVar("x") == inner.right
        assert wlp.bound[0][0] != "x"

    def test_if_splits_on_condition(self):
        stmt = (
            StmtBlock(
                (),
                BIf(
                    gt(BVar("x"), BIntLit(0)),
                    single_block(BAssert(ge(BVar("x"), BIntLit(1)))),
                    single_block(BAssert(ge(BIntLit(0), BVar("x")))),
                ),
            ),
        )
        wlp = wlp_stmt(stmt, TRUE, self.VAR_TYPES)
        interp = Interpretation()
        ctx = BoogieContext(BoogieProgram(), interp, dict(self.VAR_TYPES))
        for value in interp.int_sample:
            state = BoogieState({"x": value, "y": BVInt(0)})
            assert eval_bexpr(wlp, state, ctx).value


class TestProver:
    def _program(self, *cmds, locals_=()):
        return BoogieProgram(
            procedures=(Procedure("p", tuple(locals_), single_block(*cmds)),)
        )

    def test_valid_procedure(self):
        program = self._program(
            Havoc("x"),
            Assume(gt(BVar("x"), BIntLit(0))),
            BAssert(ge(BVar("x"), BIntLit(1))),
            locals_=(("x", INT),),
        )
        result = verify_procedure_bounded(program, program.procedure("p"), Interpretation())
        assert result.verdict is Verdict.BOUNDED_VALID

    def test_invalid_procedure_refuted_with_counterexample(self):
        program = self._program(
            BAssert(ge(BVar("x"), BIntLit(0))), locals_=(("x", INT),)
        )
        result = verify_procedure_bounded(program, program.procedure("p"), Interpretation())
        assert result.verdict is Verdict.REFUTED
        assert result.counterexample is not None
        assert result.counterexample["x"] == BVInt(-1)

    def test_vc_and_operational_verdicts_agree(self):
        cases = [
            (
                (
                    Havoc("x"),
                    Assume(gt(BVar("x"), BIntLit(2))),
                    BAssert(gt(BVar("x"), BIntLit(1))),
                ),
                Verdict.BOUNDED_VALID,
            ),
            ((BAssert(beq(BVar("x"), BIntLit(0))),), Verdict.REFUTED),
            (
                (Assign("x", BIntLit(3)), BAssert(beq(BVar("x"), BIntLit(3)))),
                Verdict.BOUNDED_VALID,
            ),
        ]
        for cmds, expected in cases:
            program = self._program(*cmds, locals_=(("x", INT),))
            proc = program.procedure("p")
            op = verify_procedure_bounded(program, proc, Interpretation())
            vc = verify_procedure_via_vc(program, proc, Interpretation())
            assert op.verdict is expected
            assert vc.verdict is expected

    def test_fixed_values_restrict_search(self):
        program = self._program(
            BAssert(ge(BVar("x"), BIntLit(0))), locals_=(("x", INT),)
        )
        result = verify_procedure_bounded(
            program, program.procedure("p"), Interpretation(), fixed={"x": BVInt(5)}
        )
        assert result.verdict is Verdict.BOUNDED_VALID

    def test_nondeterministic_branch_explored(self):
        program = BoogieProgram(
            procedures=(
                Procedure(
                    "p",
                    (("x", INT),),
                    (
                        StmtBlock(
                            (Assign("x", BIntLit(0)),),
                            BIf(
                                None,
                                single_block(BAssert(beq(BVar("x"), BIntLit(1)))),
                                (),
                            ),
                        ),
                    ),
                ),
            )
        )
        result = verify_procedure_bounded(program, program.procedure("p"), Interpretation())
        assert result.verdict is Verdict.REFUTED
