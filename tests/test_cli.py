"""Tests for the command-line interface."""

import json
import subprocess
import sys

import pytest

import repro.cli as cli
from repro.cli import main

GOOD = """
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""

BAD = """
field f: Int

method broken(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == 0
{
  x.f := 1
}
"""


@pytest.fixture
def viper_file(tmp_path):
    path = tmp_path / "demo.vpr"
    path.write_text(GOOD)
    return path


class TestTranslate:
    def test_writes_boogie(self, viper_file, tmp_path, capsys):
        out = tmp_path / "demo.bpl"
        assert main(["translate", str(viper_file), "-o", str(out)]) == 0
        assert "procedure m_inc()" in out.read_text()

    def test_prints_without_output(self, viper_file, capsys):
        assert main(["translate", str(viper_file)]) == 0
        assert "readHeap" in capsys.readouterr().out


class TestCertify:
    def test_writes_certificate_and_states_theorem(self, viper_file, tmp_path, capsys):
        cert = tmp_path / "demo.cert"
        assert main(["certify", str(viper_file), "-o", str(cert)]) == 0
        out = capsys.readouterr().out
        assert "THEOREM" in out
        assert cert.read_text().startswith("CERTIFICATE-V1")

    def test_oracle_flag(self, viper_file, capsys):
        assert main(["certify", str(viper_file), "--oracle"]) == 0
        assert "semantic oracle" in capsys.readouterr().out

    def test_option_flags(self, viper_file, capsys):
        assert main(["certify", str(viper_file), "--wd-at-calls", "--no-fastpath"]) == 0


class TestIndependentCheck:
    def test_roundtrip(self, viper_file, tmp_path, capsys):
        bpl = tmp_path / "demo.bpl"
        cert = tmp_path / "demo.cert"
        assert main([
            "certify", str(viper_file), "-o", str(cert), "--boogie-output", str(bpl)
        ]) == 0
        assert main(["check", str(viper_file), str(bpl), str(cert)]) == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_tampered_boogie_rejected(self, viper_file, tmp_path, capsys):
        bpl = tmp_path / "demo.bpl"
        cert = tmp_path / "demo.cert"
        main(["certify", str(viper_file), "-o", str(cert), "--boogie-output", str(bpl)])
        text = bpl.read_text().replace(
            "readHeap<int>(H, v_x, field_f) + 1", "readHeap<int>(H, v_x, field_f) + 2"
        )
        assert text != bpl.read_text(), "tampering must hit a real command"
        bpl.write_text(text)
        assert main(["check", str(viper_file), str(bpl), str(cert)]) == 1
        assert "REJECTED" in capsys.readouterr().err


class TestVerify:
    def test_valid_program(self, viper_file, capsys):
        assert main(["verify", str(viper_file)]) == 0
        assert "bounded-valid" in capsys.readouterr().out

    def test_refuted_program(self, tmp_path, capsys):
        path = tmp_path / "bad.vpr"
        path.write_text(BAD)
        assert main(["verify", str(path)]) == 1
        assert "refuted" in capsys.readouterr().out


class TestBench:
    def test_single_suite(self, capsys):
        assert main(["bench", "MPP"]) == 0
        out = capsys.readouterr().out
        assert "banerjee" in out


class TestBenchJsonAndJobs:
    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "MPP", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {
            "meta", "suites", "overall", "blowup_factor", "analysis_overhead",
            "unit_cache",
        }
        assert payload["unit_cache"]["rebuilt"] == payload["unit_cache"]["units"]
        mpp = payload["suites"]["MPP"]
        assert len(mpp["files"]) == 3
        row = mpp["files"][0]
        assert row["name"] == "banerjee"
        assert row["certified"] is True
        assert row["boogie_loc"] > row["viper_loc"] > 0
        assert mpp["aggregate"]["methods"] == 13
        assert payload["overall"]["all_certified"] is True
        assert payload["blowup_factor"] > 1.0

    def test_jobs_flag_runs_and_matches_serial_structure(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["bench", "MPP", "--json", str(serial_path)]) == 0
        assert main(["bench", "MPP", "--jobs", "2", "--json", str(parallel_path)]) == 0

        def strip_timings(payload):
            for suite in payload["suites"].values():
                for row in suite["files"]:
                    for key in ("translate_seconds", "generate_seconds",
                                "check_seconds", "analyze_seconds",
                                "cache_lookup_seconds", "total_seconds"):
                        row[key] = 0.0
                    # Per-method unit timings are wall-clock too.
                    row["unit_cache"] = {}
                for key in ("mean_check_seconds", "median_check_seconds"):
                    suite["aggregate"][key] = 0.0
            for key in ("mean_check_seconds", "median_check_seconds"):
                payload["overall"][key] = 0.0
            payload["meta"] = {}
            payload["analysis_overhead"] = {}
            return payload

        serial = strip_timings(json.loads(serial_path.read_text()))
        parallel = strip_timings(json.loads(parallel_path.read_text()))
        assert serial == parallel


class TestInterruptAndDiagnostics:
    def test_keyboard_interrupt_returns_130(self, monkeypatch, capsys):
        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_rules", boom)
        assert main(["rules"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_broken_pipe_still_returns_0(self, monkeypatch, capsys):
        def boom(args):
            raise BrokenPipeError

        monkeypatch.setattr(cli, "cmd_rules", boom)
        assert main(["rules"]) == 0

    def test_parse_error_is_a_diagnostic_with_exit_2(self, tmp_path, capsys):
        path = tmp_path / "broken.vpr"
        path.write_text("method m( {")
        assert main(["translate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error[parse]" in err
        assert "hint:" in err

    def test_type_error_is_a_diagnostic_with_exit_2(self, tmp_path, capsys):
        path = tmp_path / "illtyped.vpr"
        path.write_text(
            "field f: Int\n"
            "method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)\n"
            "{ y := 1 }\n"
        )
        assert main(["translate", str(path)]) == 2
        assert "error[typecheck]" in capsys.readouterr().err

    def test_timings_flag_prints_instrumentation(self, viper_file, capsys):
        assert main(["certify", str(viper_file), "--timings"]) == 0
        out = capsys.readouterr().out
        assert "per-stage instrumentation" in out
        assert "translate" in out and "check" in out


class TestFreshProcessRoundTrip:
    """Satellite: certify writes .vpr/.bpl/.cert, then an entirely fresh
    process re-checks them on the independent trusted path."""

    @staticmethod
    def _env():
        import os
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = str(src) + (os.pathsep + existing if existing else "")
        return env

    def test_certify_then_check_in_subprocesses(self, tmp_path):
        source = tmp_path / "demo.vpr"
        source.write_text(GOOD)
        bpl = tmp_path / "demo.bpl"
        cert = tmp_path / "demo.cert"
        certify = subprocess.run(
            [sys.executable, "-m", "repro.cli", "certify", str(source),
             "-o", str(cert), "--boogie-output", str(bpl)],
            capture_output=True, text=True, env=self._env(),
        )
        assert certify.returncode == 0, certify.stderr
        assert cert.read_text().startswith("CERTIFICATE-V1")
        check = subprocess.run(
            [sys.executable, "-m", "repro.cli", "check",
             str(source), str(bpl), str(cert)],
            capture_output=True, text=True, env=self._env(),
        )
        assert check.returncode == 0, check.stderr
        assert "ACCEPTED" in check.stdout
        assert "THEOREM" in check.stdout


class TestLoopsThroughCli:
    def test_loop_source_certifies(self, tmp_path, capsys):
        path = tmp_path / "loop.vpr"
        path.write_text(
            """
            field f: Int
            method m(x: Ref, n: Int)
              requires acc(x.f, write) && n >= 0 ensures acc(x.f, write)
            {
              var i: Int
              i := 0
              while (i < n) invariant acc(x.f, write) && i >= 0 { i := i + 1 }
            }
            """
        )
        assert main(["certify", str(path)]) == 0


class TestVersionFlag:
    def test_version_prints_package_version_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert out.startswith("repro")


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestServeSignals:
    """`repro serve` drains and exits 130 on SIGINT, 143 on SIGTERM."""

    @staticmethod
    def _spawn_server(tmp_path):
        port = _free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(port), "--threads", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache")],
            env=TestFreshProcessRoundTrip._env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        from repro.service.client import ServiceClient

        with ServiceClient(port=port) as client:
            if not client.wait_ready(timeout=30.0):
                proc.kill()
                raise AssertionError(
                    f"server never became ready: {proc.communicate()[1]}"
                )
        return proc, port

    def _signal_and_reap(self, proc, signum) -> int:
        import signal as signal_module

        proc.send_signal(signum)
        try:
            return proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise AssertionError(f"server ignored signal {signum}")

    def test_sigint_exits_130(self, tmp_path):
        import signal as signal_module

        proc, _ = self._spawn_server(tmp_path)
        assert self._signal_and_reap(proc, signal_module.SIGINT) == 130

    def test_sigterm_exits_143_after_serving(self, tmp_path):
        import signal as signal_module

        proc, port = self._spawn_server(tmp_path)
        from repro.service.client import ServiceClient

        with ServiceClient(port=port) as client:
            response = client.certify(GOOD)
            assert response["ok"] is True
        assert self._signal_and_reap(proc, signal_module.SIGTERM) == 143


class TestBenchSignals:
    def test_bench_sigterm_exits_143(self):
        import signal as signal_module
        import time

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "bench"],
            env=TestFreshProcessRoundTrip._env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        time.sleep(1.5)  # let imports finish and the corpus run start
        proc.send_signal(signal_module.SIGTERM)
        try:
            code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise AssertionError("bench ignored SIGTERM")
        _, err = proc.communicate()
        assert code == 143, err
        assert "terminated" in err
