"""Tests for the command-line interface."""

import pytest

from repro.cli import main

GOOD = """
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""

BAD = """
field f: Int

method broken(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == 0
{
  x.f := 1
}
"""


@pytest.fixture
def viper_file(tmp_path):
    path = tmp_path / "demo.vpr"
    path.write_text(GOOD)
    return path


class TestTranslate:
    def test_writes_boogie(self, viper_file, tmp_path, capsys):
        out = tmp_path / "demo.bpl"
        assert main(["translate", str(viper_file), "-o", str(out)]) == 0
        assert "procedure m_inc()" in out.read_text()

    def test_prints_without_output(self, viper_file, capsys):
        assert main(["translate", str(viper_file)]) == 0
        assert "readHeap" in capsys.readouterr().out


class TestCertify:
    def test_writes_certificate_and_states_theorem(self, viper_file, tmp_path, capsys):
        cert = tmp_path / "demo.cert"
        assert main(["certify", str(viper_file), "-o", str(cert)]) == 0
        out = capsys.readouterr().out
        assert "THEOREM" in out
        assert cert.read_text().startswith("CERTIFICATE-V1")

    def test_oracle_flag(self, viper_file, capsys):
        assert main(["certify", str(viper_file), "--oracle"]) == 0
        assert "semantic oracle" in capsys.readouterr().out

    def test_option_flags(self, viper_file, capsys):
        assert main(["certify", str(viper_file), "--wd-at-calls", "--no-fastpath"]) == 0


class TestIndependentCheck:
    def test_roundtrip(self, viper_file, tmp_path, capsys):
        bpl = tmp_path / "demo.bpl"
        cert = tmp_path / "demo.cert"
        assert main([
            "certify", str(viper_file), "-o", str(cert), "--boogie-output", str(bpl)
        ]) == 0
        assert main(["check", str(viper_file), str(bpl), str(cert)]) == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_tampered_boogie_rejected(self, viper_file, tmp_path, capsys):
        bpl = tmp_path / "demo.bpl"
        cert = tmp_path / "demo.cert"
        main(["certify", str(viper_file), "-o", str(cert), "--boogie-output", str(bpl)])
        text = bpl.read_text().replace(
            "readHeap<int>(H, v_x, field_f) + 1", "readHeap<int>(H, v_x, field_f) + 2"
        )
        assert text != bpl.read_text(), "tampering must hit a real command"
        bpl.write_text(text)
        assert main(["check", str(viper_file), str(bpl), str(cert)]) == 1
        assert "REJECTED" in capsys.readouterr().err


class TestVerify:
    def test_valid_program(self, viper_file, capsys):
        assert main(["verify", str(viper_file)]) == 0
        assert "bounded-valid" in capsys.readouterr().out

    def test_refuted_program(self, tmp_path, capsys):
        path = tmp_path / "bad.vpr"
        path.write_text(BAD)
        assert main(["verify", str(path)]) == 1
        assert "refuted" in capsys.readouterr().out


class TestBench:
    def test_single_suite(self, capsys):
        assert main(["bench", "MPP"]) == 0
        out = capsys.readouterr().out
        assert "banerjee" in out


class TestLoopsThroughCli:
    def test_loop_source_certifies(self, tmp_path, capsys):
        path = tmp_path / "loop.vpr"
        path.write_text(
            """
            field f: Int
            method m(x: Ref, n: Int)
              requires acc(x.f, write) && n >= 0 ensures acc(x.f, write)
            {
              var i: Int
              i := 0
              while (i < n) invariant acc(x.f, write) && i >= 0 { i := i + 1 }
            }
            """
        )
        assert main(["certify", str(path)]) == 0
