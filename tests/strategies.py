"""Hypothesis strategies generating well-typed Viper ASTs.

The generators are type-indexed: ``expr_of(Type.INT)`` only produces
integer-typed expressions over a fixed environment, so every generated AST
passes the type checker by construction.  Used by the round-trip,
metatheory, and certification property tests.

The fixed environment (``ENV``) and field declarations (``FIELDS``) are
re-exported from :mod:`repro.fuzz.generate` — the standalone seeded
generator that grew out of these strategies — so hypothesis-driven
property tests and the ``repro fuzz`` driver draw programs from the same
universe.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import strategies as st

from repro.fuzz.generate import ENV, FIELDS
from repro.viper.ast import (
    Acc,
    AExpr,
    AssertStmt,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    NullLit,
    PermLit,
    SepConj,
    Seq,
    Skip,
    Type,
    UnOp,
    UnOpKind,
    Var,
    Exhale,
)

__all__ = ["ENV", "FIELDS", "assertions", "expr_of", "statements"]

_INT_FIELDS = [name for name, typ in FIELDS.items() if typ is Type.INT]
_VARS_BY_TYPE = {
    typ: [name for name, t in ENV.items() if t is typ]
    for typ in Type
}


def _leaf(typ: Type) -> st.SearchStrategy:
    options = [st.builds(Var, st.sampled_from(_VARS_BY_TYPE[typ]))]
    if typ is Type.INT:
        options.append(st.builds(IntLit, st.integers(-8, 8)))
    elif typ is Type.BOOL:
        options.append(st.builds(BoolLit, st.booleans()))
    elif typ is Type.REF:
        options.append(st.just(NullLit()))
    elif typ is Type.PERM:
        options.append(
            st.builds(
                PermLit,
                st.sampled_from(
                    [Fraction(0), Fraction(1, 2), Fraction(1, 4), Fraction(1)]
                ),
            )
        )
    return st.one_of(options)


def expr_of(typ: Type, depth: int = 2) -> st.SearchStrategy:
    """Expressions of the given Viper type (well-typed by construction)."""
    if depth <= 0:
        return _leaf(typ)
    sub = depth - 1
    options = [_leaf(typ)]
    if typ is Type.INT:
        options.append(
            st.builds(
                lambda op, l, r: BinOp(op, l, r),
                st.sampled_from([BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL]),
                expr_of(Type.INT, sub),
                expr_of(Type.INT, sub),
            )
        )
        # NEG only over variables: `-1` parses as a literal, so a
        # round-trippable generator must not emit UnOp(NEG, IntLit).
        options.append(
            st.builds(UnOp, st.just(UnOpKind.NEG), _leaf(Type.INT).filter(
                lambda e: not isinstance(e, IntLit)))
        )
        if _INT_FIELDS:
            options.append(
                st.builds(
                    FieldAcc,
                    expr_of(Type.REF, 0),
                    st.sampled_from(_INT_FIELDS),
                )
            )
        options.append(
            st.builds(
                CondExp, expr_of(Type.BOOL, sub), expr_of(Type.INT, sub), expr_of(Type.INT, sub)
            )
        )
    elif typ is Type.BOOL:
        options.append(
            st.builds(
                lambda op, l, r: BinOp(op, l, r),
                st.sampled_from(
                    [BinOpKind.AND, BinOpKind.OR, BinOpKind.IMPLIES]
                ),
                expr_of(Type.BOOL, sub),
                expr_of(Type.BOOL, sub),
            )
        )
        options.append(
            st.builds(
                lambda op, l, r: BinOp(op, l, r),
                st.sampled_from(
                    [BinOpKind.LT, BinOpKind.LE, BinOpKind.GT, BinOpKind.GE,
                     BinOpKind.EQ, BinOpKind.NE]
                ),
                expr_of(Type.INT, sub),
                expr_of(Type.INT, sub),
            )
        )
        options.append(st.builds(UnOp, st.just(UnOpKind.NOT), expr_of(Type.BOOL, sub)))
    elif typ is Type.PERM:
        options.append(
            st.builds(
                lambda l, r: BinOp(BinOpKind.ADD, l, r),
                expr_of(Type.PERM, sub),
                expr_of(Type.PERM, sub),
            )
        )
    return st.one_of(options)


def assertions(depth: int = 2) -> st.SearchStrategy:
    """Well-typed assertions over the fixed environment."""
    pure = st.builds(AExpr, expr_of(Type.BOOL, depth))
    acc = st.builds(
        Acc,
        expr_of(Type.REF, 0),
        st.sampled_from(sorted(FIELDS)),
        st.one_of(
            st.builds(
                PermLit,
                st.sampled_from([Fraction(1, 2), Fraction(1, 4), Fraction(1)]),
            ),
            st.builds(Var, st.just("p")),
        ),
    )
    if depth <= 0:
        return st.one_of(pure, acc)
    sub = assertions(depth - 1)
    # Implications and conditional assertions are trailing-greedy in the
    # concrete syntax: they cannot appear as the *left* operand of `&&`
    # without parentheses (which the assertion grammar does not have), so a
    # parse-representable generator keeps the left conjunct simple.
    left_safe = sub.filter(lambda a: not isinstance(a, (Implies, CondAssert)))
    return st.one_of(
        pure,
        acc,
        st.builds(SepConj, left_safe, sub),
        st.builds(Implies, expr_of(Type.BOOL, 1), sub),
        st.builds(CondAssert, expr_of(Type.BOOL, 1), sub, sub),
    )


def statements(depth: int = 2) -> st.SearchStrategy:
    """Well-typed statements (no calls, no declarations — fixed env)."""
    assign_int = st.builds(
        LocalAssign, st.sampled_from(_VARS_BY_TYPE[Type.INT]), expr_of(Type.INT, 1)
    )
    assign_bool = st.builds(
        LocalAssign, st.sampled_from(_VARS_BY_TYPE[Type.BOOL]), expr_of(Type.BOOL, 1)
    )
    field_write = st.builds(
        lambda rcv, val: FieldAssign(rcv, "f", val),
        expr_of(Type.REF, 0),
        expr_of(Type.INT, 1),
    )
    inhale = st.builds(Inhale, assertions(1))
    exhale = st.builds(Exhale, assertions(1))
    assert_stmt = st.builds(AssertStmt, assertions(1))
    atomic = st.one_of(assign_int, assign_bool, field_write, inhale, exhale, assert_stmt)
    if depth <= 0:
        return atomic
    sub = statements(depth - 1)
    return st.one_of(
        atomic,
        st.builds(Seq, sub, sub),
        st.builds(If, expr_of(Type.BOOL, 1), sub, st.one_of(st.just(Skip()), sub)),
    )
