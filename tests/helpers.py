"""Shared helpers for the test suite."""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.viper import (
    check_program,
    parse_program,
    Program,
    ViperContext,
)
from repro.viper.state import ViperState
from repro.viper.typechecker import ProgramTypeInfo
from repro.viper.values import NULL, VBool, VInt, VPerm, VRef


def parsed(source: str) -> Tuple[Program, ProgramTypeInfo]:
    """Parse and type-check a Viper program."""
    program = parse_program(source)
    return program, check_program(program)


def context_for(source: str, method: str) -> Tuple[Program, ProgramTypeInfo, ViperContext]:
    program, info = parsed(source)
    return program, info, ViperContext(program, info, method)


def vstate(
    store: Optional[Dict] = None,
    heap: Optional[Dict] = None,
    mask: Optional[Dict] = None,
    field_types: Optional[Dict] = None,
) -> ViperState:
    """Build a Viper state with defaulted components."""
    from repro.viper.ast import Type

    return ViperState(
        store=store or {},
        heap=heap or {},
        mask={k: Fraction(v) for k, v in (mask or {}).items()},
        field_types=field_types or {"f": Type.INT},
    )


#: A one-field one-method scaffold many expression tests reuse.
SCAFFOLD = """
field f: Int

method scaffold(x: Ref, y: Ref, n: Int, b: Bool, p: Perm) returns (r: Int)
  requires true
  ensures true
{
  r := 0
}
"""


def scaffold_context() -> Tuple[Program, ProgramTypeInfo, ViperContext]:
    return context_for(SCAFFOLD, "scaffold")


__all__ = [
    "parsed",
    "context_for",
    "vstate",
    "scaffold_context",
    "SCAFFOLD",
    "NULL",
    "VBool",
    "VInt",
    "VPerm",
    "VRef",
    "Fraction",
]
