"""Tests for the nondeterminism plumbing (choice oracles and enumeration)."""

import pytest

from repro.choice import (
    all_executions,
    ChoiceOracle,
    DefaultOracle,
    ExplosionLimit,
    SeededOracle,
)


class TestOracles:
    def test_default_picks_first(self):
        oracle = DefaultOracle()
        assert oracle.choose((1, 2, 3)) == 1

    def test_default_rejects_empty(self):
        with pytest.raises(ValueError):
            DefaultOracle().choose(())

    def test_seeded_is_reproducible(self):
        picks1 = [SeededOracle(7).choose(range(100)) for _ in range(1)]
        picks2 = [SeededOracle(7).choose(range(100)) for _ in range(1)]
        assert picks1 == picks2

    def test_seeded_varies_with_seed(self):
        values = {SeededOracle(seed).choose(range(1000)) for seed in range(20)}
        assert len(values) > 1


class TestAllExecutions:
    def test_no_choices_yields_single_run(self):
        results = list(all_executions(lambda oracle: 42))
        assert results == [42]

    def test_single_choice_enumerates_all(self):
        def run(oracle):
            return oracle.choose(("a", "b", "c"))

        assert sorted(all_executions(run)) == ["a", "b", "c"]

    def test_nested_choices_form_product(self):
        def run(oracle):
            first = oracle.choose((0, 1))
            second = oracle.choose((0, 1, 2))
            return (first, second)

        results = set(all_executions(run))
        assert results == {(a, b) for a in (0, 1) for b in (0, 1, 2)}

    def test_dependent_branching(self):
        # The second choice only happens on one branch: the tree is ragged.
        def run(oracle):
            first = oracle.choose(("leaf", "branch"))
            if first == "leaf":
                return "leaf"
            return "branch-" + str(oracle.choose((1, 2)))

        assert sorted(all_executions(run)) == ["branch-1", "branch-2", "leaf"]

    def test_deep_dependent_tree_counts(self):
        def run(oracle):
            total = 0
            while oracle.choose((True, False)) and total < 4:
                total += 1
            return total

        # Paths: F, TF, TTF, TTTF, TTTT(T...) capped at 4: TTTT ends loop.
        results = list(all_executions(run))
        assert sorted(results) == [0, 1, 2, 3, 4, 4]

    def test_explosion_limit(self):
        def run(oracle):
            for _ in range(10):
                oracle.choose((0, 1))
            return None

        with pytest.raises(ExplosionLimit):
            list(all_executions(run, max_paths=16))

    def test_each_path_is_deterministic_replay(self):
        # The same trail prefix must produce the same prefix of choices.
        seen = []

        def run(oracle):
            a = oracle.choose((10, 20))
            b = oracle.choose((1, 2))
            seen.append((a, b))
            return a + b

        results = list(all_executions(run))
        assert len(results) == 4
        assert len(set(seen)) == 4
