"""Unit tests for the CFG builder and the dataflow engines."""

from repro.analysis import CFG, ForwardAnalysis, build_cfg, run_forward, run_liveness
from repro.viper import parse_program


def _body(source: str):
    return parse_program(source).methods[0].body


_PROGRAM = """\
field f: Int

method m(x: Ref, flag: Bool) returns (res: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write)
{
  %s
}
"""


def test_straight_line_cfg_shape():
    cfg = build_cfg(_body(_PROGRAM % "res := 1\n  res := res + 1"))
    kinds = [node.kind for node in cfg.nodes]
    assert kinds.count("entry") == 1
    assert kinds.count("exit") == 1
    assert kinds.count("stmt") == 2
    # Linear chain: entry → s1 → s2 → exit.
    assert len(cfg.succs[cfg.entry]) == 1
    assert cfg.preds[cfg.exit]


def test_if_contributes_labelled_branch_edges():
    cfg = build_cfg(_body(_PROGRAM % (
        "if (flag) {\n    res := 1\n  } else {\n    res := 2\n  }"
    )))
    branches = [n for n in cfg.nodes if n.kind == "branch"]
    assert len(branches) == 1
    labels = sorted(label for _, label in cfg.succs[branches[0].index])
    assert labels == [False, True]


def test_while_contributes_loop_head_with_back_edge():
    cfg = build_cfg(_body(_PROGRAM % (
        "res := 0\n  while (res < 2)\n    invariant res >= 0\n"
        "  {\n    res := res + 1\n  }"
    )))
    heads = [n for n in cfg.nodes if n.kind == "loop-head"]
    assert len(heads) == 1
    head = heads[0].index
    # The head has a predecessor inside the body (the back edge).
    body_preds = [src for src, _ in cfg.preds[head] if src != cfg.entry]
    assert body_preds
    # The exit edge is the False label.
    assert (head, False) in {
        (src, label) for src, label in cfg.preds[cfg.exit]
    } or any(label is False for _, label in cfg.succs[head])


def test_nodes_carry_source_positions():
    cfg = build_cfg(_body(_PROGRAM % "res := 1"))
    stmt_nodes = cfg.stmt_nodes()
    assert stmt_nodes and all(isinstance(n.pos, int) for n in stmt_nodes)


class _ReachingCount(ForwardAnalysis):
    """Counts statements along the path (join = max) — exercises widening."""

    def initial(self):
        return 0

    def join(self, a, b):
        return max(a, b)

    def widen(self, old, new):
        return 10_000  # top

    def transfer(self, node, state):
        return state + 1 if node.kind == "stmt" else state


def test_run_forward_reaches_fixpoint_on_loops():
    cfg = build_cfg(_body(_PROGRAM % (
        "res := 0\n  while (res < 2)\n    invariant res >= 0\n"
        "  {\n    res := res + 1\n  }"
    )))
    states = run_forward(cfg, _ReachingCount(), widen_after=2)
    assert cfg.exit in states  # the exit is reachable
    # Widening must have been applied at the loop head.
    head = next(n.index for n in cfg.nodes if n.kind == "loop-head")
    assert states[head] == 10_000


class _DeadEdge(ForwardAnalysis):
    def initial(self):
        return "live"

    def join(self, a, b):
        return "live"

    def transfer_edge(self, node, state, label):
        if label is True:
            return None  # kill the then-branch
        return state


def test_transfer_edge_none_marks_successors_unreachable():
    cfg = build_cfg(_body(_PROGRAM % (
        "if (flag) {\n    res := 1\n  } else {\n    res := 2\n  }"
    )))
    states = run_forward(cfg, _DeadEdge())
    then_assign = [
        n.index for n in cfg.stmt_nodes()
        if getattr(n.stmt, "rhs", None) is not None
    ]
    # Exactly one of the two assignments (the then-side) is unreachable.
    reachable = [i for i in then_assign if i in states]
    assert len(reachable) == 1


def test_liveness_exit_set_keeps_out_params_live():
    cfg = build_cfg(_body(_PROGRAM % "res := 1\n  res := 2"))

    def uses(node):
        return frozenset()

    def defs(node):
        target = getattr(node.stmt, "target", None)
        return frozenset({target}) if isinstance(target, str) else frozenset()

    live_out = run_liveness(cfg, uses, defs, exit_live=frozenset({"res"}))
    stmt_nodes = cfg.stmt_nodes()
    # `res` is live after the second assignment (the exit reads it) but dead
    # after the first (the second assignment kills it).
    assert "res" in live_out[stmt_nodes[1].index]
    assert "res" not in live_out[stmt_nodes[0].index]
