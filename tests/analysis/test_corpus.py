"""The negative corpus: one seeded defect per check ID.

Each ``tests/analysis/corpus/*.vpr`` file carries an ``// expect:
VPRxxx @ line`` header; the analyzer must report exactly the expected
findings — same check ID, same source line, nothing else.  This pins both
the detection *and* the precision of every check: a new false positive on
any corpus file fails the exact-match assertion.
"""

import pathlib
import re

import pytest

from repro.analysis import ALL_CHECK_IDS, CHECKS, lint_source

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.vpr"))

_EXPECT_RE = re.compile(r"// expect: (VPR\d+) @ (\d+)")


def _expectations(text: str):
    return [(code, int(line)) for code, line in _EXPECT_RE.findall(text)]


def test_corpus_exists_and_covers_every_check_id():
    assert CORPUS_FILES, "tests/analysis/corpus/ is empty"
    covered = set()
    for path in CORPUS_FILES:
        covered |= {code for code, _ in _expectations(path.read_text())}
    assert covered == set(ALL_CHECK_IDS), (
        f"corpus misses checks: {sorted(set(ALL_CHECK_IDS) - covered)}"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_seeded_defect_is_flagged_exactly(path):
    text = path.read_text()
    expected = _expectations(text)
    assert expected, f"{path.name} carries no // expect: header"
    result = lint_source(text)
    assert result.error is None, f"{path.name} failed to parse: {result.error}"
    actual = [(f.code, f.line) for f in result.findings]
    assert actual == expected, (
        f"{path.name}: expected exactly {expected}, got "
        f"{[(f.code, f.line, f.message) for f in result.findings]}"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_seeded_defect_severity_matches_catalog(path):
    result = lint_source(path.read_text())
    for finding in result.findings:
        assert finding.severity == CHECKS[finding.code].severity


def test_old_in_precondition_is_spec_hygiene():
    """The VPR009(a) variant: ``old()`` in a precondition is meaningless."""
    source = """\
field f: Int

method m(x: Ref)
  requires acc(x.f, write) && old(x.f) > 0
  ensures acc(x.f, write)
{
  x.f := 1
}
"""
    result = lint_source(source)
    assert [(f.code) for f in result.findings] == ["VPR009"]
    assert "precondition" in result.findings[0].message


def test_suppression_marker_silences_the_seeded_defect():
    path = CORPUS_DIR / "vpr009_spec_hygiene.vpr"
    text = path.read_text().replace("assert true", "assert true  // lint:ignore")
    result = lint_source(text)
    assert result.findings == []
    assert result.suppressed == 1


def test_scoped_suppression_only_silences_listed_codes():
    path = CORPUS_DIR / "vpr009_spec_hygiene.vpr"
    text = path.read_text().replace(
        "assert true", "assert true  // lint:ignore VPR001"
    )
    result = lint_source(text)
    assert [f.code for f in result.findings] == ["VPR009"]
    assert result.suppressed == 0
