"""Unit tests for the report layer (selection, promotion, exit codes) and
the pipeline's ``analyze`` stage (advisory vs. strict)."""

import pytest

from repro.analysis import (
    AnalysisError,
    lint_source,
    promote_warnings,
    select_findings,
    suppressed_lines,
)
from repro.pipeline import run_pipeline

_CLEAN = """\
field f: Int

method m(x: Ref) returns (res: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write)
{
  res := x.f
}
"""

_WARN = _CLEAN.replace("res := x.f", "res := x.f\n  assert true")

_ERROR = """\
field f: Int

method m(x: Ref)
  requires acc(x.f, 1/2)
  ensures acc(x.f, 1/2)
{
  x.f := 1
}
"""


# ---------------------------------------------------------------------------
# exit codes


def test_exit_code_zero_on_clean():
    result = lint_source(_CLEAN)
    assert result.findings == [] and result.exit_code == 0


def test_exit_code_one_on_findings():
    result = lint_source(_WARN)
    assert result.findings and result.exit_code == 1


def test_exit_code_two_on_parse_error():
    result = lint_source("method {{{")
    assert result.error is not None
    assert result.error.stage == "parse"
    assert result.findings == [] and result.exit_code == 2


def test_to_dict_carries_exit_code_and_findings():
    payload = lint_source(_WARN).to_dict()
    assert payload["exit_code"] == 1
    assert payload["suppressed"] == 0
    assert payload["findings"][0]["code"] == "VPR009"
    assert "error" not in payload


# ---------------------------------------------------------------------------
# selection and promotion


def test_select_keeps_only_listed_codes():
    findings = lint_source(_WARN).findings
    assert select_findings(findings, select=["VPR001"]) == []
    assert [f.code for f in select_findings(findings, select=["vpr009"])] == [
        "VPR009"
    ]


def test_ignore_drops_listed_codes():
    findings = lint_source(_WARN).findings
    assert select_findings(findings, ignore=["VPR009"]) == []


def test_unknown_code_raises_value_error():
    with pytest.raises(ValueError, match="VPR999"):
        lint_source(_WARN, select=["VPR999"])


def test_promote_warnings_turns_warnings_into_errors():
    findings = lint_source(_WARN).findings
    assert all(f.severity == "warning" for f in findings)
    promoted = promote_warnings(findings)
    assert all(f.severity == "error" for f in promoted)
    # Everything but the severity is preserved.
    assert [(f.code, f.line) for f in promoted] == [
        (f.code, f.line) for f in findings
    ]


def test_error_on_warn_flows_through_lint_source():
    result = lint_source(_WARN, error_on_warn=True)
    assert all(f.severity == "error" for f in result.findings)


# ---------------------------------------------------------------------------
# suppression markers


def test_suppressed_lines_parses_scoped_and_unscoped_markers():
    markers = suppressed_lines(
        "a\nb  // lint:ignore\nc  // lint:ignore VPR001, VPR004\n"
    )
    assert markers == {2: None, 3: {"VPR001", "VPR004"}}


# ---------------------------------------------------------------------------
# the pipeline's analyze stage


def test_advisory_pipeline_records_findings_without_rejecting():
    ctx = run_pipeline(_ERROR, upto="analyze")
    assert [f.code for f in ctx.findings] == ["VPR008"]
    # Advisory mode: the pipeline continues past error-severity findings.
    run_pipeline(_ERROR, upto="check")


def test_strict_pipeline_rejects_on_error_severity():
    with pytest.raises(AnalysisError) as excinfo:
        run_pipeline(_ERROR, upto="analyze", analysis_strict=True)
    assert [f.code for f in excinfo.value.findings] == ["VPR008"]
    assert "[VPR008]" in str(excinfo.value)


def test_strict_pipeline_passes_warning_only_programs():
    ctx = run_pipeline(_WARN, upto="analyze", analysis_strict=True)
    assert [f.code for f in ctx.findings] == ["VPR009"]


def test_analyze_gate_skips_the_stage():
    ctx = run_pipeline(_ERROR, upto="analyze", analyze=False)
    assert ctx.findings is None
    assert "analyze" in ctx.completed  # gated stages still count as done
