"""The zero-false-positive sweep (acceptance criterion of the subsystem).

Every check only reports *provable* facts, so every well-formed program we
ship must lint clean: the checked-in examples, all 72 benchmark-corpus
files, and 200 seeded ``repro.fuzz.generate`` programs (whose lint-clean
contract doubles as an ongoing oracle: a finding on a generated program is
an analyzer bug, a generator that cannot satisfy the analyzer is a
generator bug).
"""

import pathlib
import re

import pytest

from repro.analysis import lint_source
from repro.fuzz.generate import SEED_CORPUS, generate_corpus
from repro.harness import full_corpus

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: Triple-quoted Viper programs embedded in the example scripts.  The
#: deliberately ill-formed negative demos are excluded by name.
_EMBEDDED_RE = re.compile(r'^(?P<name>[A-Z_]+) = """(?P<body>.*?)"""',
                          re.S | re.M)
_NEGATIVE_DEMOS = {"ILL_FORMED"}


def _example_programs():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        for match in _EMBEDDED_RE.finditer(path.read_text()):
            if match.group("name") in _NEGATIVE_DEMOS:
                continue
            yield f"{path.name}:{match.group('name')}", match.group("body")


def test_examples_lint_clean():
    programs = list(_example_programs())
    assert programs, "no embedded example programs found"
    for name, source in programs:
        result = lint_source(source)
        assert result.error is None, f"{name}: {result.error}"
        assert result.findings == [], (
            f"{name}: {[(f.code, f.line, f.message) for f in result.findings]}"
        )


@pytest.mark.parametrize("suite", ["Viper", "Gobra", "VerCors", "MPP"])
def test_bench_corpus_lints_clean(suite):
    for corpus_file in full_corpus()[suite]:
        result = lint_source(corpus_file.source)
        assert result.error is None, f"{suite}/{corpus_file.name}: {result.error}"
        assert result.findings == [], (
            f"{suite}/{corpus_file.name}: "
            f"{[(f.code, f.line, f.message) for f in result.findings]}"
        )


def test_200_generated_programs_lint_clean():
    dirty = []
    for generated in generate_corpus(0, 200):
        result = lint_source(generated.source)
        if result.error is not None or result.findings:
            dirty.append((generated.seed,
                          [(f.code, f.line, f.message) for f in result.findings]))
    assert dirty == [], f"{len(dirty)} generated programs lint dirty: {dirty[:3]}"


def test_fuzz_seed_corpus_lints_clean():
    for index, source in enumerate(SEED_CORPUS):
        result = lint_source(source)
        assert result.error is None and result.findings == [], (
            f"SEED_CORPUS[{index}]: "
            f"{[(f.code, f.line, f.message) for f in result.findings]}"
        )
