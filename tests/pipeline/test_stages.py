"""The staged pipeline: stage graph, artifacts, and seed-equivalence.

The acceptance bar for the refactor: ``repro.pipeline`` is the only place
the stage sequence is spelled out, and every legacy entry point
(`translate_source`, `certify_source`, the harness runner) produces the
same artifacts as the seed implementation did — verified here by
re-implementing the seed flow inline and comparing everything except
wall-clock timings.
"""

import time

import pytest

from repro.boogie.pretty import pretty_boogie_program
from repro.certification import (
    check_program_certificate,
    generate_program_certificate,
    parse_program_certificate,
    render_program_certificate,
)
from repro.frontend import translate_program, TranslationOptions
from repro.harness import FileMetrics, generate_file, metrics_from_context, run_file
from repro.pipeline import (
    PipelineInstrumentation,
    run_pipeline,
    run_stage,
    make_context,
    resume_pipeline,
    STAGE_NAMES,
    STAGES,
    stage_index,
)
from repro.viper import parse_program
from repro.viper.pretty import count_loc
from repro.viper.typechecker import check_program

SIMPLE = """
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""

LOOPY = """
field f: Int
method m(x: Ref, n: Int)
  requires acc(x.f, write) && n >= 0 ensures acc(x.f, write)
{
  var i: Int
  i := 0
  while (i < n) invariant acc(x.f, write) && i >= 0 { i := i + 1 }
}
"""


class TestStageGraph:
    def test_stage_order_is_the_papers_workflow(self):
        assert STAGE_NAMES == (
            "parse",
            "desugar",
            "typecheck",
            "units",
            "analyze",
            "translate",
            "generate",
            "render",
            "reparse",
            "check",
        )

    def test_stage_index_rejects_unknown_stages(self):
        with pytest.raises(KeyError):
            stage_index("optimise")

    def test_every_stage_provides_a_context_attribute(self):
        ctx = run_pipeline(SIMPLE)
        for stage in STAGES:
            assert getattr(ctx, stage.provides) is not None, stage.name
        assert ctx.completed == set(STAGE_NAMES)

    def test_instrumentation_records_every_stage_in_order(self):
        inst = PipelineInstrumentation()
        run_pipeline(SIMPLE, instrumentation=inst)
        assert [r.stage for r in inst.records] == list(STAGE_NAMES)
        assert all(not r.skipped for r in inst.records)
        sizes = inst.artifact_sizes()
        assert sizes["viper_loc"] > 0
        assert sizes["boogie_loc"] > sizes["viper_loc"]
        assert sizes["cert_loc"] > 0

    def test_upto_stops_early(self):
        ctx = run_pipeline(SIMPLE, upto="translate")
        assert ctx.translation is not None
        assert ctx.certificate is None and ctx.report is None
        assert "generate" not in ctx.completed

    def test_stages_are_individually_invokable_and_resumable(self):
        ctx = make_context(SIMPLE)
        run_stage(ctx, "parse")
        assert ctx.program is not None and ctx.completed == {"parse"}
        resume_pipeline(ctx, upto="check")
        assert ctx.report.ok
        # Each stage ran exactly once despite the resume re-walking the graph.
        assert all(
            ctx.instrumentation.counters[f"stage.{name}.runs"] == 1
            for name in STAGE_NAMES
        )

    def test_observer_hook_sees_every_record(self):
        seen = []
        inst = PipelineInstrumentation()
        inst.add_observer(lambda record: seen.append(record.stage))
        run_pipeline(SIMPLE, upto="typecheck", instrumentation=inst)
        assert seen == ["parse", "desugar", "typecheck"]


class TestSeedEquivalence:
    """The pipeline reproduces the seed implementations bit-for-bit."""

    def test_translate_source_matches_seed_flow(self):
        # The seed flow: parse → desugar passes → typecheck → translate.
        import repro

        program = parse_program(SIMPLE)
        type_info = check_program(program)
        seed = translate_program(program, type_info, None)
        piped = repro.translate_source(SIMPLE)
        assert pretty_boogie_program(piped.boogie_program) == pretty_boogie_program(
            seed.boogie_program
        )

    def test_certify_source_matches_seed_flow(self):
        import repro

        report = repro.certify_source(SIMPLE)
        assert report.ok
        assert sorted(report.method_reports) == ["inc"]

    def _seed_run_file(self, corpus_file, options=None):
        """The seed harness ``run_file``, reproduced inline (no desugaring)."""
        program = parse_program(corpus_file.source)
        type_info = check_program(program)
        start = time.perf_counter()
        result = translate_program(program, type_info, options)
        translate_seconds = time.perf_counter() - start
        start = time.perf_counter()
        certificate = generate_program_certificate(result)
        cert_text = render_program_certificate(certificate)
        generate_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reparsed = parse_program_certificate(cert_text)
        report = check_program_certificate(result, reparsed)
        check_seconds = time.perf_counter() - start
        return FileMetrics(
            suite=corpus_file.suite,
            name=corpus_file.name,
            methods=len(program.methods),
            viper_loc=count_loc(corpus_file.source),
            boogie_loc=count_loc(pretty_boogie_program(result.boogie_program)),
            cert_loc=len([l for l in cert_text.splitlines() if l.strip()]),
            translate_seconds=translate_seconds,
            generate_seconds=generate_seconds,
            check_seconds=check_seconds,
            certified=report.ok,
            error=report.error,
        )

    @pytest.mark.parametrize(
        "suite,name,loc,methods",
        [("Viper", "0008", 12, 2), ("MPP", "darvas", 91, 2)],
    )
    def test_run_file_metrics_identical_to_seed_modulo_timing(
        self, suite, name, loc, methods
    ):
        corpus_file = generate_file(suite, name, loc, methods)
        seed = self._seed_run_file(corpus_file)
        piped = run_file(corpus_file)
        for field_name in (
            "suite",
            "name",
            "methods",
            "viper_loc",
            "boogie_loc",
            "cert_loc",
            "certified",
            "error",
        ):
            assert getattr(piped, field_name) == getattr(seed, field_name), field_name
        assert piped.translate_seconds > 0
        assert piped.generate_seconds > 0
        assert piped.check_seconds > 0

    def test_run_file_with_options_matches_seed(self):
        corpus_file = generate_file("Gobra", "simple2", 10, 1)
        options = TranslationOptions(wd_checks_at_calls=True, literal_perm_fastpath=False)
        seed = self._seed_run_file(corpus_file, options)
        piped = run_file(corpus_file, options)
        assert piped.boogie_loc == seed.boogie_loc
        assert piped.cert_loc == seed.cert_loc
        assert piped.certified == seed.certified


class TestLoopDesugaringRegression:
    """Regression for the harness bug: ``run_file`` skipped the desugaring
    passes, so corpus programs with ``while`` loops crashed the runner."""

    def test_run_file_certifies_a_while_loop_program(self):
        from repro.harness.corpus import CorpusFile

        corpus_file = CorpusFile(suite="Viper", name="loopy", source=LOOPY, paper_loc=9)
        metrics = run_file(corpus_file)
        assert metrics.certified, metrics.error
        assert metrics.methods == 1

    def test_seed_flow_without_desugaring_fails_on_loops(self):
        # Documents why the fix matters: the pre-refactor harness flow
        # (no desugar stage) cannot handle the same program.
        program = parse_program(LOOPY)
        with pytest.raises(Exception):
            type_info = check_program(program)
            translate_program(program, type_info, None)

    def test_certify_source_handles_the_same_program(self):
        import repro

        assert repro.certify_source(LOOPY).ok

    def test_metrics_from_context_reports_incomplete_pipeline(self):
        from repro.harness.corpus import CorpusFile

        corpus_file = CorpusFile(suite="Viper", name="partial", source=SIMPLE, paper_loc=9)
        ctx = run_pipeline(SIMPLE, upto="translate")
        metrics = metrics_from_context(corpus_file, ctx)
        assert not metrics.certified
        assert metrics.error == "pipeline incomplete"
        assert metrics.boogie_loc > 0
