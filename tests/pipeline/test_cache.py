"""Content-addressed artifact cache: keying, hits/misses, trust boundary."""

import pytest

from repro.frontend import TranslationOptions
from repro.pipeline import (
    ArtifactCache,
    cache_key,
    PipelineInstrumentation,
    run_pipeline,
    source_digest,
)

PROGRAM = """
field f: Int
method m(x: Ref)
  requires acc(x.f, write) ensures acc(x.f, write)
{ x.f := 1 }
"""

OTHER = PROGRAM.replace("x.f := 1", "x.f := 2")


class TestKeying:
    def test_same_source_same_options_same_key(self):
        assert cache_key(PROGRAM, None) == cache_key(PROGRAM, TranslationOptions())

    def test_different_source_different_key(self):
        assert cache_key(PROGRAM, None) != cache_key(OTHER, None)

    def test_different_options_different_key(self):
        assert cache_key(PROGRAM, TranslationOptions()) != cache_key(
            PROGRAM, TranslationOptions(wd_checks_at_calls=True)
        )

    def test_digest_is_newline_normalised(self):
        assert source_digest("a\nb") == source_digest("a\r\nb")

    def test_crlf_and_trailing_newline_sources_alias(self):
        """CRLF/LF and trailing-newline variants map to the same key…"""
        assert cache_key("m()", None) == cache_key("m()\n", None)
        assert cache_key("m()\r\n", None) == cache_key("m()\n", None)
        assert cache_key(PROGRAM.replace("\n", "\r\n"), None) == cache_key(PROGRAM, None)

    def test_aliased_sources_with_different_options_never_collide(self):
        """…while differing options never alias, even for aliased sources."""
        for variant in ("m()", "m()\n", "m()\r\n"):
            assert cache_key(variant, TranslationOptions()) != cache_key(
                variant, TranslationOptions(wd_checks_at_calls=True)
            )
            assert cache_key(variant, TranslationOptions()) != cache_key(
                variant, TranslationOptions(literal_perm_fastpath=False)
            )

    def test_default_options_instance_is_hoisted(self):
        """`cache_key(source, None)` must not allocate fresh options per call."""
        assert cache_key(PROGRAM, None)[1] is cache_key(OTHER, None)[1]

    def test_digest_is_content_addressed(self):
        assert source_digest(PROGRAM) != source_digest(OTHER)
        assert source_digest(PROGRAM) == source_digest(PROGRAM)


class TestCacheHitsAndMisses:
    def test_second_certify_run_skips_translate_and_generate(self):
        cache = ArtifactCache()
        first = PipelineInstrumentation()
        run_pipeline(PROGRAM, cache=cache, instrumentation=first)
        assert first.counters["cache.miss"] == 2  # translation + certificate
        assert first.stage_ran("translate") and first.stage_ran("generate")

        second = PipelineInstrumentation()
        ctx = run_pipeline(PROGRAM, cache=cache, instrumentation=second)
        # The acceptance criterion: translate/generate are skipped, counted.
        assert second.counters.get("stage.translate.runs", 0) == 0
        assert second.counters.get("stage.generate.runs", 0) == 0
        assert second.counters["stage.translate.skipped"] == 1
        assert second.counters["stage.generate.skipped"] == 1
        assert second.counters["cache.hit"] == 2
        # The trusted path still runs — the verdict is never cached.
        assert second.counters["stage.reparse.runs"] == 1
        assert second.counters["stage.check.runs"] == 1
        assert ctx.report.ok

    def test_cached_run_produces_identical_artifacts(self):
        cache = ArtifactCache()
        ctx1 = run_pipeline(PROGRAM, cache=cache)
        ctx2 = run_pipeline(PROGRAM, cache=cache)
        assert ctx2.certificate_text == ctx1.certificate_text
        assert ctx2.boogie_text == ctx1.boogie_text
        assert ctx2.instrumentation.artifact_sizes() == ctx1.instrumentation.artifact_sizes()

    def test_option_change_misses(self):
        cache = ArtifactCache()
        run_pipeline(PROGRAM, cache=cache)
        inst = PipelineInstrumentation()
        run_pipeline(
            PROGRAM,
            TranslationOptions(always_emit_exhale_havoc=True),
            cache=cache,
            instrumentation=inst,
        )
        assert inst.counters.get("cache.hit", 0) == 0
        assert inst.stage_ran("translate")

    def test_source_change_misses(self):
        cache = ArtifactCache()
        run_pipeline(PROGRAM, cache=cache)
        inst = PipelineInstrumentation()
        run_pipeline(OTHER, cache=cache, instrumentation=inst)
        assert inst.counters.get("cache.hit", 0) == 0

    def test_translate_only_run_seeds_the_translation_slot(self):
        cache = ArtifactCache()
        run_pipeline(PROGRAM, cache=cache, upto="translate")
        inst = PipelineInstrumentation()
        ctx = run_pipeline(PROGRAM, cache=cache, instrumentation=inst)
        assert inst.counters["stage.translate.skipped"] == 1
        # The certificate was never cached, so generate still runs.
        assert inst.counters["stage.generate.runs"] == 1
        assert ctx.report.ok

    def test_stats_track_hits_and_misses(self):
        cache = ArtifactCache()
        run_pipeline(PROGRAM, cache=cache)
        run_pipeline(PROGRAM, cache=cache)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert len(cache) == 1


class TestEviction:
    def test_lru_eviction_is_bounded(self):
        cache = ArtifactCache(maxsize=1)
        run_pipeline(PROGRAM, cache=cache, upto="translate")
        run_pipeline(OTHER, cache=cache, upto="translate")
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # The first entry was evicted: re-running it misses.
        inst = PipelineInstrumentation()
        run_pipeline(PROGRAM, cache=cache, upto="translate", instrumentation=inst)
        assert inst.counters.get("cache.hit", 0) == 0

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactCache(maxsize=0)

    def test_clear_resets_entries_and_stats(self):
        cache = ArtifactCache()
        run_pipeline(PROGRAM, cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0
