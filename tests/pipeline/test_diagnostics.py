"""Structured diagnostics: stage attribution, locations, recovery hints."""

import pytest

from repro.pipeline import (
    Diagnostic,
    ParseError,
    PipelineError,
    run_pipeline,
    SourceLocation,
    TranslateError,
    TypecheckError,
    wrap_exception,
)
from repro.viper import ViperSyntaxError, ViperTypeError

GOOD = """
field f: Int
method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
{ x.f := 1 }
"""

SYNTAX_ERROR = "field f: Int\nmethod m( {"
TYPE_ERROR = """
field f: Int
method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
{ undeclared := 1 }
"""


class TestWrappedMode:
    def test_parse_failure_carries_stage_location_and_hint(self):
        with pytest.raises(ParseError) as excinfo:
            run_pipeline(SYNTAX_ERROR, wrap_errors=True)
        error = excinfo.value
        assert error.stage == "parse"
        assert error.location is not None and error.location.line == 2
        assert error.hint
        assert isinstance(error.diagnostic, Diagnostic)
        assert isinstance(error.__cause__, ViperSyntaxError)

    def test_typecheck_failure_is_a_typecheck_error(self):
        with pytest.raises(TypecheckError) as excinfo:
            run_pipeline(TYPE_ERROR, wrap_errors=True)
        assert excinfo.value.stage == "typecheck"
        assert isinstance(excinfo.value.__cause__, ViperTypeError)

    def test_all_pipeline_errors_share_the_base_class(self):
        with pytest.raises(PipelineError):
            run_pipeline(SYNTAX_ERROR, wrap_errors=True)

    def test_good_program_raises_nothing(self):
        assert run_pipeline(GOOD, wrap_errors=True).report.ok


class TestPassthroughMode:
    """Library callers keep seeing the substrate exception types."""

    def test_syntax_error_passes_through(self):
        import repro

        with pytest.raises(ViperSyntaxError):
            repro.translate_source(SYNTAX_ERROR)

    def test_type_error_passes_through(self):
        import repro

        with pytest.raises(ViperTypeError):
            repro.certify_source(TYPE_ERROR)


class TestDiagnosticRendering:
    def test_render_includes_stage_location_and_hint(self):
        diagnostic = Diagnostic(
            stage="parse",
            message="unexpected token",
            location=SourceLocation(3, 7),
            hint="fix the syntax",
        )
        rendered = diagnostic.render()
        assert "error[parse] at 3:7: unexpected token" in rendered
        assert "hint: fix the syntax" in rendered

    def test_location_str_without_column(self):
        assert str(SourceLocation(12)) == "12"
        assert str(SourceLocation(12, 4)) == "12:4"

    def test_wrap_exception_extracts_line_col_from_message(self):
        error = wrap_exception("typecheck", ViperTypeError("5:9: bad type"))
        assert isinstance(error, TypecheckError)
        assert error.location == SourceLocation(5, 9)

    def test_wrap_exception_defaults_for_unknown_stage(self):
        error = wrap_exception("mystery", ValueError("odd"))
        assert type(error) is PipelineError
        assert error.stage == "mystery"

    def test_translate_error_category(self):
        from repro.frontend import TranslationError

        error = wrap_exception("translate", TranslationError("unsupported"))
        assert isinstance(error, TranslateError)
        assert "subset" in error.hint
