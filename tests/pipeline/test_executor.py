"""Parallel corpus executor: determinism, ordering, serial fallback."""

import dataclasses

import pytest

from repro.harness import (
    render_detail_table,
    render_table1,
    run_files,
    suite_files,
)
from repro.pipeline import default_jobs, parallel_map, resolve_jobs
from repro.pipeline.executor import _FALLBACK_ERRORS


def _square(n):  # module-level: picklable for the process pool
    return n * n


def _fail_on_three(n):
    if n == 3:
        raise RuntimeError("boom")
    return n


class TestResolveJobs:
    def test_none_and_one_are_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_is_auto(self):
        assert resolve_jobs(0) == default_jobs()

    def test_negative_jobs_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-4)
        with pytest.raises(ValueError, match="got -1"):
            resolve_jobs(-1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(7) == 7


class TestBenchJobsEnv:
    """``REPRO_BENCH_JOBS`` handling in benchmarks/common.py."""

    @pytest.fixture()
    def bench_jobs(self):
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "common.py"
        spec = importlib.util.spec_from_file_location("bench_common_under_test", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.bench_jobs

    def test_unset_means_serial(self, bench_jobs, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert bench_jobs() == 1

    def test_zero_means_auto_consistently(self, bench_jobs, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        # 0 is passed through so the executor resolves it to one-per-CPU,
        # exactly like `repro --jobs 0`.
        assert bench_jobs() == 0
        assert resolve_jobs(bench_jobs()) == default_jobs()

    def test_explicit_count(self, bench_jobs, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
        assert bench_jobs() == 3

    def test_negative_and_garbage_fall_back_to_serial(self, bench_jobs, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "-2")
        assert bench_jobs() == 1
        monkeypatch.setenv("REPRO_BENCH_JOBS", "many")
        assert bench_jobs() == 1


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        items = list(range(25))
        assert parallel_map(_square, items, jobs=1) == parallel_map(
            _square, items, jobs=2
        )

    def test_results_preserve_input_order(self):
        items = list(range(40, 0, -1))
        assert parallel_map(_square, items, jobs=4) == [_square(i) for i in items]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=1)

    def test_unpicklable_worker_falls_back_to_serial(self):
        # A lambda cannot cross the process boundary; the executor must
        # degrade to in-process execution instead of failing.
        assert parallel_map(lambda n: n + 1, [1, 2, 3], jobs=2) == [2, 3, 4]

    def test_empty_and_singleton_inputs(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [3], jobs=4) == [9]

    def test_fallback_error_set_is_infrastructure_only(self):
        assert RuntimeError not in _FALLBACK_ERRORS
        assert OSError in _FALLBACK_ERRORS


def _zero_unit_cache(summary):
    """Zero the per-method stage timings inside a unit_cache summary."""
    if not summary:
        return summary
    cleaned = dict(summary)
    cleaned["methods"] = {
        name: {
            **info,
            "stages": {
                stage: {**record, "seconds": 0.0}
                for stage, record in info.get("stages", {}).items()
            },
        }
        for name, info in summary.get("methods", {}).items()
    }
    return cleaned


def _zero_timings(metrics):
    return [
        dataclasses.replace(
            m,
            translate_seconds=0.0,
            generate_seconds=0.0,
            check_seconds=0.0,
            analyze_seconds=0.0,
            total_seconds=0.0,
            cache_lookup_seconds=0.0,
            unit_cache=_zero_unit_cache(m.unit_cache),
        )
        for m in metrics
    ]


class TestHarnessDeterminism:
    """``bench --jobs N`` must render byte-identical tables to serial runs
    (timing fields aside, which are wall-clock by nature)."""

    @pytest.fixture(scope="class")
    def mpp_runs(self):
        files = suite_files("MPP")
        return run_files(files, jobs=None), run_files(files, jobs=2)

    def test_parallel_metrics_identical_to_serial(self, mpp_runs):
        serial, parallel = mpp_runs
        assert _zero_timings(serial) == _zero_timings(parallel)

    def test_detail_table_byte_identical(self, mpp_runs):
        serial, parallel = mpp_runs
        # The detail table prints check_seconds; compare with timings zeroed.
        assert render_detail_table(
            _zero_timings(serial), "MPP suite"
        ) == render_detail_table(_zero_timings(parallel), "MPP suite")

    def test_table1_byte_identical(self, mpp_runs):
        serial, parallel = mpp_runs
        assert render_table1({"MPP": _zero_timings(serial)}) == render_table1(
            {"MPP": _zero_timings(parallel)}
        )

    def test_auto_jobs_runs_the_suite(self):
        metrics = run_files(suite_files("MPP"), jobs=0)
        assert len(metrics) == 3
        assert all(m.certified for m in metrics)
