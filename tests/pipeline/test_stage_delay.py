"""The ``REPRO_STAGE_DELAY`` fault-injection shim (the perf-gate's lever)."""

from __future__ import annotations

from repro.pipeline import PipelineInstrumentation, run_pipeline

SOURCE = """
field f: Int

method id(x: Ref) returns (y: Int)
  requires acc(x.f)
  ensures acc(x.f)
{
  y := x.f
}
"""


def _translate_seconds(monkeypatch, value):
    if value is None:
        monkeypatch.delenv("REPRO_STAGE_DELAY", raising=False)
    else:
        monkeypatch.setenv("REPRO_STAGE_DELAY", value)
    inst = PipelineInstrumentation()
    run_pipeline(SOURCE, instrumentation=inst, analyze=False)
    return inst.stage_seconds("translate")


class TestStageDelay:
    def test_delay_is_booked_to_the_named_stage(self, monkeypatch):
        fast = _translate_seconds(monkeypatch, None)
        slow = _translate_seconds(monkeypatch, "translate=0.05")
        assert slow >= fast + 0.045

    def test_other_stages_are_unaffected(self, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE_DELAY", "translate=0.05")
        inst = PipelineInstrumentation()
        run_pipeline(SOURCE, instrumentation=inst, analyze=False)
        assert inst.stage_seconds("generate") < 0.045

    def test_malformed_values_are_ignored(self, monkeypatch):
        seconds = _translate_seconds(
            monkeypatch, "translate=banana,=0.5,check=-1,,"
        )
        assert seconds < 0.045

    def test_multiple_stages(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_STAGE_DELAY", "translate=0.02,generate=0.02"
        )
        inst = PipelineInstrumentation()
        run_pipeline(SOURCE, instrumentation=inst, analyze=False)
        assert inst.stage_seconds("translate") >= 0.018
        assert inst.stage_seconds("generate") >= 0.018
