"""Method compilation units: digests, dependency maps, and cache keys.

The invalidation contract under test is exactly the issue's acceptance
criterion (and the paper's C1/C2 dependency structure, Sec. 4.2):

* a callee **body** edit changes only the callee's key — every caller's
  key (and cached artifacts) survive;
* a callee **pre/post** edit changes its interface digest and therefore
  the key of the unit itself *and* of every transitive caller;
* **renaming** a method leaves former callers with an unresolvable
  callee, which the key records as a ``missing:`` marker — former
  callers are invalidated too.

End-to-end variants re-run the staged pipeline against a shared
:class:`ArtifactCache` and assert, via the instrumentation's
``unit_cache_summary``, which units were reused versus rebuilt.
"""

from __future__ import annotations

import pytest

from repro.frontend import TranslationOptions
from repro.pipeline import (
    ArtifactCache,
    body_digest,
    callers_of,
    extract_units,
    fields_digest,
    interface_digest,
    method_interface_text,
    options_digest,
    run_pipeline,
    transitive_callees,
    unit_cache_key,
    unit_keys,
)
from repro.viper import parse_program
from repro.viper.ast import DuplicateDeclarationError, Program

CHAIN = """
field f: Int

method leaf(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == 1
{
  x.f := 1
}

method mid(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write)
{
  leaf(x)
}

method top(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write)
{
  mid(x)
}

method bystander(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write)
{
  x.f := 3
}
"""

#: leaf body edit: same spec, different statement.
CHAIN_BODY_EDIT = CHAIN.replace("x.f := 1\n", "x.f := 0 + 1\n")

#: leaf spec edit: a strictly different postcondition.
CHAIN_SPEC_EDIT = CHAIN.replace(
    "ensures acc(x.f, write) && x.f == 1", "ensures acc(x.f, write) && x.f > 0"
)

#: leaf renamed: mid now calls a method that no longer exists.
CHAIN_RENAMED = CHAIN.replace("method leaf", "method foliage")


def units_for(source: str):
    # Raw parse (no typecheck): the rename variant deliberately leaves a
    # dangling call, which the typechecker would reject.  None of these
    # programs contain desugarable constructs, so the digests match what
    # the pipeline's units stage computes (proven below by the end-to-end
    # tests driving run_pipeline itself).
    program = parse_program(source)
    return program, extract_units(program)


def keys_for(source: str, options=None):
    program, units = units_for(source)
    return unit_keys(units, program, options or TranslationOptions())


class TestDigests:
    def test_interface_text_has_no_body(self):
        program, _ = units_for(CHAIN)
        text = method_interface_text(program.method("leaf"))
        assert "method leaf" in text
        assert "requires" in text and "ensures" in text
        assert ":=" not in text

    def test_whitespace_only_edit_changes_no_digest(self):
        _, before = units_for(CHAIN)
        _, after = units_for(CHAIN.replace("\n{\n", "\n\n{\n"))
        assert before == after

    def test_body_edit_changes_body_not_interface(self):
        program, _ = units_for(CHAIN)
        edited, _ = units_for(CHAIN_BODY_EDIT)
        assert body_digest(program.method("leaf")) != body_digest(
            edited.method("leaf")
        )
        assert interface_digest(program.method("leaf")) == interface_digest(
            edited.method("leaf")
        )

    def test_spec_edit_changes_both_digests(self):
        program, _ = units_for(CHAIN)
        edited, _ = units_for(CHAIN_SPEC_EDIT)
        assert body_digest(program.method("leaf")) != body_digest(
            edited.method("leaf")
        )
        assert interface_digest(program.method("leaf")) != interface_digest(
            edited.method("leaf")
        )


class TestDependencyMap:
    def test_direct_callees_are_recorded(self):
        _, units = units_for(CHAIN)
        assert units["top"].callees == ("mid",)
        assert units["mid"].callees == ("leaf",)
        assert units["leaf"].callees == ()
        assert units["bystander"].callees == ()

    def test_transitive_closure_and_callers(self):
        _, units = units_for(CHAIN)
        assert transitive_callees(units, "top") == {"mid", "leaf"}
        assert callers_of(units, "leaf") == {"mid", "top"}
        assert callers_of(units, "bystander") == frozenset()

    def test_dangling_callee_is_observable(self):
        _, units = units_for(CHAIN_RENAMED)
        assert "leaf" in transitive_callees(units, "top")
        assert "leaf" not in units


class TestUnitKeys:
    def test_callee_body_edit_invalidates_only_the_callee(self):
        before, after = keys_for(CHAIN), keys_for(CHAIN_BODY_EDIT)
        assert before["leaf"] != after["leaf"]
        for survivor in ("mid", "top", "bystander"):
            assert before[survivor] == after[survivor]

    def test_callee_spec_edit_invalidates_all_transitive_callers(self):
        before, after = keys_for(CHAIN), keys_for(CHAIN_SPEC_EDIT)
        for rebuilt in ("leaf", "mid", "top"):
            assert before[rebuilt] != after[rebuilt]
        assert before["bystander"] == after["bystander"]

    def test_rename_invalidates_former_callers(self):
        before, after = keys_for(CHAIN), keys_for(CHAIN_RENAMED)
        # mid and top both (transitively) depended on `leaf`; its
        # disappearance leaves a `missing:` marker in their keys.
        assert before["mid"] != after["mid"]
        assert before["top"] != after["top"]
        assert before["bystander"] == after["bystander"]

    def test_field_declarations_are_part_of_every_key(self):
        before = keys_for(CHAIN)
        after = keys_for(CHAIN.replace("field f: Int", "field f: Int\nfield g: Int"))
        for name in before:
            assert before[name] != after[name]

    def test_options_are_part_of_every_key(self):
        before = keys_for(CHAIN, TranslationOptions())
        after = keys_for(CHAIN, TranslationOptions(wd_checks_at_calls=True))
        for name in before:
            assert before[name] != after[name]

    def test_options_digest_default_matches_explicit_default(self):
        assert options_digest(None) == options_digest(TranslationOptions())

    def test_keys_are_deterministic_across_extractions(self):
        assert keys_for(CHAIN) == keys_for(CHAIN)


class TestProgramIndex:
    def test_duplicate_method_names_are_rejected(self):
        program, _ = units_for(CHAIN)
        twin = Program(
            fields=program.fields,
            methods=program.methods + (program.method("leaf"),),
        )
        with pytest.raises(DuplicateDeclarationError):
            twin.method("leaf")

    def test_method_lookup_is_by_name(self):
        program, _ = units_for(CHAIN)
        assert program.method("top").name == "top"
        assert program.has_method("mid")
        assert not program.has_method("nope")
        with pytest.raises(KeyError):
            program.method("nope")


def summary_of(source: str, cache: ArtifactCache):
    ctx = run_pipeline(source, cache=cache)
    assert ctx.report is not None and ctx.report.ok
    return ctx.instrumentation.unit_cache_summary()


class TestEndToEndIncrementality:
    """The acceptance criterion, driven through the real pipeline."""

    def test_body_edit_rebuilds_exactly_one_unit(self):
        cache = ArtifactCache()
        cold = summary_of(CHAIN, cache)
        assert sorted(cold["rebuilt_methods"]) == [
            "bystander", "leaf", "mid", "top",
        ]
        warm = summary_of(CHAIN_BODY_EDIT, cache)
        assert warm["rebuilt_methods"] == ["leaf"]
        assert sorted(warm["reused_methods"]) == ["bystander", "mid", "top"]

    def test_spec_edit_rebuilds_the_unit_and_its_callers(self):
        cache = ArtifactCache()
        summary_of(CHAIN, cache)
        warm = summary_of(CHAIN_SPEC_EDIT, cache)
        assert sorted(warm["rebuilt_methods"]) == ["leaf", "mid", "top"]
        assert warm["reused_methods"] == ["bystander"]

    def test_rename_rebuilds_former_callers(self):
        cache = ArtifactCache()
        summary_of(CHAIN, cache)
        # A *consistent* rename (call sites updated too) keeps the program
        # certifiable; the inconsistent variant's key churn is covered in
        # TestUnitKeys above.
        consistent = CHAIN_RENAMED.replace("leaf(x)", "foliage(x)")
        warm = summary_of(consistent, cache)
        assert sorted(warm["rebuilt_methods"]) == ["foliage", "mid", "top"]
        assert warm["reused_methods"] == ["bystander"]

    def test_identical_rerun_reuses_every_unit(self):
        cache = ArtifactCache()
        summary_of(CHAIN, cache)
        warm = summary_of(CHAIN, cache)
        assert warm["rebuilt"] == 0
        assert sorted(warm["reused_methods"]) == [
            "bystander", "leaf", "mid", "top",
        ]
        assert warm["tiers"] == {"memory": 4}

    def test_trusted_stages_run_fresh_on_every_request(self):
        cache = ArtifactCache()
        ctx = run_pipeline(CHAIN, cache=cache)
        warm = run_pipeline(CHAIN_BODY_EDIT, cache=cache)
        for trusted in ("reparse", "check"):
            record = next(
                r for r in warm.instrumentation.records if r.stage == trusted
            )
            assert not record.cached and not record.skipped
        assert warm.report is not None and warm.report.ok
