#!/usr/bin/env python3
"""Execute every ``console``-fenced command in the documentation.

Documentation rots when its examples stop running.  This tool makes the
docs executable: it scans markdown files for fenced blocks tagged
``console``, runs each ``$ ``-prefixed command in a per-file sandbox,
and asserts the exit codes — so a drifted flag, a renamed subcommand,
or a stale example fails CI (the ``docs-exec`` job) instead of a
reader.

Block grammar
-------------

A runnable block is a standard fence whose info string is ``console``::

    ```console
    $ repro certify demo.vpr --trace demo.trace.json
    wrote demo.trace.json (14 spans, trace …)
    ```

* Lines starting with ``$ `` are commands (run via ``sh -c``, so
  pipes, globs, and redirects work).  A trailing backslash continues
  the command on the next line.
* Every other line is illustrative output and is ignored.
* A command ending in `` &`` is started in the background (its own
  process group, killed when the file's run ends).

Directives ride in an HTML comment immediately above the fence —
invisible in rendered markdown::

    <!-- docs-exec: slow wait-port=8431 -->

| directive | meaning |
|---|---|
| ``skip`` | parse but never execute the block |
| ``slow`` | execute only when ``--slow`` is passed (CI does) |
| ``exit=N`` | every command in the block must exit with code N |
| ``expect-json`` | every command's stdout must parse as JSON |
| ``wait-port=P`` | after a background command, wait for 127.0.0.1:P |

Sandbox
-------

Each markdown *file* runs in its own fresh temp directory, seeded with
``demo.vpr`` (a known-good Viper program) and ``demo.json`` (the same
program as a ``/v1/certify`` body), with a ``repro`` shim on PATH that
invokes this checkout's CLI — so docs can write plain ``repro …``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import socket
import stat
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Seeded into every sandbox: a small lint-clean program that certifies.
DEMO_PROGRAM = """\
field f: Int

method inc(x: Ref) returns (y: Int)
  requires acc(x.f, write)
  ensures acc(x.f, write) && y == x.f
{
  x.f := x.f + 1
  y := x.f
}
"""

_DIRECTIVE = re.compile(r"<!--\s*docs-exec:\s*(?P<body>.*?)\s*-->\s*$")
_FENCE_OPEN = re.compile(r"^```console\s*$")
_FENCE_CLOSE = re.compile(r"^```\s*$")


@dataclass
class Block:
    """One ```console fence: its commands and its directives."""

    path: Path
    line: int
    commands: List[str] = field(default_factory=list)
    skip: bool = False
    slow: bool = False
    expect_json: bool = False
    expected_exit: int = 0
    wait_port: Optional[int] = None


def _parse_directives(block: Block, body: str) -> None:
    for token in body.split():
        if token == "skip":
            block.skip = True
        elif token == "slow":
            block.slow = True
        elif token == "expect-json":
            block.expect_json = True
        elif token.startswith("exit="):
            block.expected_exit = int(token.split("=", 1)[1])
        elif token.startswith("wait-port="):
            block.wait_port = int(token.split("=", 1)[1])
        else:
            raise ValueError(
                f"{block.path}:{block.line}: unknown docs-exec directive "
                f"{token!r}"
            )


def extract_blocks(path: Path) -> List[Block]:
    """Every ```console block in ``path``, with directives applied."""
    blocks: List[Block] = []
    pending_directive = ""
    in_fence = False
    current: Optional[Block] = None
    partial = ""
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if not in_fence:
            match = _DIRECTIVE.match(line.strip())
            if match:
                pending_directive = match.group("body")
                continue
            if _FENCE_OPEN.match(line.strip()):
                in_fence = True
                current = Block(path=path, line=number)
                _parse_directives(current, pending_directive)
                pending_directive = ""
            elif line.strip():
                pending_directive = ""
            continue
        assert current is not None
        if _FENCE_CLOSE.match(line.strip()):
            if partial:
                raise ValueError(
                    f"{path}:{number}: fence closed mid-continuation"
                )
            blocks.append(current)
            in_fence = False
            current = None
            continue
        if partial:
            partial += " " + line.strip().rstrip("\\").strip()
            if not line.rstrip().endswith("\\"):
                current.commands.append(partial)
                partial = ""
        elif line.startswith("$ "):
            text = line[2:].rstrip()
            if text.endswith("\\"):
                partial = text.rstrip("\\").strip()
            else:
                current.commands.append(text)
    if in_fence:
        raise ValueError(f"{path}: unterminated ```console fence")
    return blocks


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def _make_sandbox(base: Path) -> Dict[str, str]:
    """Seed a sandbox dir; returns the environment to run commands in."""
    (base / "demo.vpr").write_text(DEMO_PROGRAM)
    (base / "demo.json").write_text(json.dumps({"source": DEMO_PROGRAM}))
    bin_dir = base / ".bin"
    bin_dir.mkdir()
    shim = bin_dir / "repro"
    shim.write_text(
        "#!/bin/sh\n"
        f'exec "{sys.executable}" -m repro.cli "$@"\n'
    )
    shim.chmod(shim.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP | stat.S_IXOTH)
    env = dict(os.environ)
    env["PATH"] = f"{bin_dir}:{env.get('PATH', '')}"
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _wait_port(port: int, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.1)
    return False


def run_file(path: Path, blocks: List[Block], slow: bool) -> List[str]:
    """Run one file's blocks in a shared sandbox; returns failures."""
    failures: List[str] = []
    background: List[subprocess.Popen] = []
    sandbox = Path(tempfile.mkdtemp(prefix="docs-exec-"))
    env = _make_sandbox(sandbox)
    try:
        for block in blocks:
            where = f"{path.relative_to(REPO_ROOT)}:{block.line}"
            if block.skip:
                print(f"  SKIP {where} (skip)")
                continue
            if block.slow and not slow:
                print(f"  SKIP {where} (slow; rerun with --slow)")
                continue
            for command in block.commands:
                if command.rstrip().endswith("&"):
                    process = subprocess.Popen(
                        ["sh", "-c", command.rstrip().rstrip("&")],
                        cwd=sandbox, env=env, start_new_session=True,
                        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                    )
                    background.append(process)
                    if block.wait_port is not None:
                        if not _wait_port(block.wait_port):
                            failures.append(
                                f"{where}: `{command}` never opened port "
                                f"{block.wait_port}"
                            )
                            break
                    print(f"  OK   {where} $ {command} (background)")
                    continue
                result = subprocess.run(
                    ["sh", "-c", command], cwd=sandbox, env=env,
                    capture_output=True, text=True, timeout=300,
                )
                if result.returncode != block.expected_exit:
                    failures.append(
                        f"{where}: `{command}` exited "
                        f"{result.returncode}, expected {block.expected_exit}"
                        f"\n--- stdout ---\n{result.stdout[-2000:]}"
                        f"\n--- stderr ---\n{result.stderr[-2000:]}"
                    )
                    break
                if block.expect_json:
                    try:
                        json.loads(result.stdout)
                    except json.JSONDecodeError as error:
                        failures.append(
                            f"{where}: `{command}` stdout is not JSON "
                            f"({error})\n{result.stdout[-2000:]}"
                        )
                        break
                print(f"  OK   {where} $ {command}")
    finally:
        for process in background:
            try:
                os.killpg(process.pid, signal.SIGTERM)
            except OSError:
                pass
        for process in background:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                try:
                    os.killpg(process.pid, signal.SIGKILL)
                except OSError:
                    pass
        shutil.rmtree(sandbox, ignore_errors=True)
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run every ```console command in the docs"
    )
    parser.add_argument("files", nargs="*", type=Path,
                        help="markdown files (default: README.md + docs/*.md)")
    parser.add_argument("--slow", action="store_true",
                        help="also run blocks marked `slow` (CI does)")
    parser.add_argument("--list", action="store_true",
                        help="print the execution plan without running")
    args = parser.parse_args(argv)

    files = [f.resolve() for f in args.files] or default_files()
    plan = {path: extract_blocks(path) for path in files}
    total = sum(len(b.commands) for blocks in plan.values() for b in blocks)

    if args.list:
        for path, blocks in plan.items():
            for block in blocks:
                tags = [t for t, on in (("skip", block.skip),
                                        ("slow", block.slow),
                                        ("expect-json", block.expect_json))
                        if on]
                suffix = f" [{' '.join(tags)}]" if tags else ""
                print(f"{path.relative_to(REPO_ROOT)}:{block.line}{suffix}")
                for command in block.commands:
                    print(f"  $ {command}")
        print(f"{total} commands in {len(files)} files")
        return 0

    failures: List[str] = []
    for path, blocks in plan.items():
        if not blocks:
            continue
        print(f"{path.relative_to(REPO_ROOT)}:")
        failures.extend(run_file(path, blocks, slow=args.slow))
    if failures:
        print(f"\n{len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"\n{failure}", file=sys.stderr)
        return 1
    print(f"\ndocs-exec ok: {total} commands across {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
