"""Fig. 8 of the paper: the proof tree for an exhale simulation.

Shows the certificate the tactic builds for

    exhale acc(x.f, q) && y.g > x.f

— the decomposition into EXH-SIM (remcheck effect + nondeterministic heap
assignment), RC-SEP-SIM for the separating conjunction, and the two atomic
leaves (the permission-removal schema and the pure-assert schema), exactly
mirroring the structure of the paper's Fig. 8 — and then validates the
exhale schema *semantically* with the bounded simulation judgement
(the reproduction's analog of the once-and-for-all Isabelle lemmas).

Run:  python examples/exhale_certification.py
"""

from repro.boogie.ast import BoogieProgram, GlobalVarDecl
from repro.boogie.cursor import Cursor
from repro.boogie.semantics import BoogieContext
from repro.certification import certify_translation
from repro.certification.prooftree import ProofNode
from repro.certification.relations import boogie_state_for, SimRel
from repro.certification.simulation import (
    check_exhale_simulation,
    default_boogie_value,
    heap_havoc_hook,
    sample_viper_states,
)
from repro.frontend import translate_program
from repro.frontend.background import (
    build_background,
    constant_valuation,
    HEAP_TYPE,
    MASK_TYPE,
    standard_interpretation,
)
from repro.frontend.records import boogie_type_of
from repro.frontend.translator import _MethodTranslator, _StmtBuilder, TranslationOptions
from repro.viper import check_program, parse_assertion, parse_program, ViperContext

SOURCE = """
field f: Int
field g: Int

method fig8(x: Ref, y: Ref, q: Perm)
  requires acc(x.f, q) && acc(y.g, write) && q > none
  ensures true
{
  exhale acc(x.f, q) && y.g > x.f
}
"""


def print_tree(proof: ProofNode, indent: int = 0) -> None:
    params = ", ".join(f"{k}={v}" for k, v in proof.params if v is not None)
    print("  " * indent + proof.rule + (f"  [{params}]" if params else ""))
    for premise in proof.premises:
        print_tree(premise, indent + 1)


def show_proof_tree() -> None:
    program = parse_program(SOURCE)
    type_info = check_program(program)
    result = translate_program(program, type_info)
    certificate, report = certify_translation(result)
    assert report.ok, report.error
    method_cert = certificate.certificate_for("fig8")
    # METHOD-BODY-SIM(inhale pre, body, exhale post); the body is the
    # single exhale statement — Fig. 8's subject.
    exhale_proof = method_cert.body_proof.premises[1]
    print("Proof tree for `exhale acc(x.f, q) && y.g > x.f` (paper Fig. 8):\n")
    print_tree(exhale_proof)
    print("\nKernel verdict:", "ACCEPTED" if report.ok else "REJECTED")
    print(f"Rule applications checked for fig8: "
          f"{report.method_reports['fig8'].rules_checked}")


def semantic_validation() -> None:
    """Re-validate the exhale schema against both executable semantics."""
    program = parse_program(SOURCE)
    type_info = check_program(program)
    background = build_background(type_info.field_types)
    method = program.method("fig8")
    translator = _MethodTranslator(
        program, type_info, background, method, TranslationOptions()
    )
    assertion = parse_assertion("acc(x.f, q) && y.g > x.f")
    builder = _StmtBuilder()
    translator.trans_exhale(assertion, translator.record, True, builder)
    stmt = builder.build()

    var_types = {"H": HEAP_TYPE, "M": MASK_TYPE}
    var_types.update({c.name: c.typ for c in background.consts})
    for name, typ in type_info.methods["fig8"].var_types.items():
        var_types[translator.record.boogie_var(name)] = boogie_type_of(typ)
    var_types.update(dict(translator._extra_locals))
    ctx_b = BoogieContext(
        BoogieProgram(
            type_decls=background.type_decls,
            consts=background.consts,
            globals=(GlobalVarDecl("H", HEAP_TYPE), GlobalVarDecl("M", MASK_TYPE)),
            functions=background.functions,
            axioms=background.axioms,
        ),
        standard_interpretation(type_info.field_types),
        var_types,
    )
    ctx_b.havoc_hook = heap_havoc_hook(type_info.field_types)
    consts = constant_valuation(background)

    def boogie_state_of(sigma):
        extra = {
            name: default_boogie_value(typ) for name, typ in translator._extra_locals
        }
        return boogie_state_for(sigma, translator.record, consts, extra)

    states = sample_viper_states(
        type_info.methods["fig8"].var_types, type_info.field_types, 20, seed=3
    )
    verdict = check_exhale_simulation(
        assertion,
        ViperContext(program, type_info, "fig8"),
        states,
        boogie_state_of,
        Cursor.from_stmt(stmt),
        None,
        ctx_b,
        SimRel(translator.record),
    )
    print(f"semantic simulation check: ok={verdict.ok} "
          f"({verdict.checked_pairs} Viper executions co-checked)")
    assert verdict.ok, verdict.detail


if __name__ == "__main__":
    show_proof_tree()
    print("\nValidating the exhale schema semantically (Fig. 4 judgement)...")
    semantic_validation()
