"""Quickstart: translate a Viper program to Boogie and certify the run.

This walks the full pipeline of the paper:

1. parse + type-check a Viper program,
2. translate it to Boogie with the instrumented front-end (emitting hints),
3. generate a forward-simulation certificate from the hints (the tactic),
4. check the certificate *independently* with the trusted kernel,
5. print the resulting soundness theorem.

Run:  python examples/quickstart.py
"""

from repro.viper import check_program, parse_program
from repro.frontend import translate_program
from repro.certification import (
    certify_translation,
    render_program_certificate,
)
from repro.boogie import pretty_boogie_program

SOURCE = """
field balance: Int

method deposit(account: Ref, amount: Int)
  requires acc(account.balance, write) && amount > 0
  ensures acc(account.balance, write) && account.balance == amount
{
  account.balance := amount
}

method audit(account: Ref) returns (snapshot: Int)
  requires acc(account.balance, 1/2)
  ensures acc(account.balance, 1/2) && snapshot == account.balance
{
  snapshot := account.balance
}

method client(a: Ref) returns (seen: Int)
  requires acc(a.balance, write)
  ensures acc(a.balance, write)
{
  var five: Int
  five := 5
  deposit(a, five)
  seen := audit(a)
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    type_info = check_program(program)
    print(f"Parsed {len(program.methods)} methods over {len(program.fields)} fields.")

    result = translate_program(program, type_info)
    boogie_text = pretty_boogie_program(result.boogie_program)
    print(f"\nTranslated to Boogie: {len(boogie_text.splitlines())} lines, "
          f"{len(result.boogie_program.procedures)} procedures.")
    print("--- Boogie excerpt " + "-" * 40)
    print("\n".join(boogie_text.splitlines()[:16]))
    print("...")

    certificate, report = certify_translation(result)
    cert_text = render_program_certificate(certificate)
    print(f"\nGenerated certificate: {len(cert_text.splitlines())} lines, "
          f"{certificate.size()} rule applications.")
    print("--- certificate excerpt " + "-" * 36)
    print("\n".join(cert_text.splitlines()[:14]))
    print("...")

    print("\nKernel verdict:", "ACCEPTED" if report.ok else f"REJECTED: {report.error}")
    for method, method_report in report.method_reports.items():
        deps = ", ".join(method_report.dependencies) or "none"
        print(f"  {method}: {method_report.rules_checked} rules checked, "
              f"non-local dependencies: {deps}")
    print()
    print(report.statement())


if __name__ == "__main__":
    main()
