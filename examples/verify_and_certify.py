"""End-to-end: back-end verification + translation certification + oracle.

A translational verifier has two soundness conditions (Sec. 1):

* *front-end soundness* — certified here per run by the kernel, and
* *IVL back-end soundness* — played by the bounded prover in this
  reproduction.

This example runs both on a correct and an incorrect method, and finishes
with the differential oracle re-validating the failure direction of the
simulation semantically.  Note how the incorrect method is *refuted* by the
back-end while its translation still *certifies* — certification is about
the translation, not the program.

Run:  python examples/verify_and_certify.py
"""

from repro.boogie import Verdict, verify_procedure_bounded
from repro.certification import certify_translation
from repro.certification.oracle import validate_program_semantically
from repro.frontend import procedure_name, translate_program
from repro.frontend.background import constant_valuation, standard_interpretation
from repro.viper import check_program, parse_program
from repro.viper.wellformed import check_program_correct_bounded

SOURCE = """
field item: Int

method store_ok(box: Ref, value: Int)
  requires acc(box.item, write) && value >= 0
  ensures acc(box.item, write) && box.item == value
{
  box.item := value
}

method store_wrong(box: Ref, value: Int)
  requires acc(box.item, write)
  ensures acc(box.item, write) && box.item == value
{
  box.item := value + 1
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    type_info = check_program(program)
    result = translate_program(program, type_info)

    # 1. Front-end soundness: per-run certification.
    certificate, report = certify_translation(result)
    print("Front-end certification:", "ACCEPTED" if report.ok else "REJECTED")

    # 2. Back-end verification (bounded prover on the Boogie side).
    interp = standard_interpretation(type_info.field_types)
    consts = constant_valuation(result.background)
    print("\nBack-end verdicts (bounded model checking of the procedures):")
    for method in program.methods:
        proc = result.boogie_program.procedure(procedure_name(method.name))
        verdict = verify_procedure_bounded(
            result.boogie_program, proc, interp, fixed=consts
        )
        print(f"  {method.name}: {verdict.verdict}"
              + (f"  (counterexample over {len(verdict.counterexample)} vars)"
                 if verdict.verdict is Verdict.REFUTED else ""))

    # 3. Ground truth: the Viper semantics' own bounded correctness check.
    print("\nViper-side ground truth (bounded Fig. 9 correctness):")
    for name, viper_verdict in check_program_correct_bounded(program, type_info).items():
        print(f"  {name}: {'correct' if viper_verdict.ok else 'INCORRECT'}")

    # The soundness theorem in action: refuted on the Boogie side exactly
    # where the Viper semantics fails — the simulation preserves failures.
    print("\nSemantic oracle (failure-direction co-execution):")
    for verdict in validate_program_semantically(result, max_states_per_method=12):
        print(f"  {verdict.method}: ok={verdict.ok}, "
              f"{verdict.viper_failures} failing Viper states matched by "
              f"failing Boogie executions")


if __name__ == "__main__":
    main()
