"""Capstone example: a small bank, verified and certified end to end.

Combines every supported feature — allocation, fractional permissions,
method calls with hoisted arguments, loops with invariants, and
old-expressions — and runs the complete toolchain on it:

1. the extension passes desugar `new`, `old`, loops, and complex call
   arguments into the paper's core subset,
2. the front-end translates to Boogie, emitting hints,
3. the tactic generates a forward-simulation certificate,
4. the trusted kernel checks it independently,
5. the bounded back-end verifies the procedures,
6. the semantic oracle co-executes both semantics.

Run:  python examples/certified_bank.py
"""

import repro
from repro.boogie import verify_procedure_bounded
from repro.certification import certify_translation
from repro.certification.oracle import validate_program_semantically
from repro.frontend import procedure_name
from repro.frontend.background import constant_valuation, standard_interpretation

BANK = """
field balance: Int

method open_account(initial: Int) returns (acct: Ref)
  requires initial >= 0
  ensures acc(acct.balance, write) && acct.balance == initial
{
  acct := new(balance)
  acct.balance := initial
}

method deposit(acct: Ref, amount: Int)
  requires acc(acct.balance, write) && amount > 0
  ensures acc(acct.balance, write)
  ensures acct.balance == old(acct.balance) + amount
{
  acct.balance := acct.balance + amount
}

method balance_of(acct: Ref) returns (seen: Int)
  requires acc(acct.balance, 1/2)
  ensures acc(acct.balance, 1/2) && seen == acct.balance
{
  seen := acct.balance
}

method save_monthly(acct: Ref, months: Int, rate: Int)
  requires acc(acct.balance, write) && months >= 0 && rate > 0
  ensures acc(acct.balance, write)
  ensures acct.balance >= old(acct.balance)
{
  var m: Int
  m := 0
  while (m < months)
    invariant acc(acct.balance, write) && m >= 0
    invariant acct.balance >= old(acct.balance)
  {
    deposit(acct, rate + 0)
    m := m + 1
  }
}

method audit_pair(a: Ref, b: Ref) returns (total: Int)
  requires acc(a.balance, 1/2) && acc(b.balance, 1/2) && a != b
  ensures acc(a.balance, 1/2) && acc(b.balance, 1/2)
{
  var left: Int
  var right: Int
  left := balance_of(a)
  right := balance_of(b)
  total := left + right
  assert total == a.balance + b.balance
}
"""


def main() -> None:
    result = repro.translate_source(BANK)
    methods = [m.name for m in result.viper_program.methods]
    print(f"Methods: {', '.join(methods)}")
    print("(new/old/loops/call-arguments were desugared into the core "
          "subset before translation)\n")

    certificate, report = certify_translation(result)
    print("Front-end certification:", "ACCEPTED" if report.ok else "REJECTED")
    for name, method_report in report.method_reports.items():
        deps = ", ".join(method_report.dependencies) or "-"
        print(f"  {name:<14} rules={method_report.rules_checked:<4} "
              f"non-local deps: {deps}")

    interp = standard_interpretation(result.type_info.field_types)
    consts = constant_valuation(result.background)
    print("\nBack-end verdicts (bounded; exhaustive exploration is "
          "exponential in havocs, so the loop- and call-heavy methods are "
          "left to certification + oracle):")
    for name in ("open_account", "deposit", "balance_of"):
        proc = result.boogie_program.procedure(procedure_name(name))
        verdict = verify_procedure_bounded(
            result.boogie_program, proc, interp, fixed=consts
        )
        print(f"  {name:<14} {verdict.verdict}")

    print("\nSemantic oracle:")
    for verdict in validate_program_semantically(result, max_states_per_method=6):
        note = f" [{verdict.detail}]" if verdict.detail else ""
        print(f"  {verdict.method:<14} ok={verdict.ok} "
              f"(failing Viper states matched: {verdict.viper_failures}){note}")

    print()
    print(report.statement())


if __name__ == "__main__":
    main()
