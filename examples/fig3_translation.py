"""Fig. 3 of the paper: a Viper statement and its Boogie translation.

The paper's running example is the sequence

    inhale acc(x.f, q)
    y.g := x.f + 1
    exhale acc(x.f, q) && y.g > x.f

whose Boogie encoding exhibits the whole semantic gap: mask updates through
``updMask``, ``GoodMask`` consistency assumptions, the ``WM`` snapshot
giving the remcheck its separate expression-evaluation state, and the
``havoc``/``idOnPositive`` encoding of the nondeterministic heap
assignment.  This example prints both sides next to each other.

Run:  python examples/fig3_translation.py
"""

from repro.viper import check_program, parse_program
from repro.frontend import translate_program
from repro.boogie.pretty import pretty_stmt

SOURCE = """
field f: Int
field g: Int

method fig3(x: Ref, y: Ref, q: Perm)
  requires acc(y.g, write) && acc(x.f, 1/2) && q > none && q < 1/2
  ensures acc(y.g, write) && acc(x.f, 1/2)
{
  inhale acc(x.f, q)
  y.g := x.f + 1
  exhale acc(x.f, q) && y.g > x.f
  exhale acc(x.f, q)
  inhale acc(x.f, q) && acc(x.f, q)
}
"""

VIPER_SNIPPET = [
    "inhale acc(x.f, q)",
    "y.g := x.f + 1",
    "exhale acc(x.f, q) && y.g > x.f",
]


def main() -> None:
    program = parse_program(SOURCE)
    type_info = check_program(program)
    result = translate_program(program, type_info)
    proc = result.boogie_program.procedure("m_fig3")

    print("Viper statement (paper Fig. 3, left):")
    for line in VIPER_SNIPPET:
        print("   ", line)

    # The body section (C2) starts after the init commands and the
    # nondeterministic well-formedness branch: body blocks from index 1.
    print("\nBoogie translation (paper Fig. 3, right), C2 section:")
    body_after_wf = proc.body[1:]
    text = pretty_stmt(body_after_wf, indent=1)
    print(text)

    boogie_lines = len(text.splitlines())
    print(f"\nViper: {len(VIPER_SNIPPET) + 2} lines -> Boogie: {boogie_lines} lines "
          f"(the \"explosion in concerns\" of Sec. 2.4)")

    hint = result.methods["fig3"].hint
    print("\nInstrumentation hints emitted for the exhale "
          "(kind 1: variant selection; kind 2: auxiliary variables):")
    body_hint = hint.body
    # The body is a Seq tree; walk to the exhale hint.
    from repro.frontend.hints import ExhaleHint, SeqHint

    def find_exhales(h):
        if isinstance(h, ExhaleHint):
            yield h
        if isinstance(h, SeqHint):
            yield from find_exhales(h.first)
            yield from find_exhales(h.second)

    for index, exhale_hint in enumerate(find_exhales(body_hint)):
        print(f"  exhale #{index}: wd checks emitted: {exhale_hint.with_wd_checks}, "
              f"WM variable: {exhale_hint.wd_mask_var}, "
              f"havoc heap variable: {exhale_hint.havoc_heap_var}")


if __name__ == "__main__":
    main()
