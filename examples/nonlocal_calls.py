"""Non-local checks at method calls (Sec. 4.2 of the paper).

The optimised Viper-to-Boogie translation omits well-definedness checks
when exhaling a callee's precondition: the callee's own procedure already
checks that its specification is well-formed.  This example shows

* the dependency the certificate records for each call (the formal
  counterpart of the non-local justification),
* the size difference against the unoptimised translation, and
* what the well-formedness check is protecting: a method whose
  precondition is *ill-formed* fails its own C1 obligation under the
  bounded back-end, so call sites may rely on it.

Run:  python examples/nonlocal_calls.py
"""

from repro.boogie import verify_procedure_bounded
from repro.boogie.pretty import pretty_boogie_program
from repro.certification import certify_translation
from repro.frontend import translate_program, TranslationOptions
from repro.frontend.background import constant_valuation, standard_interpretation
from repro.viper import check_program, parse_program
from repro.viper.pretty import count_loc

SOURCE = """
field val: Int

method read_half(cell: Ref) returns (seen: Int)
  requires acc(cell.val, 1/2) && cell.val >= 0
  ensures acc(cell.val, 1/2) && seen == cell.val
{
  seen := cell.val
}

method writer(cell: Ref)
  requires acc(cell.val, write)
  ensures acc(cell.val, write)
{
  var got: Int
  cell.val := 7
  got := read_half(cell)
  got := read_half(cell)
  assert got == got
}
"""

# A method whose precondition reads the heap *before* gaining permission —
# exactly what the well-formedness check rejects.
ILL_FORMED = """
field val: Int

method bad_spec(cell: Ref)
  requires cell.val > 0 && acc(cell.val, 1/2)
  ensures acc(cell.val, 1/2)
{
  assert true
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    type_info = check_program(program)

    optimised = translate_program(program, type_info)
    unoptimised = translate_program(
        program, type_info, TranslationOptions(wd_checks_at_calls=True)
    )
    opt_loc = count_loc(pretty_boogie_program(optimised.boogie_program))
    unopt_loc = count_loc(pretty_boogie_program(unoptimised.boogie_program))
    print("Boogie size with the non-local optimisation :", opt_loc, "LoC")
    print("Boogie size with wd checks at every call    :", unopt_loc, "LoC")

    certificate, report = certify_translation(optimised)
    assert report.ok, report.error
    print("\nCertified. Non-local dependencies recorded per method:")
    for method, method_report in report.method_reports.items():
        deps = ", ".join(method_report.dependencies) or "(none)"
        print(f"  {method}: {deps}")
    print("\nThe `writer -> read_half` dependency is discharged by "
          "read_half's own C1 (spec well-formedness) section — the Fig. 10 "
          "composition.")

    # Show what C1 protects: an ill-formed spec fails its own procedure.
    bad_program = parse_program(ILL_FORMED)
    bad_info = check_program(bad_program)
    bad_result = translate_program(bad_program, bad_info)
    cert2, report2 = certify_translation(bad_result)
    print("\nIll-formed-spec program still *certifies* (the translation is "
          "faithful):", report2.ok)
    interp = standard_interpretation(bad_info.field_types)
    consts = constant_valuation(bad_result.background)
    proc = bad_result.boogie_program.procedure("m_bad_spec")
    verdict = verify_procedure_bounded(bad_result.boogie_program, proc, interp, fixed=consts)
    print("Back-end verdict on its procedure (C1 section must fail):", verdict.verdict)


if __name__ == "__main__":
    main()
