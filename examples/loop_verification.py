"""Loops via invariant desugaring — the paper's "straightforward" extension.

Sec. 2.1 of the paper notes that loop support "is straightforward: their
semantics can be desugared via their invariant, in a pattern similar to
method calls that we already support".  This example implements the claim:
a `while` loop is rewritten into the core subset (exhale the invariant,
havoc the targets, inhale the invariant, verify one arbitrary iteration,
continue from an arbitrary exit state) and the unchanged pipeline —
translation, certification, kernel — handles the result.

Run:  python examples/loop_verification.py
"""

import repro
from repro.viper import (
    check_program,
    desugar_loops,
    parse_program,
    pretty_program,
)
from repro.viper.wellformed import check_method_correct_bounded

SOURCE = """
field counter: Int

method count_to(cell: Ref, limit: Int)
  requires acc(cell.counter, write) && limit >= 0
  ensures acc(cell.counter, write) && cell.counter >= 0
{
  var i: Int
  i := 0
  cell.counter := 0
  while (i < limit)
    invariant acc(cell.counter, write) && cell.counter >= 0 && i >= 0
  {
    cell.counter := cell.counter + 1
    i := i + 1
  }
}

method forgets_invariant(cell: Ref, limit: Int)
  requires acc(cell.counter, write) && limit >= 0
  ensures acc(cell.counter, write)
{
  var i: Int
  i := 0
  while (i < limit)
    invariant acc(cell.counter, write)
  {
    cell.counter := 0 - 1
    i := i + 1
  }
  assert cell.counter >= 0
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    desugared = desugar_loops(program)
    info = check_program(desugared)

    print("Desugared program (loops rewritten via their invariants):\n")
    print(pretty_program(desugared))

    print("Viper-side bounded verdicts (Fig. 9 correctness):")
    for method in desugared.methods:
        verdict = check_method_correct_bounded(desugared, info, method.name)
        status = "correct" if verdict.ok else f"INCORRECT ({verdict.reason})"
        print(f"  {method.name}: {status}")
    print("\n(`forgets_invariant` fails: after the loop only the invariant "
          "is known, and it says nothing about the counter's sign.)")

    report = repro.certify_source(SOURCE)
    print("\nCertification of the translation (both methods, including the "
          "incorrect one):", "ACCEPTED" if report.ok else "REJECTED")
    print(report.statement())


if __name__ == "__main__":
    main()
