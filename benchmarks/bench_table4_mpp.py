"""Table 4: per-file detail for the MPP suite (App. D).

Reproduces the per-file rows of the paper's Tab. 4: methods, Viper LoC,
Boogie LoC, certificate LoC, and check time for every MPP-style file.
The benchmarked operation is the full pipeline over the suite.
"""

from repro.harness import render_detail_table, run_files, suite_files

from common import emit


def test_table4_mpp(benchmark):
    files = suite_files("MPP")
    metrics = benchmark.pedantic(run_files, args=(files,), rounds=1, iterations=1)
    emit("table4_mpp", render_detail_table(metrics, "Table 4: MPP suite"))
    assert len(metrics) == 3
    assert sum(m.methods for m in metrics) == 13
    assert all(m.certified for m in metrics), [m.name for m in metrics if not m.certified]
