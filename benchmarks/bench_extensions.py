"""Extension bench: loops and old-expressions through the full pipeline.

Not a paper table — the paper's subset excludes loops and old-expressions
(its evaluation manually removed them).  This bench measures what the two
extension desugarings (repro.viper.loops / repro.viper.oldexprs) cost and
confirms certification over a batch of extension-using programs.
"""

import random

import repro
from repro.viper import count_loc

from common import emit


def _extension_program(index: int) -> str:
    rng = random.Random(index)
    bound = rng.randint(1, 5)
    delta = rng.randint(1, 3)
    return f"""
field f: Int

method step{index}(x: Ref)
  requires acc(x.f, write)
  ensures acc(x.f, write) && x.f == old(x.f) + {delta}
{{
  x.f := x.f + {delta}
}}

method run{index}(x: Ref, n: Int)
  requires acc(x.f, write) && n >= 0
  ensures acc(x.f, write) && x.f >= old(x.f)
{{
  var i: Int
  i := 0
  inhale x.f >= 0
  while (i < n)
    invariant acc(x.f, write) && i >= 0 && x.f >= old(x.f)
  {{
    step{index}(x)
    if (x.f > {bound}) {{
      i := i + 1
    }} else {{
      i := i + 2
    }}
  }}
}}
"""


def _run_batch():
    rows = []
    for index in range(8):
        source = _extension_program(index)
        report = repro.certify_source(source)
        rows.append((index, count_loc(source), report.ok, report.check_seconds))
    return rows


def test_extensions_certify(benchmark):
    rows = benchmark.pedantic(_run_batch, rounds=1, iterations=1)
    lines = [
        "Extensions: loops + old-expressions through the full pipeline",
        f"{'program':>8} | {'Viper LoC':>9} | {'certified':>9} | {'check [ms]':>10}",
        "-" * 46,
    ]
    for index, loc, ok, seconds in rows:
        lines.append(
            f"{index:>8} | {loc:>9} | {'yes' if ok else 'NO':>9} | {seconds * 1000:>10.2f}"
        )
    emit("extensions", "\n".join(lines))
    assert all(ok for _, _, ok, _ in rows)
