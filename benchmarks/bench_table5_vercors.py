"""Table 5: per-file detail for the VerCors suite (App. D).

Reproduces the per-file rows of the paper's Tab. 5: methods, Viper LoC,
Boogie LoC, certificate LoC, and check time for every VerCors-style file.
The benchmarked operation is the full pipeline over the suite.
"""

from repro.harness import render_detail_table, run_files, suite_files

from common import emit


def test_table5_vercors(benchmark):
    files = suite_files("VerCors")
    metrics = benchmark.pedantic(run_files, args=(files,), rounds=1, iterations=1)
    emit("table5_vercors", render_detail_table(metrics, "Table 5: VerCors suite"))
    assert len(metrics) == 18
    assert sum(m.methods for m in metrics) == 116
    assert all(m.certified for m in metrics), [m.name for m in metrics if not m.certified]
