"""Table 1: per-suite overview of the evaluation (Sec. 5).

Reproduces, for the synthesised 72-file corpus, the columns of the paper's
Tab. 1: files, methods, mean Viper/Boogie/certificate LoC, and mean/median
certificate-check times.  The benchmarked operation is the full pipeline
over the complete corpus (translate + generate + independently check).

Shape targets (paper values in parentheses): 72 files (72), 299 methods
(299), Boogie/Viper blow-up of several times (6.2×), every certificate
checks (all 72 proofs check), MPP the largest per-file suite.
"""

from repro.harness import (
    aggregate_overall,
    blowup_factor,
    full_corpus,
    render_table1,
    run_files,
)

from common import bench_jobs, emit, emit_json


def _pipeline_once():
    return {
        suite: run_files(files, jobs=bench_jobs())
        for suite, files in full_corpus().items()
    }


def test_table1_overview(benchmark):
    per_suite = benchmark.pedantic(_pipeline_once, rounds=1, iterations=1)
    emit("table1_overview", render_table1(per_suite))
    emit_json("table1_overview", per_suite)
    overall = aggregate_overall(per_suite)
    assert overall.files == 72
    assert overall.methods == 299
    assert overall.all_certified, "RQ1: every certificate must check"
    factor = blowup_factor(per_suite)
    emit(
        "table1_blowup",
        f"Boogie/Viper LoC blow-up: {factor:.1f}x (paper reports 6.2x)",
    )
    assert 3.0 <= factor <= 9.0
