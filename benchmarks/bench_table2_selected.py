"""Table 2: detailed results for the paper's selected files.

The selection matches Sec. 5: the largest file of each of the Viper, Gobra
and VerCors suites plus all three MPP files.  The benchmarked operation is
the pipeline over exactly these six files.
"""

from repro.harness import full_corpus, render_detail_table, run_files, TABLE2_SELECTION

from common import emit


def _selected_files():
    corpus = full_corpus()
    selected = []
    for suite, name in TABLE2_SELECTION:
        selected.append(next(f for f in corpus[suite] if f.name == name))
    return selected


def test_table2_selected(benchmark):
    files = _selected_files()
    metrics = benchmark.pedantic(run_files, args=(files,), rounds=1, iterations=1)
    emit("table2_selected", render_detail_table(metrics, "Table 2: selected files"))
    assert all(m.certified for m in metrics)
    by_name = {m.name: m for m in metrics}
    # banerjee is the largest input and must produce the largest certificate
    # of the selection (it is the paper's slowest file).
    assert by_name["banerjee"].cert_loc == max(m.cert_loc for m in metrics)
    assert by_name["banerjee"].methods == 8
    assert by_name["darvas"].methods == 2
    assert by_name["kusters"].methods == 3
