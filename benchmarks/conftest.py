"""Make the benchmarks directory importable (for the shared `common` module)."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
