"""Table 6: per-file detail for the Viper suite (App. D).

Reproduces the per-file rows of the paper's Tab. 6: methods, Viper LoC,
Boogie LoC, certificate LoC, and check time for every Viper-style file.
The benchmarked operation is the full pipeline over the suite.
"""

from repro.harness import render_detail_table, run_files, suite_files

from common import emit


def test_table6_viper(benchmark):
    files = suite_files("Viper")
    metrics = benchmark.pedantic(run_files, args=(files,), rounds=1, iterations=1)
    emit("table6_viper", render_detail_table(metrics, "Table 6: Viper suite"))
    assert len(metrics) == 34
    assert sum(m.methods for m in metrics) == 105
    assert all(m.certified for m in metrics), [m.name for m in metrics if not m.certified]
