"""Scaling series: certificate size and check time vs. program size.

The paper reports (RQ2) that proof checking stays within CI-friendly
bounds and notes the overhead is proportional to program features.  This
benchmark generates a series of programs of increasing size and prints the
(Viper LoC, Boogie LoC, certificate LoC, check time) series — the data
behind the claim that check time scales with certificate size.
"""

from repro.harness import generate_file, run_file

from common import emit

SIZES = [(10, 1), (30, 3), (60, 5), (120, 8), (240, 12), (420, 16)]


def _run_series():
    rows = []
    for loc, methods in SIZES:
        corpus_file = generate_file("Viper", f"scale-{loc}", loc, methods)
        rows.append(run_file(corpus_file))
    return rows


def test_scaling_series(benchmark):
    rows = benchmark.pedantic(_run_series, rounds=1, iterations=1)
    lines = [
        "Scaling: check time vs. program size (synthetic series)",
        f"{'Viper LoC':>10} | {'Boogie LoC':>10} | {'cert LoC':>9} | {'check [ms]':>10}",
        "-" * 50,
    ]
    for row in rows:
        lines.append(
            f"{row.viper_loc:>10} | {row.boogie_loc:>10} | {row.cert_loc:>9} | "
            f"{row.check_seconds * 1000:>10.2f}"
        )
    emit("scaling_series", "\n".join(lines))
    assert all(row.certified for row in rows)
    # Monotone shape: the largest program has the largest certificate and
    # takes longer to check than the smallest.
    assert rows[-1].cert_loc > rows[0].cert_loc
    assert rows[-1].check_seconds > rows[0].check_seconds
