"""Shared plumbing for the benchmark harness.

Each benchmark regenerates one of the paper's tables (Tab. 1–6) or runs an
ablation.  Results are printed to stdout (run pytest with ``-s`` to see
them live) and written to ``benchmarks/results/``.

The corpus fan-out goes through the pipeline's parallel executor
(:mod:`repro.pipeline.executor`).  It defaults to serial execution so
per-file timings stay comparable with the paper's single-threaded numbers;
set ``REPRO_BENCH_JOBS=0`` (auto) or ``=N`` to parallelise — the executor
preserves input order, so tables are identical either way (timings aside).
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
from typing import Dict, List

from repro.harness import (
    bench_report,
    FileMetrics,
    full_corpus,
    run_files,
    suite_files,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_jobs() -> int:
    """Worker count for corpus fan-out (``REPRO_BENCH_JOBS``; default serial).

    ``REPRO_BENCH_JOBS=0`` means "auto" (one worker per CPU), matching
    ``repro --jobs 0`` and :func:`repro.pipeline.executor.resolve_jobs`.
    Unset/empty means serial; malformed or negative values fall back to
    serial instead of crashing a long benchmark run.
    """
    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    if jobs < 0:
        return 1
    return jobs


@functools.lru_cache(maxsize=None)
def corpus_metrics(suite: str) -> tuple:
    """Metrics for one suite, computed once per benchmark session."""
    return tuple(run_files(suite_files(suite), jobs=bench_jobs()))


def all_suite_metrics() -> Dict[str, List[FileMetrics]]:
    return {suite: list(corpus_metrics(suite)) for suite in full_corpus()}


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, per_suite: Dict[str, List[FileMetrics]]) -> None:
    """Persist machine-readable metrics next to the text tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = bench_report(per_suite, jobs=bench_jobs())
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2) + "\n")
