"""Shared plumbing for the benchmark harness.

Each benchmark regenerates one of the paper's tables (Tab. 1–6) or runs an
ablation.  Results are printed to stdout (run pytest with ``-s`` to see
them live) and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import pathlib
from typing import Dict, List

from repro.harness import (
    FileMetrics,
    full_corpus,
    run_files,
    suite_files,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@functools.lru_cache(maxsize=None)
def corpus_metrics(suite: str) -> tuple:
    """Metrics for one suite, computed once per benchmark session."""
    return tuple(run_files(suite_files(suite)))


def all_suite_metrics() -> Dict[str, List[FileMetrics]]:
    return {suite: list(corpus_metrics(suite)) for suite in full_corpus()}


def emit(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
