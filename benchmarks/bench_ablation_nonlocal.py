"""Ablation: the non-local well-definedness-check optimisation (Sec. 4.2).

The optimised translation omits well-definedness checks when exhaling a
callee precondition (justified non-locally by the callee's C1 section);
the unoptimised variant emits them at every call site.  This benchmark
quantifies what the optimisation buys on a call-heavy corpus slice:
generated Boogie size, certificate size, and certificate-check time —
and verifies that both variants certify (the diverse-translations claim).
"""

import statistics

from repro.frontend import TranslationOptions
from repro.harness import run_files, suite_files

from common import emit


def _call_heavy_files():
    # Gobra-style files contain the most caller methods.
    return suite_files("Gobra")


def _run(options):
    return run_files(_call_heavy_files(), options)


def test_ablation_nonlocal_optimisation(benchmark):
    optimised = benchmark.pedantic(
        _run, args=(TranslationOptions(wd_checks_at_calls=False),), rounds=1, iterations=1
    )
    unoptimised = _run(TranslationOptions(wd_checks_at_calls=True))
    assert all(m.certified for m in optimised)
    assert all(m.certified for m in unoptimised)
    rows = [
        "Ablation: wd checks at call sites (Gobra-style slice, 17 files)",
        f"{'variant':>22} | {'Boogie LoC':>10} | {'cert LoC':>9} | {'check mean [s]':>14}",
        "-" * 66,
    ]
    for label, metrics in (("omitted (optimised)", optimised), ("emitted (ablation)", unoptimised)):
        rows.append(
            f"{label:>22} | {sum(m.boogie_loc for m in metrics):>10} | "
            f"{sum(m.cert_loc for m in metrics):>9} | "
            f"{statistics.mean(m.check_seconds for m in metrics):>14.4f}"
        )
    emit("ablation_nonlocal", "\n".join(rows))
    # The optimisation must not make the generated code larger.
    assert sum(m.boogie_loc for m in optimised) <= sum(
        m.boogie_loc for m in unoptimised
    )
