"""Table 3: per-file detail for the Gobra suite (App. D).

Reproduces the per-file rows of the paper's Tab. 3: methods, Viper LoC,
Boogie LoC, certificate LoC, and check time for every Gobra-style file.
The benchmarked operation is the full pipeline over the suite.
"""

from repro.harness import render_detail_table, run_files, suite_files

from common import emit


def test_table3_gobra(benchmark):
    files = suite_files("Gobra")
    metrics = benchmark.pedantic(run_files, args=(files,), rounds=1, iterations=1)
    emit("table3_gobra", render_detail_table(metrics, "Table 3: Gobra suite"))
    assert len(metrics) == 17
    assert sum(m.methods for m in metrics) == 65
    assert all(m.certified for m in metrics), [m.name for m in metrics if not m.certified]
