"""Ablations: pipeline stage costs and the permission-literal fast path.

Two measurements the paper discusses qualitatively:

* the cost split between translation, proof generation, and (trusted)
  proof checking — the paper notes checking dominates and is performed
  occasionally (e.g. in CI), not on every run;
* the permission-literal fast path (Sec. 3.4 / App. B): omitting the
  temporary variable and nonnegativity check for literal amounts shrinks
  both the Boogie program and the certificate.
"""

import statistics

from repro.frontend import TranslationOptions
from repro.harness import run_files, suite_files

from common import emit


def _run_suite(options=None):
    return run_files(suite_files("VerCors"), options)


def test_pipeline_stage_split(benchmark):
    metrics = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    translate = sum(m.translate_seconds for m in metrics)
    generate = sum(m.generate_seconds for m in metrics)
    check = sum(m.check_seconds for m in metrics)
    rows = [
        "Pipeline stage split (VerCors-style slice, 18 files, totals)",
        f"  translate Viper->Boogie : {translate:8.4f} s",
        f"  generate certificates   : {generate:8.4f} s",
        f"  check certificates      : {check:8.4f} s",
    ]
    emit("ablation_pipeline_stages", "\n".join(rows))
    # Checking is the dominant trusted-path cost, as in the paper.
    assert check > translate


def test_ablation_literal_fastpath(benchmark):
    fast = benchmark.pedantic(
        _run_suite,
        args=(TranslationOptions(literal_perm_fastpath=True),),
        rounds=1,
        iterations=1,
    )
    slow = _run_suite(TranslationOptions(literal_perm_fastpath=False))
    assert all(m.certified for m in fast)
    assert all(m.certified for m in slow)
    rows = [
        "Ablation: permission-literal fast path (VerCors-style slice)",
        f"{'variant':>12} | {'Boogie LoC':>10} | {'cert LoC':>9}",
        "-" * 40,
        f"{'fast path':>12} | {sum(m.boogie_loc for m in fast):>10} | "
        f"{sum(m.cert_loc for m in fast):>9}",
        f"{'general':>12} | {sum(m.boogie_loc for m in slow):>10} | "
        f"{sum(m.cert_loc for m in slow):>9}",
    ]
    emit("ablation_literal_fastpath", "\n".join(rows))
    assert sum(m.boogie_loc for m in fast) < sum(m.boogie_loc for m in slow)
