"""repro — validated Viper-to-Boogie translation.

A Python reproduction of *"Towards Trustworthy Automated Program
Verifiers: Formally Validating Translations into an Intermediate
Verification Language"* (PLDI 2024): executable semantics for a core
subset of Viper and of Boogie, the instrumented Viper-to-Boogie front-end
translation, and per-run forward-simulation certificates generated from
translator hints and checked by an independent kernel.

Typical use::

    from repro import certify_source

    report = certify_source('''
        field f: Int
        method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
        { x.f := 1 }
    ''')
    assert report.ok
    print(report.statement())

The subpackages:

* :mod:`repro.viper` — Viper substrate (AST, parser, typechecker, big-step
  semantics with permissions, bounded correctness checking),
* :mod:`repro.boogie` — Boogie substrate (AST, typechecker, small-step
  continuation semantics, polymorphic-map desugaring, wlp back-end),
* :mod:`repro.frontend` — the Viper-to-Boogie translation with hint
  instrumentation (the system under validation),
* :mod:`repro.certification` — the paper's contribution: certificate
  generation (tactic), the independent proof-checking kernel, semantic
  simulation judgements, and the final-theorem assembly,
* :mod:`repro.harness` — the evaluation corpus and pipeline (Tables 1–6).
"""

from .certification import (  # noqa: F401
    certify_translation,
    check_program_certificate,
    generate_program_certificate,
    parse_program_certificate,
    render_program_certificate,
    TheoremReport,
)
from .frontend import translate_program, TranslationOptions, TranslationResult  # noqa: F401
from .viper import check_program, parse_program  # noqa: F401

__version__ = "1.0.0"


def translate_source(source, options=None):
    """Parse, type-check, and translate a Viper program given as text.

    While loops in the source are desugared via their invariants into the
    core subset before translation (see :mod:`repro.viper.loops`).
    """
    from .viper import (
        desugar_loops,
        desugar_new,
        desugar_old,
        program_has_loops,
        program_has_new,
        program_has_old,
    )

    program = parse_program(source)
    if program_has_loops(program):
        program = desugar_loops(program)
    if program_has_new(program):
        program = desugar_new(program)
    if program_has_old(program):
        program = desugar_old(program)
    from .viper import hoist_call_args, program_has_complex_call_args

    if program_has_complex_call_args(program):
        program = hoist_call_args(program)
    type_info = check_program(program)
    return translate_program(program, type_info, options)


def certify_source(source, options=None):
    """Run the full pipeline on Viper source text and return the theorem
    report (generate the certificate and check it independently)."""
    result = translate_source(source, options)
    _certificate, report = certify_translation(result)
    return report
