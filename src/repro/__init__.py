"""repro — validated Viper-to-Boogie translation.

Trust: **untrusted-but-checked** — re-export hub; importing it pulls in
untrusted orchestration alongside the kernel.

A Python reproduction of *"Towards Trustworthy Automated Program
Verifiers: Formally Validating Translations into an Intermediate
Verification Language"* (PLDI 2024): executable semantics for a core
subset of Viper and of Boogie, the instrumented Viper-to-Boogie front-end
translation, and per-run forward-simulation certificates generated from
translator hints and checked by an independent kernel.

Typical use::

    from repro import certify_source

    report = certify_source('''
        field f: Int
        method m(x: Ref) requires acc(x.f, write) ensures acc(x.f, write)
        { x.f := 1 }
    ''')
    assert report.ok
    print(report.statement())

The subpackages:

* :mod:`repro.viper` — Viper substrate (AST, parser, typechecker, big-step
  semantics with permissions, bounded correctness checking),
* :mod:`repro.boogie` — Boogie substrate (AST, typechecker, small-step
  continuation semantics, polymorphic-map desugaring, wlp back-end),
* :mod:`repro.frontend` — the Viper-to-Boogie translation with hint
  instrumentation (the system under validation),
* :mod:`repro.certification` — the paper's contribution: certificate
  generation (tactic), the independent proof-checking kernel, semantic
  simulation judgements, and the final-theorem assembly,
* :mod:`repro.pipeline` — the staged end-to-end flow (parse → desugar →
  typecheck → translate → generate → render → reparse → check) with
  per-stage instrumentation, structured diagnostics, a content-addressed
  artifact cache, and a parallel corpus executor,
* :mod:`repro.service` — certification-as-a-service: an asyncio HTTP
  server over a persistent worker pool, a restart-surviving disk cache
  for the untrusted artifacts (the kernel always re-checks fresh),
  admission control with backpressure, Prometheus metrics, and a
  corpus-replaying load generator (``repro serve`` / ``repro loadgen``),
* :mod:`repro.harness` — the evaluation corpus and pipeline (Tables 1–6),
* :mod:`repro.fuzz` — adversarial fuzzing of the certification kernel
  (seeded program generation, artifact mutators, differential-oracle
  escalation, a replayable failure corpus, delta-debugging minimizers).
"""

from .certification import (  # noqa: F401
    certify_translation,
    check_program_certificate,
    generate_program_certificate,
    parse_program_certificate,
    render_program_certificate,
    TheoremReport,
)
from .frontend import translate_program, TranslationOptions, TranslationResult  # noqa: F401
from .viper import check_program, parse_program  # noqa: F401
from .pipeline import (  # noqa: F401
    ArtifactCache,
    Diagnostic,
    PipelineContext,
    PipelineError,
    PipelineInstrumentation,
    run_pipeline,
)

__version__ = "1.5.0"


def translate_source(source, options=None, **kwargs):
    """Parse, type-check, and translate a Viper program given as text.

    Loops, ``old()`` expressions, ``new`` allocations, and complex call
    arguments are desugared into the core subset first.  This is a thin
    wrapper over :func:`repro.pipeline.run_pipeline` (stage ``translate``);
    keyword arguments (``instrumentation=``, ``cache=``, ``wrap_errors=``)
    are forwarded to the pipeline.
    """
    from .pipeline import translate_source as _translate_source

    return _translate_source(source, options, **kwargs)


def certify_source(source, options=None, **kwargs):
    """Run the full pipeline on Viper source text and return the theorem
    report (generate the certificate, serialise it, and re-check it on the
    independent trusted path).  Thin wrapper over
    :func:`repro.pipeline.run_pipeline` (stage ``check``)."""
    from .pipeline import certify_source as _certify_source

    return _certify_source(source, options, **kwargs)
