"""Benchmark corpus: four suites mirroring the paper's evaluation (Sec. 5).

Trust: **advisory** — benchmark corpus definitions for the evaluation.

The paper evaluates on 72 Viper files drawn from four sources — the Viper
test suite (34 files / 105 methods), Gobra (17 / 65), VerCors (18 / 116),
and MPP modular-product programs (3 / 13).  Those suites are not available
offline, so this module *synthesises* four suites with the same file and
method counts, matching size distributions (per-file LoC targets taken from
the paper's App. D tables), and the same feature mix: every file uses the
heap through accessibility predicates (the paper's selection criterion),
plus method calls, scoped variables, conditionals, inhale/exhale/assert,
fractional permissions, and conditional assertions.

Generation is deterministic (seeded per file name), so metrics are
reproducible run to run.  Some files deliberately contain *incorrect*
methods (like the paper's ``*-fail`` tests): certification is independent
of whether the program verifies, and the corpus must exercise that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CorpusFile:
    """One benchmark program."""

    suite: str
    name: str
    source: str
    #: Approximate per-file LoC target from the paper's App. D (for reference).
    paper_loc: int


# Per-file (name, paper Viper LoC, #methods) taken from Tables 3–6.
GOBRA_FILES: Tuple[Tuple[str, int, int], ...] = (
    ("concurrency", 24, 2),
    ("defer-simple-01", 142, 6),
    ("defer-simple-02", 211, 9),
    ("perm-fail1", 165, 15),
    ("perm-simple1", 131, 9),
    ("fail1", 44, 3),
    ("fail3", 19, 2),
    ("simple1", 30, 2),
    ("simple2", 10, 1),
    ("simple3", 17, 1),
    ("global-const-8", 49, 6),
    ("pointer-identity", 30, 1),
    ("pointer-identity-2", 30, 1),
    ("000008", 10, 1),
    ("000009", 16, 1),
    ("000039", 49, 3),
    ("000155", 39, 2),
)

MPP_FILES: Tuple[Tuple[str, int, int], ...] = (
    ("banerjee", 414, 8),
    ("darvas", 91, 2),
    ("kusters", 112, 3),
)

VERCORS_FILES: Tuple[Tuple[str, int, int], ...] = (
    ("BasicAssert-e1", 41, 6),
    ("BasicAssert", 41, 6),
    ("DafnyIncr", 60, 8),
    ("DafnyIncrE1", 57, 8),
    ("permissions", 39, 5),
    ("inv-test-fail1", 90, 5),
    ("inv-test-fail2", 92, 5),
    ("inv-test", 90, 5),
    ("SwapIntegerFail", 79, 8),
    ("SwapIntegerPass", 81, 8),
    ("SwapLong", 57, 6),
    ("SwapLongTwice", 81, 8),
    ("SwapLongWrong", 79, 8),
    ("frame-error-1", 35, 5),
    ("refute3", 49, 6),
    ("refute4", 54, 6),
    ("refute5", 50, 6),
    ("demo1", 60, 7),
)

VIPER_FILES: Tuple[Tuple[str, int, int], ...] = (
    ("0004", 6, 1),
    ("0004-CPG1", 6, 1),
    ("0005", 4, 1),
    ("0008", 12, 2),
    ("0011", 63, 5),
    ("0015", 6, 1),
    ("0052", 7, 1),
    ("0063", 34, 6),
    ("0072", 8, 1),
    ("0073", 10, 1),
    ("0088-1", 9, 1),
    ("0094", 6, 1),
    ("0152", 14, 2),
    ("0157", 47, 8),
    ("0159", 13, 2),
    ("0170", 8, 1),
    ("0177-1", 10, 1),
    ("0222", 13, 2),
    ("0227", 5, 1),
    ("0324", 7, 1),
    ("0345", 21, 3),
    ("0384", 11, 1),
    ("assert", 7, 1),
    ("negative-amounts", 21, 3),
    ("old", 38, 6),
    ("swap", 16, 2),
    ("test", 6, 1),
    ("testHistoryProcesses", 205, 13),
    ("testHistoryProcessesPVL", 204, 13),
    ("testHistoryProcessesPVL-CPG1", 56, 4),
    ("testHistoryThreadsProcessesPVL", 56, 4),
    ("test-example1", 57, 4),
    ("test-example3", 74, 5),
    ("test-example4", 71, 5),
)


class _MethodFactory:
    """Generates well-typed Viper methods in a given naming style."""

    def __init__(self, rng: random.Random, style: str, fields: Sequence[str]):
        self._rng = rng
        self._style = style
        self._fields = list(fields)
        self._methods: List[Tuple[str, str]] = []  # (name, source)
        #: Signatures of callable methods: name -> (arg kinds, has result).
        self._callable: Dict[str, Tuple[Tuple[str, ...], bool]] = {}
        self._counter = 0

    # -- naming ------------------------------------------------------------

    def _name(self, base: str) -> str:
        self._counter += 1
        if self._style == "gobra":
            return f"{base}_go{self._counter}"
        if self._style == "vercors":
            return f"{base}Java{self._counter}"
        if self._style == "mpp":
            return f"{base}_prod{self._counter}"
        return f"{base}{self._counter}"

    def _field(self) -> str:
        return self._rng.choice(self._fields)

    # -- method templates -----------------------------------------------------

    def getter(self) -> str:
        name = self._name("get")
        field = self._field()
        frac = self._rng.choice(["1/2", "1/4", "2/3"])
        source = f"""
method {name}(x: Ref) returns (res: Int)
  requires acc(x.{field}, {frac})
  ensures acc(x.{field}, {frac}) && res == x.{field}
{{
  res := x.{field}
}}"""
        self._methods.append((name, source))
        self._callable[name] = (('ref',), True)
        return source

    def setter(self) -> str:
        name = self._name("set")
        field = self._field()
        value = self._rng.randint(0, 9)
        source = f"""
method {name}(x: Ref, v: Int)
  requires acc(x.{field}, write)
  ensures acc(x.{field}, write) && x.{field} == v
{{
  x.{field} := v
  assert x.{field} == v
}}"""
        self._methods.append((name, source))
        self._callable[name] = (('ref', 'int'), False)
        return source

    def incrementer(self) -> str:
        name = self._name("incr")
        field = self._field()
        delta = self._rng.randint(1, 5)
        source = f"""
method {name}(x: Ref) returns (old_val: Int)
  requires acc(x.{field}, write)
  ensures acc(x.{field}, write) && x.{field} == old_val + {delta}
{{
  old_val := x.{field}
  x.{field} := old_val + {delta}
}}"""
        self._methods.append((name, source))
        self._callable[name] = (('ref',), True)
        return source

    def swapper(self) -> str:
        name = self._name("swap")
        field = self._field()
        source = f"""
method {name}(a: Ref, b: Ref)
  requires acc(a.{field}, write) && acc(b.{field}, write) && a != b
  ensures acc(a.{field}, write) && acc(b.{field}, write)
{{
  var ta: Int
  var tb: Int
  ta := a.{field}
  tb := b.{field}
  a.{field} := tb
  b.{field} := ta
  assert acc(a.{field}, 1/2) && acc(b.{field}, 1/2)
}}"""
        self._methods.append((name, source))
        return source

    def brancher(self) -> str:
        name = self._name("branch")
        field = self._field()
        bound = self._rng.randint(1, 7)
        source = f"""
method {name}(x: Ref, flag: Bool) returns (res: Int)
  requires acc(x.{field}, write) && (flag ==> x.{field} > 0)
  ensures acc(x.{field}, write) && res >= 0
{{
  if (flag) {{
    res := x.{field}
  }} else {{
    if (x.{field} > {bound}) {{
      res := {bound}
    }} else {{
      res := 0
    }}
  }}
  exhale res < 0 ? acc(x.{field}, write) : true
}}"""
        self._methods.append((name, source))
        return source

    def transferer(self) -> str:
        name = self._name("transfer")
        field = self._field()
        source = f"""
method {name}(src: Ref, dst: Ref)
  requires acc(src.{field}, 1/2) && acc(dst.{field}, write)
  ensures acc(dst.{field}, write)
{{
  dst.{field} := src.{field} + 1
  exhale acc(src.{field}, 1/2) && dst.{field} > src.{field}
  inhale acc(src.{field}, 1/2)
  assert dst.{field} >= src.{field}
}}"""
        self._methods.append((name, source))
        return source

    def perm_juggler(self) -> str:
        name = self._name("perm")
        field = self._field()
        source = f"""
method {name}(x: Ref, p: Perm)
  requires acc(x.{field}, p) && p > none
  ensures acc(x.{field}, p)
{{
  var half: Perm
  half := p / 2
  exhale acc(x.{field}, half)
  inhale acc(x.{field}, half)
  assert acc(x.{field}, p) && x.{field} == x.{field}
}}"""
        self._methods.append((name, source))
        return source

    def failing_assert(self) -> str:
        name = self._name("fail")
        field = self._field()
        source = f"""
method {name}(x: Ref)
  requires acc(x.{field}, write)
  ensures acc(x.{field}, write) && x.{field} == 0
{{
  x.{field} := 1
}}"""
        self._methods.append((name, source))
        return source

    def caller(self) -> str:
        """A method calling previously generated methods.

        Calls exercise the non-local optimisation: the translation of the
        callee-precondition exhale omits well-definedness checks.
        """
        candidates = sorted(self._callable.items())
        if not candidates:
            return self.getter()
        callee, (arg_kinds, has_ret) = self._rng.choice(candidates)
        name = self._name("use")
        field = self._field()
        args = {"ref": "x", "int": "t", "bool": "b"}
        call_args = ", ".join(args[kind] for kind in arg_kinds)
        body_lines = [
            "  var t: Int",
            "  var b: Bool",
            f"  t := {self._rng.randint(0, 5)}",
            "  b := true",
        ]
        if has_ret:
            body_lines.insert(0, "  var r: Int")
            body_lines.append(f"  r := {callee}({call_args})")
            body_lines.append("  assert r == r")
        else:
            body_lines.append(f"  {callee}({call_args})")
            body_lines.append("  assert t >= 0")
        body = "\n".join(body_lines)
        source = f"""
method {name}(x: Ref)
  requires acc(x.{field}, write)
  ensures true
{{
{body}
}}"""
        self._methods.append((name, source))
        return source

    def product_method(self, size: int) -> str:
        """An MPP-style product method: duplicated state, lockstep body."""
        name = self._name("mainp")
        field = self._field()
        steps = []
        for index in range(max(2, size)):
            value = self._rng.randint(0, 6)
            steps.append(
                f"""  if (act1) {{
    x1.{field} := t1 + {value}
    t1 := x1.{field}
  }}
  if (act2) {{
    x2.{field} := t2 + {value}
    t2 := x2.{field}
  }}
  assert act1 && act2 ==> t1 >= 0 || t2 >= 0 || t1 < 0 || t2 < 0"""
            )
        body = "\n".join(steps)
        source = f"""
method {name}(x1: Ref, x2: Ref, act1: Bool, act2: Bool)
  requires acc(x1.{field}, write) && acc(x2.{field}, write) && x1 != x2
  requires x1.{field} >= 0 && x2.{field} >= 0
  ensures acc(x1.{field}, write) && acc(x2.{field}, write)
{{
  var t1: Int
  var t2: Int
  t1 := x1.{field}
  t2 := x2.{field}
{body}
}}"""
        self._methods.append((name, source))
        return source

    def abstract_spec(self) -> str:
        """An abstract (bodyless) method, callable by others."""
        name = self._name("ext")
        field = self._field()
        source = f"""
method {name}(x: Ref) returns (res: Int)
  requires acc(x.{field}, 1/2)
  ensures acc(x.{field}, 1/2) && res >= x.{field}"""
        self._methods.append((name, source))
        self._callable[name] = (('ref',), True)
        return source

    def long_method(self, body_lines: int) -> str:
        """A long straight-line method sized to a per-method line budget."""
        name = self._name("work")
        field_a = self._field()
        field_b = self._field()
        segments: List[str] = [
            "  var t: Int",
            "  var s: Int",
            f"  t := x.{field_a}",
            "  s := t",
        ]
        while len(segments) < max(4, body_lines - 2):
            kind = self._rng.randrange(4)
            k = self._rng.randint(1, 6)
            if kind == 0:
                segments.append(f"  x.{field_a} := s + {k}")
                segments.append(f"  s := x.{field_a}")
            elif kind == 1:
                segments.append(f"  assert acc(x.{field_b}, 1/2) && s == s")
            elif kind == 2:
                segments.append(f"  if (s > {k}) {{")
                segments.append(f"    s := s - {k}")
                segments.append("  } else {")
                segments.append(f"    s := s + {k}")
                segments.append("  }")
            else:
                segments.append(f"  exhale acc(x.{field_b}, 1/4)")
                segments.append(f"  inhale acc(x.{field_b}, 1/4)")
        body = "\n".join(segments)
        source = f"""
method {name}(x: Ref) returns (out: Int)
  requires acc(x.{field_a}, write) && acc(x.{field_b}, write)
  ensures acc(x.{field_a}, write) && acc(x.{field_b}, write)
{{
{body}
  out := s
}}"""
        self._methods.append((name, source))
        self._callable[name] = (('ref',), True)
        return source

    TEMPLATES = (
        "getter",
        "setter",
        "incrementer",
        "swapper",
        "brancher",
        "transferer",
        "perm_juggler",
        "caller",
    )

    def random_method(self) -> str:
        kind = self._rng.choice(self.TEMPLATES)
        return getattr(self, kind)()


def _approx_loc(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())


def generate_file(suite: str, name: str, target_loc: int, method_count: int) -> CorpusFile:
    """Generate one corpus file deterministically from its identity."""
    rng = random.Random(f"{suite}/{name}")
    style = {"Gobra": "gobra", "VerCors": "vercors", "MPP": "mpp"}.get(suite, "viper")
    field_count = 1 if target_loc < 30 else (2 if target_loc < 120 else 3)
    fields = [f"f{i}" for i in range(field_count)]
    factory = _MethodFactory(rng, style, fields)
    parts: List[str] = []
    if style == "mpp":
        # MPP files: few, large product methods plus small helpers.
        product_methods = max(1, method_count - 2)
        helpers = method_count - product_methods
        step_budget = max(2, (target_loc // product_methods - 16) // 9)
        for _ in range(helpers):
            parts.append(factory.random_method())
        for _ in range(product_methods):
            parts.append(factory.product_method(step_budget))
    else:
        # Mix of templates; the per-method line budget steers template
        # choice so file sizes track the paper's distribution while method
        # counts match it exactly.  Some files contain failing methods and
        # abstract specs, matching the real suites (incl. *-fail tests).
        budget = target_loc / max(1, method_count)
        for index in range(method_count):
            roll = rng.random()
            if "fail" in name.lower() and index == method_count - 1:
                parts.append(factory.failing_assert())
            elif budget > 16 and roll < 0.75:
                parts.append(factory.long_method(int(budget) - 8))
            elif roll < 0.08 and index > 0:
                parts.append(factory.abstract_spec())
            elif roll < 0.32 and index > 0:
                parts.append(factory.caller())
            else:
                parts.append(factory.random_method())
    # Declare only the fields the generated methods actually mention, so the
    # corpus itself lints clean (VPR006); the header is assembled *after*
    # method generation, which consumes no randomness and therefore keeps
    # per-file determinism intact.
    method_text = "\n".join(parts)
    used = [f for f in fields if f".{f}" in method_text]
    header = "\n".join(f"field {f}: Int" for f in (used or fields[:1]))
    parts = [f"// suite: {suite}, file: {name} (synthesised)", header] + parts
    source = "\n".join(parts) + "\n"
    return CorpusFile(suite=suite, name=name, source=source, paper_loc=target_loc)


def suite_files(suite: str) -> List[CorpusFile]:
    """All files of one suite (``Viper``, ``Gobra``, ``VerCors``, ``MPP``)."""
    table = {
        "Viper": VIPER_FILES,
        "Gobra": GOBRA_FILES,
        "VerCors": VERCORS_FILES,
        "MPP": MPP_FILES,
    }[suite]
    return [generate_file(suite, name, loc, methods) for name, loc, methods in table]


def full_corpus() -> Dict[str, List[CorpusFile]]:
    """The full 72-file corpus, keyed by suite."""
    return {suite: suite_files(suite) for suite in ("Viper", "Gobra", "VerCors", "MPP")}


#: Files selected for the paper's Table 2 (largest per suite + all MPP).
TABLE2_SELECTION: Tuple[Tuple[str, str], ...] = (
    ("Viper", "testHistoryProcesses"),
    ("Gobra", "defer-simple-02"),
    ("VerCors", "inv-test-fail2"),
    ("MPP", "banerjee"),
    ("MPP", "darvas"),
    ("MPP", "kusters"),
)

def dump_corpus(directory) -> int:
    """Write every corpus file to ``directory/<suite>/<name>.vpr``.

    Returns the number of files written.  Useful for inspecting the
    benchmark programs or feeding them to external tools.
    """
    import pathlib

    root = pathlib.Path(directory)
    written = 0
    for suite, files in full_corpus().items():
        suite_dir = root / suite.lower()
        suite_dir.mkdir(parents=True, exist_ok=True)
        for corpus_file in files:
            (suite_dir / f"{corpus_file.name}.vpr").write_text(corpus_file.source)
            written += 1
    return written
