"""Evaluation harness: corpus, pipeline runner, and table rendering.

Trust: **advisory** — evaluation harness; it measures the pipeline, it does
not certify.
"""

from .corpus import (  # noqa: F401
    CorpusFile,
    dump_corpus,
    full_corpus,
    generate_file,
    suite_files,
    TABLE2_SELECTION,
)
from .runner import (  # noqa: F401
    aggregate,
    aggregate_overall,
    FileMetrics,
    metrics_from_context,
    run_file,
    run_files,
    SuiteMetrics,
)
from .tables import (  # noqa: F401
    analysis_overhead,
    bench_report,
    blowup_factor,
    render_bench_json,
    render_detail_table,
    render_table1,
    unit_cache_overview,
)
