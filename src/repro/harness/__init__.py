"""Evaluation harness: corpus, pipeline runner, and table rendering."""

from .corpus import (  # noqa: F401
    CorpusFile,
    dump_corpus,
    full_corpus,
    generate_file,
    suite_files,
    TABLE2_SELECTION,
)
from .runner import aggregate, aggregate_overall, FileMetrics, run_file, run_files, SuiteMetrics  # noqa: F401
from .tables import blowup_factor, render_detail_table, render_table1  # noqa: F401
