"""Rendering of the paper's tables (text and JSON) from harness measurements.

Trust: **advisory** — renders evaluation results as tables.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .runner import FileMetrics, SuiteMetrics, aggregate, aggregate_overall


def _row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def render_table1(per_suite: Dict[str, List[FileMetrics]]) -> str:
    """Table 1: per-suite overview (files, methods, mean LoCs, check times)."""
    header = (
        "Test suite",
        "Files",
        "Methods",
        "Viper mean LoC",
        "Boogie mean LoC",
        "Cert mean LoC",
        "Check mean [s]",
        "Check median [s]",
    )
    widths = [max(len(h), 10) for h in header]
    lines = [_row(header, widths), "-+-".join("-" * w for w in widths)]
    rows: List[SuiteMetrics] = [
        aggregate(suite, metrics) for suite, metrics in per_suite.items()
    ]
    rows.append(aggregate_overall(per_suite))
    for row in rows:
        lines.append(
            _row(
                (
                    row.suite,
                    row.files,
                    row.methods,
                    f"{row.mean_viper_loc:.0f}",
                    f"{row.mean_boogie_loc:.0f}",
                    f"{row.mean_cert_loc:.0f}",
                    f"{row.mean_check_seconds:.4f}",
                    f"{row.median_check_seconds:.4f}",
                ),
                widths,
            )
        )
    return "\n".join(lines)


def render_detail_table(metrics: Sequence[FileMetrics], title: str) -> str:
    """Tables 2–6: per-file details."""
    header = (
        "File",
        "Methods",
        "Viper LoC",
        "Boogie LoC",
        "Cert LoC",
        "Check [s]",
        "Certified",
    )
    widths = [max(len(h), 10) for h in header]
    widths[0] = max(widths[0], max((len(m.name) for m in metrics), default=10))
    lines = [title, _row(header, widths), "-+-".join("-" * w for w in widths)]
    for m in metrics:
        lines.append(
            _row(
                (
                    m.name,
                    m.methods,
                    m.viper_loc,
                    m.boogie_loc,
                    m.cert_loc,
                    f"{m.check_seconds:.4f}",
                    "yes" if m.certified else "NO",
                ),
                widths,
            )
        )
    return "\n".join(lines)


def blowup_factor(per_suite: Dict[str, List[FileMetrics]]) -> float:
    """Mean Boogie/Viper LoC ratio (the paper reports 6.2x overall)."""
    all_metrics = [m for metrics in per_suite.values() for m in metrics]
    total_viper = sum(m.viper_loc for m in all_metrics)
    total_boogie = sum(m.boogie_loc for m in all_metrics)
    return total_boogie / total_viper if total_viper else 0.0


def analysis_overhead(per_suite: Dict[str, List[FileMetrics]]) -> Dict[str, object]:
    """The static-analysis overhead summary of ``bench --json``.

    The advisory ``analyze`` stage (docs/ANALYSIS.md) ships with a
    performance budget: < 5% of the pipeline's wall-clock over the full
    corpus.  ``fraction`` is corpus-total analyze seconds over corpus-total
    pipeline seconds; ``within_budget`` makes the acceptance criterion a
    machine-checkable field rather than a reviewer computation.
    """
    all_metrics = [m for metrics in per_suite.values() for m in metrics]
    analyze = sum(m.analyze_seconds for m in all_metrics)
    total = sum(m.total_seconds for m in all_metrics)
    fraction = analyze / total if total else 0.0
    return {
        "analyze_seconds": analyze,
        "pipeline_seconds": total,
        "fraction": fraction,
        "budget_fraction": 0.05,
        "within_budget": fraction < 0.05,
    }


def unit_cache_overview(per_suite: Dict[str, List[FileMetrics]]) -> Dict[str, object]:
    """The method-granular incrementality summary of ``bench --json``.

    Sums the per-file :attr:`FileMetrics.unit_cache` accounting across the
    corpus: how many method units were served from a cache tier versus
    rebuilt from scratch, and the tier split.  A cold serial ``bench`` run
    reports everything rebuilt; warm or cached runs show the reuse the
    per-unit cache key (body digest + callee interface digests + options)
    makes possible.
    """
    all_metrics = [m for metrics in per_suite.values() for m in metrics]
    reused = sum(int(m.unit_cache.get("reused", 0)) for m in all_metrics)
    rebuilt = sum(int(m.unit_cache.get("rebuilt", 0)) for m in all_metrics)
    tiers: Dict[str, int] = {}
    for m in all_metrics:
        for tier, count in dict(m.unit_cache.get("tiers", {})).items():
            tiers[tier] = tiers.get(tier, 0) + int(count)
    total = reused + rebuilt
    return {
        "units": total,
        "reused": reused,
        "rebuilt": rebuilt,
        "reuse_fraction": reused / total if total else 0.0,
        "tiers": tiers,
    }


def bench_report(
    per_suite: Dict[str, List[FileMetrics]],
    jobs: Optional[int] = None,
) -> Dict[str, object]:
    """A machine-readable benchmark report (the ``bench --json`` payload).

    Shape::

        {
          "meta":    {environment fingerprint..., "jobs": ...},
          "suites":  {suite: {"files": [per-file dicts],
                              "aggregate": {Table-1 row}}},
          "overall": {Table-1 Overall row},
          "blowup_factor": float,
          "analysis_overhead": {"fraction": ..., "within_budget": bool},
          "unit_cache": {"units": ..., "reused": ..., "rebuilt": ...,
                         "reuse_fraction": ..., "tiers": {...}},
        }
    """
    suites: Dict[str, object] = {}
    for suite, metrics in per_suite.items():
        suites[suite] = {
            "files": [m.to_dict() for m in metrics],
            "aggregate": aggregate(suite, metrics).to_dict(),
        }
    from ..perf.history import environment_fingerprint

    return {
        # The full environment fingerprint (repro version, python,
        # platform, cpu count, git describe) — the observatory's history
        # records need it, and the original "python"/"platform" keys keep
        # their exact old semantics for existing readers.
        "meta": {**environment_fingerprint(), "jobs": jobs},
        "suites": suites,
        "overall": aggregate_overall(per_suite).to_dict(),
        "blowup_factor": blowup_factor(per_suite),
        "analysis_overhead": analysis_overhead(per_suite),
        "unit_cache": unit_cache_overview(per_suite),
    }


def render_bench_json(
    per_suite: Dict[str, List[FileMetrics]],
    jobs: Optional[int] = None,
    indent: int = 2,
) -> str:
    """Serialise :func:`bench_report` (suitable for ``BENCH_*.json``)."""
    return json.dumps(bench_report(per_suite, jobs=jobs), indent=indent)
