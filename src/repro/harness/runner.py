"""The evaluation pipeline: parse → translate → certify → check → measure.

``run_file`` reproduces, for one corpus program, exactly what the paper
measures per Viper file (Tab. 1–6):

* Viper LoC (non-empty lines of the source),
* Boogie LoC (non-empty lines of the pretty-printed translation),
* certificate LoC (lines of the serialised proof — the Isabelle-proof-size
  analog),
* the time to *check* the certificate from its serialised text form,
  independently of the translator (the proof-check-time analog).

The checker consumes the certificate parsed back from text, so the timing
covers the full trusted path: parse certificate, validate every rule
application against both ASTs, and discharge the background obligations.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..certification import (
    check_program_certificate,
    generate_program_certificate,
    parse_program_certificate,
    render_program_certificate,
)
from ..frontend import translate_program, TranslationOptions
from ..boogie.pretty import pretty_boogie_program
from ..viper.parser import parse_program
from ..viper.pretty import count_loc
from ..viper.typechecker import check_program
from .corpus import CorpusFile


@dataclass
class FileMetrics:
    """Measurements for one corpus file (one row of Tables 3–6)."""

    suite: str
    name: str
    methods: int
    viper_loc: int
    boogie_loc: int
    cert_loc: int
    translate_seconds: float
    generate_seconds: float
    check_seconds: float
    certified: bool
    error: str = ""


@dataclass
class SuiteMetrics:
    """Aggregates for one suite (one row of Table 1)."""

    suite: str
    files: int
    methods: int
    mean_viper_loc: float
    mean_boogie_loc: float
    mean_cert_loc: float
    mean_check_seconds: float
    median_check_seconds: float
    all_certified: bool


def run_file(
    corpus_file: CorpusFile, options: Optional[TranslationOptions] = None
) -> FileMetrics:
    """Run the full pipeline on one file and collect its metrics."""
    program = parse_program(corpus_file.source)
    type_info = check_program(program)
    start = time.perf_counter()
    result = translate_program(program, type_info, options)
    translate_seconds = time.perf_counter() - start
    start = time.perf_counter()
    certificate = generate_program_certificate(result)
    cert_text = render_program_certificate(certificate)
    generate_seconds = time.perf_counter() - start
    # Check from the serialised form — the independent trusted path.
    start = time.perf_counter()
    reparsed = parse_program_certificate(cert_text)
    report = check_program_certificate(result, reparsed)
    check_seconds = time.perf_counter() - start
    return FileMetrics(
        suite=corpus_file.suite,
        name=corpus_file.name,
        methods=len(program.methods),
        viper_loc=count_loc(corpus_file.source),
        boogie_loc=count_loc(pretty_boogie_program(result.boogie_program)),
        cert_loc=len([l for l in cert_text.splitlines() if l.strip()]),
        translate_seconds=translate_seconds,
        generate_seconds=generate_seconds,
        check_seconds=check_seconds,
        certified=report.ok,
        error=report.error,
    )


def run_files(
    files: Sequence[CorpusFile], options: Optional[TranslationOptions] = None
) -> List[FileMetrics]:
    """Run the pipeline on a list of corpus files."""
    return [run_file(corpus_file, options) for corpus_file in files]


def aggregate(suite: str, metrics: Sequence[FileMetrics]) -> SuiteMetrics:
    """Aggregate per-file metrics into a Table-1 row."""
    return SuiteMetrics(
        suite=suite,
        files=len(metrics),
        methods=sum(m.methods for m in metrics),
        mean_viper_loc=statistics.mean(m.viper_loc for m in metrics),
        mean_boogie_loc=statistics.mean(m.boogie_loc for m in metrics),
        mean_cert_loc=statistics.mean(m.cert_loc for m in metrics),
        mean_check_seconds=statistics.mean(m.check_seconds for m in metrics),
        median_check_seconds=statistics.median(m.check_seconds for m in metrics),
        all_certified=all(m.certified for m in metrics),
    )


def aggregate_overall(per_suite: Dict[str, List[FileMetrics]]) -> SuiteMetrics:
    """The Overall row of Table 1 (all suites pooled)."""
    all_metrics = [m for metrics in per_suite.values() for m in metrics]
    return aggregate("Overall", all_metrics)
