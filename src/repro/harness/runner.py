"""The evaluation runner: corpus files through the staged pipeline.

Trust: **advisory** — runs the evaluation matrix and records outcomes.

``run_file`` reproduces, for one corpus program, exactly what the paper
measures per Viper file (Tab. 1–6):

* Viper LoC (non-empty lines of the source),
* Boogie LoC (non-empty lines of the pretty-printed translation),
* certificate LoC (lines of the serialised proof — the Isabelle-proof-size
  analog),
* the time to *check* the certificate from its serialised text form,
  independently of the translator (the proof-check-time analog).

The measurements are **derived from pipeline instrumentation records**
(:mod:`repro.pipeline.instrumentation`), not from inline timing: the
harness shares the staged flow (parse → desugar → typecheck → translate →
generate → render → reparse → check) with every other entry point, so
corpus programs get the same loop/old/new/call-argument desugaring as the
CLI and the library API.  ``run_files`` fans out over the corpus through
the parallel executor (:mod:`repro.pipeline.executor`) with deterministic
ordering; ``jobs=None`` keeps the paper-comparable serial default.
"""

from __future__ import annotations

import functools
import statistics
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..frontend import TranslationOptions
from ..pipeline import ArtifactCache, parallel_map, PipelineContext, run_pipeline
from .corpus import CorpusFile


@dataclass
class FileMetrics:
    """Measurements for one corpus file (one row of Tables 3–6)."""

    suite: str
    name: str
    methods: int
    viper_loc: int
    boogie_loc: int
    cert_loc: int
    translate_seconds: float
    generate_seconds: float
    check_seconds: float
    certified: bool
    error: str = ""
    #: the advisory static-analysis stage alone (docs/ANALYSIS.md): kept
    #: separate so ``bench --json`` can prove the <5% overhead budget.
    analyze_seconds: float = 0.0
    #: wall-clock across *all* pipeline stages for this file (the overhead
    #: denominator).
    total_seconds: float = 0.0
    #: cache-probe wall-clock, accounted separately from stage work since
    #: the seconds/cache_lookup_seconds split
    #: (:meth:`PipelineInstrumentation.cache_lookup_seconds`), so
    #: ``bench --json`` stage numbers agree with exported traces.
    cache_lookup_seconds: float = 0.0
    #: per-method incremental accounting (reused/rebuilt counts, cache
    #: tiers, and per-method stage timings) from
    #: :meth:`PipelineInstrumentation.unit_cache_summary`.
    unit_cache: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready representation (for ``bench --json``)."""
        return asdict(self)


@dataclass
class SuiteMetrics:
    """Aggregates for one suite (one row of Table 1)."""

    suite: str
    files: int
    methods: int
    mean_viper_loc: float
    mean_boogie_loc: float
    mean_cert_loc: float
    mean_check_seconds: float
    median_check_seconds: float
    all_certified: bool

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def metrics_from_context(corpus_file: CorpusFile, ctx: PipelineContext) -> FileMetrics:
    """Derive one file's metrics from a completed pipeline context.

    Timings and artifact sizes come from the instrumentation records:
    ``translate`` is the translation stage alone, ``generate`` covers
    certificate generation + serialisation, and ``check`` covers the full
    trusted path (re-parse the certificate text + kernel check), matching
    what the paper reports.
    """
    inst = ctx.instrumentation
    sizes = inst.artifact_sizes()
    report = ctx.report
    return FileMetrics(
        suite=corpus_file.suite,
        name=corpus_file.name,
        methods=sizes.get("methods", 0),
        viper_loc=sizes.get("viper_loc", 0),
        boogie_loc=sizes.get("boogie_loc", 0),
        cert_loc=sizes.get("cert_loc", 0),
        translate_seconds=inst.stage_seconds("translate"),
        generate_seconds=inst.stage_seconds("generate", "render"),
        check_seconds=inst.stage_seconds("reparse", "check"),
        certified=bool(report.ok) if report is not None else False,
        error=report.error if report is not None else "pipeline incomplete",
        analyze_seconds=inst.stage_seconds("analyze"),
        total_seconds=inst.total_seconds(),
        cache_lookup_seconds=inst.cache_lookup_seconds(),
        unit_cache=inst.unit_cache_summary(),
    )


def run_file(
    corpus_file: CorpusFile,
    options: Optional[TranslationOptions] = None,
    cache: Optional[ArtifactCache] = None,
) -> FileMetrics:
    """Run the staged pipeline on one file and collect its metrics.

    Module-level and picklable, so it doubles as the process-pool worker
    for :func:`run_files`.
    """
    ctx = run_pipeline(corpus_file.source, options, cache=cache)
    return metrics_from_context(corpus_file, ctx)


def run_files(
    files: Sequence[CorpusFile],
    options: Optional[TranslationOptions] = None,
    jobs: Optional[int] = None,
) -> List[FileMetrics]:
    """Run the pipeline on a list of corpus files.

    ``jobs=None``/``1`` runs serially (the default); ``jobs=0`` uses one
    worker per CPU; ``jobs=N`` uses N processes.  Output order always
    matches the input order, so parallel runs aggregate and render
    identically to serial runs (timings aside).
    """
    worker = functools.partial(run_file, options=options)
    return parallel_map(worker, files, jobs=jobs)


def aggregate(suite: str, metrics: Sequence[FileMetrics]) -> SuiteMetrics:
    """Aggregate per-file metrics into a Table-1 row."""
    return SuiteMetrics(
        suite=suite,
        files=len(metrics),
        methods=sum(m.methods for m in metrics),
        mean_viper_loc=statistics.mean(m.viper_loc for m in metrics),
        mean_boogie_loc=statistics.mean(m.boogie_loc for m in metrics),
        mean_cert_loc=statistics.mean(m.cert_loc for m in metrics),
        mean_check_seconds=statistics.mean(m.check_seconds for m in metrics),
        median_check_seconds=statistics.median(m.check_seconds for m in metrics),
        all_certified=all(m.certified for m in metrics),
    )


def aggregate_overall(per_suite: Dict[str, List[FileMetrics]]) -> SuiteMetrics:
    """The Overall row of Table 1 (all suites pooled)."""
    all_metrics = [m for metrics in per_suite.values() for m in metrics]
    return aggregate("Overall", all_metrics)
