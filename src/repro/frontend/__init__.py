"""The Viper-to-Boogie front-end translation (the system under validation).

Trust: **untrusted-but-checked** — package hub for the untrusted
translator.
"""

from .background import (  # noqa: F401
    BackgroundTheory,
    build_background,
    constant_valuation,
    heap_to_boogie,
    mask_to_boogie,
    standard_interpretation,
    to_boogie_value,
    from_boogie_value,
    values_correspond,
)
from .hints import (  # noqa: F401
    AccHint,
    AssertHint,
    AssertionHint,
    AssignHint,
    CallHint,
    CondHint,
    ExhaleHint,
    FieldAssignHint,
    IfHint,
    ImpliesHint,
    InhaleHint,
    MethodHint,
    PureHint,
    SeqHint,
    SepHint,
    SkipHint,
    SpecWellFormednessHint,
    StmtHint,
    VarDeclHint,
)
from .records import boogie_type_of, TranslationRecord, viper_expr_type  # noqa: F401
from .translator import (  # noqa: F401
    assemble_translation,
    background_boogie_program,
    procedure_name,
    TranslatedMethod,
    TranslationError,
    TranslationOptions,
    TranslationResult,
    translate_method,
    translate_program,
)
