"""The Viper-to-Boogie front-end translation (Sec. 2.4, Sec. 4).

Trust: **untrusted-but-checked** — the translator is exactly what the paper
refuses to trust; every output is re-validated by the kernel.

This is the reproduction of the (instrumented) translation implemented in
the Viper verifier: it turns a Viper program into a Boogie program whose
procedures encode the methods' proof obligations, and emits *hints*
describing the choices it made (Sec. 4.3).

The encoding follows Fig. 3 of the paper:

* the Viper heap and mask live in global Boogie variables ``H``/``M`` whose
  polymorphic-map types are desugared into ``HeapType``/``MaskType`` with
  ``readHeap``/``updHeap``/``readMask``/``updMask`` (Sec. 4.4);
* ``inhale acc(e.f, p)`` becomes nonnegativity check + null-guard assume +
  mask update + ``assume GoodMask(M)``;
* ``exhale A`` snapshots the mask into ``WM`` (the expression-evaluation
  state of ``remcheck``), checks and removes permissions, then havocs the
  heap through ``idOnPositive``;
* method calls exhale the callee precondition **without well-definedness
  checks** — the non-local optimisation justified by the callee's spec
  well-formedness check (Sec. 4.2) — havoc the targets, and inhale the
  postcondition (also without wd checks);
* per method, the procedure checks spec well-formedness inside a
  nondeterministic branch that ends in ``assume false`` (C1), followed by
  the ``inhale pre; body; exhale post`` obligation (C2) — the two
  components of Fig. 10.

Several *diverse translations* of the paper are implemented and selectable
via :class:`TranslationOptions`; the emitted hints tell the certification
tactic which variant was used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..boogie.ast import (
    Assign,
    Havoc,
    Assume,
    BAssert,
    band,
    BBinOp,
    BBinOpKind,
    BBoolLit,
    beq,
    BExpr,
    bimplies,
    BIf,
    BIntLit,
    bnot,
    BoogieProgram,
    BRealLit,
    BStmt,
    BType,
    BUnOp,
    BUnOpKind,
    BVar,
    CondB,
    FuncApp,
    GlobalVarDecl,
    Procedure,
    REAL,
    SimpleCmd,
    StmtBlock,
    TRUE,
    FALSE,
)
from ..viper.ast import (
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    assertion_has_acc,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Expr,
    FieldAcc,
    FieldAssign,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
    substitute_assertion,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
    Exhale,
)
from ..viper.typechecker import ProgramTypeInfo
from .background import (
    BackgroundTheory,
    build_background,
    GOOD_MASK,
    HEAP_TYPE,
    ID_ON_POSITIVE,
    MASK_TYPE,
    NULL_CONST,
    READ_HEAP,
    READ_MASK,
    UPD_HEAP,
    UPD_MASK,
    ZERO_MASK_CONST,
)
from .hints import (
    AccHint,
    AssertHint,
    AssertionHint,
    AssignHint,
    CallHint,
    CondHint,
    ExhaleHint,
    FieldAssignHint,
    IfHint,
    ImpliesHint,
    InhaleHint,
    MethodHint,
    PureHint,
    SeqHint,
    SepHint,
    SkipHint,
    SpecWellFormednessHint,
    StmtHint,
    VarDeclHint,
)
from .records import boogie_type_of, TranslationRecord, viper_expr_type

HEAP_VAR = "H"
MASK_VAR = "M"

ZERO_REAL = BRealLit(Fraction(0))
ONE_REAL = BRealLit(Fraction(1))


class TranslationError(Exception):
    """Raised when the input program falls outside the supported subset."""


@dataclass(frozen=True)
class TranslationOptions:
    """Selectable translation variants (the paper's "diverse translations").

    * ``wd_checks_at_calls`` — emit well-definedness checks when exhaling a
      callee precondition / inhaling its postcondition.  The optimised
      translation omits them (Sec. 4.2); switching them on is the
      non-locality ablation.
    * ``literal_perm_fastpath`` — for positive literal permission amounts,
      skip the temporary variable and the nonnegativity assert (Sec. 3.4
      mentions this for the literal 1).
    * ``always_emit_exhale_havoc`` — emit the heap havoc after every exhale,
      even when the assertion contains no accessibility predicate (the
      optimised translation omits it — Sec. 3.4).
    """

    wd_checks_at_calls: bool = False
    literal_perm_fastpath: bool = True
    always_emit_exhale_havoc: bool = False


@dataclass
class TranslatedMethod:
    """One method's translation artifacts."""

    method_name: str
    procedure: Procedure
    record: TranslationRecord
    hint: MethodHint


@dataclass
class TranslationResult:
    """The full output of a translation run."""

    viper_program: Program
    type_info: ProgramTypeInfo
    background: BackgroundTheory
    boogie_program: BoogieProgram
    methods: Dict[str, TranslatedMethod]
    options: TranslationOptions


class _StmtBuilder:
    """Accumulates simple commands and if-statements into statement blocks."""

    def __init__(self) -> None:
        self._blocks: List[StmtBlock] = []
        self._cmds: List[SimpleCmd] = []

    def emit(self, *cmds: SimpleCmd) -> None:
        self._cmds.extend(cmds)

    def emit_if(self, cond: Optional[BExpr], then: BStmt, otherwise: BStmt) -> None:
        self._blocks.append(StmtBlock(tuple(self._cmds), BIf(cond, then, otherwise)))
        self._cmds = []

    def build(self) -> BStmt:
        blocks = list(self._blocks)
        if self._cmds or not blocks:
            blocks.append(StmtBlock(tuple(self._cmds), None))
        return tuple(blocks)


class _MethodTranslator:
    """Translates a single Viper method into a Boogie procedure."""

    def __init__(
        self,
        program: Program,
        type_info: ProgramTypeInfo,
        background: BackgroundTheory,
        method: MethodDecl,
        options: TranslationOptions,
    ):
        self._program = program
        self._type_info = type_info
        self._background = background
        self._method = method
        self._options = options
        self._var_types = type_info.methods[method.name].var_types
        self._field_types = type_info.field_types
        self._temp_counter = 0
        self._extra_locals: List[Tuple[str, BType]] = []
        var_map = {name: f"v_{name}" for name in self._var_types}
        self.record = TranslationRecord(
            var_map=var_map,
            heap_var=HEAP_VAR,
            mask_var=MASK_VAR,
            field_consts=dict(background.field_consts),
        )

    # -- fresh names -----------------------------------------------------------

    def _fresh(self, base: str, typ: BType) -> str:
        name = f"{base}_{self._temp_counter}"
        self._temp_counter += 1
        self._extra_locals.append((name, typ))
        return name

    # -- expression translation ---------------------------------------------------

    def trans_expr(self, expr: Expr, record: TranslationRecord) -> BExpr:
        """R(e): the Boogie expression computing e's value.

        Field reads go through ``readHeap`` on the record's heap variable;
        partiality is *not* encoded here — well-definedness checks are
        emitted separately (and omitted where justified non-locally).
        """
        if isinstance(expr, Var):
            return BVar(record.boogie_var(expr.name))
        if isinstance(expr, IntLit):
            return BIntLit(expr.value)
        if isinstance(expr, BoolLit):
            return BBoolLit(expr.value)
        if isinstance(expr, NullLit):
            return BVar(NULL_CONST)
        if isinstance(expr, PermLit):
            return BRealLit(expr.amount)
        if isinstance(expr, FieldAcc):
            receiver = self.trans_expr(expr.receiver, record)
            value_type = boogie_type_of(self._field_types[expr.field])
            return FuncApp(
                READ_HEAP,
                (value_type,),
                (BVar(record.heap_var), receiver, BVar(record.field_const(expr.field))),
            )
        if isinstance(expr, UnOp):
            operand = self.trans_expr(expr.operand, record)
            op = BUnOpKind.NEG if expr.op is UnOpKind.NEG else BUnOpKind.NOT
            return BUnOp(op, operand)
        if isinstance(expr, CondExp):
            return CondB(
                self.trans_expr(expr.cond, record),
                self.trans_expr(expr.then, record),
                self.trans_expr(expr.otherwise, record),
            )
        if isinstance(expr, BinOp):
            return self._trans_binop(expr, record)
        raise TranslationError(f"unsupported expression {expr!r}")

    _BINOP_MAP = {
        BinOpKind.ADD: BBinOpKind.ADD,
        BinOpKind.SUB: BBinOpKind.SUB,
        BinOpKind.MUL: BBinOpKind.MUL,
        BinOpKind.DIV: BBinOpKind.DIV,
        BinOpKind.MOD: BBinOpKind.MOD,
        BinOpKind.PERM_DIV: BBinOpKind.REAL_DIV,
        BinOpKind.LT: BBinOpKind.LT,
        BinOpKind.LE: BBinOpKind.LE,
        BinOpKind.GT: BBinOpKind.GT,
        BinOpKind.GE: BBinOpKind.GE,
        BinOpKind.EQ: BBinOpKind.EQ,
        BinOpKind.NE: BBinOpKind.NE,
        BinOpKind.AND: BBinOpKind.AND,
        BinOpKind.OR: BBinOpKind.OR,
        BinOpKind.IMPLIES: BBinOpKind.IMPLIES,
    }

    def _trans_binop(self, expr: BinOp, record: TranslationRecord) -> BExpr:
        left = self.trans_expr(expr.left, record)
        right = self.trans_expr(expr.right, record)
        return BBinOp(self._BINOP_MAP[expr.op], left, right)

    # -- well-definedness checks -----------------------------------------------------

    def wd_checks(
        self, expr: Expr, record: TranslationRecord, guard: BExpr = TRUE
    ) -> List[BAssert]:
        """Assert commands checking that e is well-defined.

        Partial subexpressions under lazy operators are checked under the
        guard established by the operator's left operand; permission reads
        consult the record's *effective* wd mask (``WM`` during remcheck).
        """
        if isinstance(expr, (Var, IntLit, BoolLit, NullLit, PermLit)):
            return []
        if isinstance(expr, FieldAcc):
            checks = self.wd_checks(expr.receiver, record, guard)
            value_type = boogie_type_of(self._field_types[expr.field])
            perm = FuncApp(
                READ_MASK,
                (value_type,),
                (
                    BVar(record.effective_wd_mask),
                    self.trans_expr(expr.receiver, record),
                    BVar(record.field_const(expr.field)),
                ),
            )
            checks.append(BAssert(bimplies(guard, BBinOp(BBinOpKind.GT, perm, ZERO_REAL))))
            return checks
        if isinstance(expr, UnOp):
            return self.wd_checks(expr.operand, record, guard)
        if isinstance(expr, CondExp):
            cond_b = self.trans_expr(expr.cond, record)
            checks = self.wd_checks(expr.cond, record, guard)
            checks += self.wd_checks(expr.then, record, band(guard, cond_b))
            checks += self.wd_checks(expr.otherwise, record, band(guard, bnot(cond_b)))
            return checks
        if isinstance(expr, BinOp):
            left_b = self.trans_expr(expr.left, record)
            checks = self.wd_checks(expr.left, record, guard)
            if expr.op is BinOpKind.AND:
                checks += self.wd_checks(expr.right, record, band(guard, left_b))
            elif expr.op is BinOpKind.OR:
                checks += self.wd_checks(expr.right, record, band(guard, bnot(left_b)))
            elif expr.op is BinOpKind.IMPLIES:
                checks += self.wd_checks(expr.right, record, band(guard, left_b))
            else:
                checks += self.wd_checks(expr.right, record, guard)
            if expr.op in (BinOpKind.DIV, BinOpKind.MOD, BinOpKind.PERM_DIV):
                right_b = self.trans_expr(expr.right, record)
                checks.append(
                    BAssert(bimplies(guard, BBinOp(BBinOpKind.NE, right_b, BIntLit(0))))
                )
            return checks
        raise TranslationError(f"unsupported expression {expr!r}")

    # -- mask / heap primitives ----------------------------------------------------

    def _read_mask(self, mask_var: str, receiver: BExpr, field_name: str) -> BExpr:
        value_type = boogie_type_of(self._field_types[field_name])
        return FuncApp(
            READ_MASK,
            (value_type,),
            (BVar(mask_var), receiver, BVar(self.record.field_const(field_name))),
        )

    def _upd_mask(
        self, mask_var: str, receiver: BExpr, field_name: str, amount: BExpr
    ) -> BExpr:
        value_type = boogie_type_of(self._field_types[field_name])
        return FuncApp(
            UPD_MASK,
            (value_type,),
            (BVar(mask_var), receiver, BVar(self.record.field_const(field_name)), amount),
        )

    def _good_mask(self, mask_var: str) -> BExpr:
        return FuncApp(GOOD_MASK, (), (BVar(mask_var),))

    # -- inhale ---------------------------------------------------------------------

    def trans_inhale(
        self,
        assertion: Assertion,
        record: TranslationRecord,
        with_wd: bool,
        builder: _StmtBuilder,
    ) -> AssertionHint:
        """Translate ``inhale A``; returns the assertion's hint tree."""
        if isinstance(assertion, AExpr):
            wd = self.wd_checks(assertion.expr, record) if with_wd else []
            builder.emit(*wd)
            builder.emit(Assume(self.trans_expr(assertion.expr, record)))
            return PureHint(len(wd))
        if isinstance(assertion, Acc):
            return self._trans_inhale_acc(assertion, record, with_wd, builder)
        if isinstance(assertion, SepConj):
            left = self.trans_inhale(assertion.left, record, with_wd, builder)
            right = self.trans_inhale(assertion.right, record, with_wd, builder)
            return SepHint(left, right)
        if isinstance(assertion, Implies):
            wd = self.wd_checks(assertion.cond, record) if with_wd else []
            builder.emit(*wd)
            inner = _StmtBuilder()
            body_hint = self.trans_inhale(assertion.body, record, with_wd, inner)
            builder.emit_if(self.trans_expr(assertion.cond, record), inner.build(), ())
            return ImpliesHint(len(wd), body_hint)
        if isinstance(assertion, CondAssert):
            wd = self.wd_checks(assertion.cond, record) if with_wd else []
            builder.emit(*wd)
            then_builder, else_builder = _StmtBuilder(), _StmtBuilder()
            then_hint = self.trans_inhale(assertion.then, record, with_wd, then_builder)
            else_hint = self.trans_inhale(assertion.otherwise, record, with_wd, else_builder)
            builder.emit_if(
                self.trans_expr(assertion.cond, record),
                then_builder.build(),
                else_builder.build(),
            )
            return CondHint(len(wd), then_hint, else_hint)
        raise TranslationError(f"unsupported assertion {assertion!r}")

    def _trans_inhale_acc(
        self,
        assertion: Acc,
        record: TranslationRecord,
        with_wd: bool,
        builder: _StmtBuilder,
    ) -> AssertionHint:
        wd: List[BAssert] = []
        if with_wd:
            wd += self.wd_checks(assertion.receiver, record)
            wd += self.wd_checks(assertion.perm, record)
        builder.emit(*wd)
        receiver = self.trans_expr(assertion.receiver, record)
        mask_var = record.mask_var
        fastpath = (
            self._options.literal_perm_fastpath
            and isinstance(assertion.perm, PermLit)
            and assertion.perm.amount > 0
        )
        if fastpath:
            amount: BExpr = BRealLit(assertion.perm.amount)
            # Positive literal: nonnegativity is syntactically evident and
            # the null-guard assume degenerates to a plain non-null assume.
            builder.emit(Assume(BBinOp(BBinOpKind.NE, receiver, BVar(NULL_CONST))))
            perm_temp = None
        else:
            temp = self._fresh("tmp", REAL)
            builder.emit(Assign(temp, self.trans_expr(assertion.perm, record)))
            amount = BVar(temp)
            builder.emit(BAssert(BBinOp(BBinOpKind.GE, amount, ZERO_REAL)))
            builder.emit(
                Assume(
                    bimplies(
                        BBinOp(BBinOpKind.GT, amount, ZERO_REAL),
                        BBinOp(BBinOpKind.NE, receiver, BVar(NULL_CONST)),
                    )
                )
            )
            perm_temp = temp
        new_amount = BBinOp(
            BBinOpKind.ADD,
            self._read_mask(mask_var, receiver, assertion.field),
            amount,
        )
        builder.emit(
            Assign(mask_var, self._upd_mask(mask_var, receiver, assertion.field, new_amount))
        )
        builder.emit(Assume(self._good_mask(mask_var)))
        return AccHint(len(wd), perm_temp)

    # -- remcheck / exhale ---------------------------------------------------------

    def trans_remcheck(
        self,
        assertion: Assertion,
        record: TranslationRecord,
        with_wd: bool,
        builder: _StmtBuilder,
    ) -> AssertionHint:
        """Translate the remcheck effect of ``exhale A`` / ``assert A``.

        Permissions are removed from ``record.mask_var``; well-definedness
        checks consult ``record.effective_wd_mask`` (``WM``), implementing
        the two-state remcheck judgement of Fig. 2.
        """
        if isinstance(assertion, AExpr):
            wd = self.wd_checks(assertion.expr, record) if with_wd else []
            builder.emit(*wd)
            builder.emit(BAssert(self.trans_expr(assertion.expr, record)))
            return PureHint(len(wd))
        if isinstance(assertion, Acc):
            return self._trans_remcheck_acc(assertion, record, with_wd, builder)
        if isinstance(assertion, SepConj):
            left = self.trans_remcheck(assertion.left, record, with_wd, builder)
            right = self.trans_remcheck(assertion.right, record, with_wd, builder)
            return SepHint(left, right)
        if isinstance(assertion, Implies):
            wd = self.wd_checks(assertion.cond, record) if with_wd else []
            builder.emit(*wd)
            inner = _StmtBuilder()
            body_hint = self.trans_remcheck(assertion.body, record, with_wd, inner)
            builder.emit_if(self.trans_expr(assertion.cond, record), inner.build(), ())
            return ImpliesHint(len(wd), body_hint)
        if isinstance(assertion, CondAssert):
            wd = self.wd_checks(assertion.cond, record) if with_wd else []
            builder.emit(*wd)
            then_builder, else_builder = _StmtBuilder(), _StmtBuilder()
            then_hint = self.trans_remcheck(assertion.then, record, with_wd, then_builder)
            else_hint = self.trans_remcheck(
                assertion.otherwise, record, with_wd, else_builder
            )
            builder.emit_if(
                self.trans_expr(assertion.cond, record),
                then_builder.build(),
                else_builder.build(),
            )
            return CondHint(len(wd), then_hint, else_hint)
        raise TranslationError(f"unsupported assertion {assertion!r}")

    def _trans_remcheck_acc(
        self,
        assertion: Acc,
        record: TranslationRecord,
        with_wd: bool,
        builder: _StmtBuilder,
    ) -> AssertionHint:
        wd: List[BAssert] = []
        if with_wd:
            wd += self.wd_checks(assertion.receiver, record)
            wd += self.wd_checks(assertion.perm, record)
        builder.emit(*wd)
        receiver = self.trans_expr(assertion.receiver, record)
        mask_var = record.mask_var
        current = self._read_mask(mask_var, receiver, assertion.field)
        fastpath = (
            self._options.literal_perm_fastpath
            and isinstance(assertion.perm, PermLit)
            and assertion.perm.amount > 0
        )
        if fastpath:
            amount: BExpr = BRealLit(assertion.perm.amount)
            builder.emit(BAssert(BBinOp(BBinOpKind.GE, current, amount)))
            builder.emit(
                Assign(
                    mask_var,
                    self._upd_mask(
                        mask_var,
                        receiver,
                        assertion.field,
                        BBinOp(BBinOpKind.SUB, current, amount),
                    ),
                )
            )
            return AccHint(len(wd), None, guarded_update=False)
        temp = self._fresh("tmp", REAL)
        builder.emit(Assign(temp, self.trans_expr(assertion.perm, record)))
        amount = BVar(temp)
        builder.emit(BAssert(BBinOp(BBinOpKind.GE, amount, ZERO_REAL)))
        inner = _StmtBuilder()
        inner.emit(BAssert(BBinOp(BBinOpKind.GE, current, amount)))
        inner.emit(
            Assign(
                mask_var,
                self._upd_mask(
                    mask_var,
                    receiver,
                    assertion.field,
                    BBinOp(BBinOpKind.SUB, current, amount),
                ),
            )
        )
        builder.emit_if(BBinOp(BBinOpKind.NE, amount, ZERO_REAL), inner.build(), ())
        return AccHint(len(wd), temp, guarded_update=True)

    def trans_exhale(
        self,
        assertion: Assertion,
        record: TranslationRecord,
        with_wd: bool,
        builder: _StmtBuilder,
    ) -> ExhaleHint:
        """Translate ``exhale A``: WM snapshot, remcheck, heap havoc."""
        wd_mask_var: Optional[str] = None
        rc_record = record
        if with_wd:
            wd_mask_var = self._fresh("WM", MASK_TYPE)
            builder.emit(Assign(wd_mask_var, BVar(record.mask_var)))
            rc_record = record.with_wd_mask(wd_mask_var)
        rc_hint = self.trans_remcheck(assertion, rc_record, with_wd, builder)
        havoc_heap_var: Optional[str] = None
        if assertion_has_acc(assertion) or self._options.always_emit_exhale_havoc:
            havoc_heap_var = self._fresh("HH", HEAP_TYPE)
            builder.emit(Havoc(havoc_heap_var))
            builder.emit(
                Assume(
                    FuncApp(
                        ID_ON_POSITIVE,
                        (),
                        (BVar(record.heap_var), BVar(havoc_heap_var), BVar(record.mask_var)),
                    )
                )
            )
            builder.emit(Assign(record.heap_var, BVar(havoc_heap_var)))
            builder.emit(Assume(self._good_mask(record.mask_var)))
        return ExhaleHint(with_wd, wd_mask_var, rc_hint, havoc_heap_var)

    # -- statements --------------------------------------------------------------------

    def trans_stmt(
        self, stmt: Stmt, record: TranslationRecord, builder: _StmtBuilder
    ) -> StmtHint:
        """Translate one statement, emitting code and returning its hint."""
        if isinstance(stmt, Skip):
            return SkipHint()
        if isinstance(stmt, Seq):
            first = self.trans_stmt(stmt.first, record, builder)
            second = self.trans_stmt(stmt.second, record, builder)
            return SeqHint(first, second)
        if isinstance(stmt, LocalAssign):
            wd = self.wd_checks(stmt.rhs, record)
            builder.emit(*wd)
            builder.emit(
                Assign(record.boogie_var(stmt.target), self.trans_expr(stmt.rhs, record))
            )
            return AssignHint(len(wd))
        if isinstance(stmt, FieldAssign):
            wd = self.wd_checks(stmt.receiver, record)
            wd += self.wd_checks(stmt.rhs, record)
            builder.emit(*wd)
            receiver = self.trans_expr(stmt.receiver, record)
            builder.emit(
                BAssert(
                    beq(self._read_mask(record.mask_var, receiver, stmt.field), ONE_REAL)
                )
            )
            value_type = boogie_type_of(self._field_types[stmt.field])
            builder.emit(
                Assign(
                    record.heap_var,
                    FuncApp(
                        UPD_HEAP,
                        (value_type,),
                        (
                            BVar(record.heap_var),
                            receiver,
                            BVar(record.field_const(stmt.field)),
                            self.trans_expr(stmt.rhs, record),
                        ),
                    ),
                )
            )
            return FieldAssignHint(len(wd))
        if isinstance(stmt, VarDecl):
            boogie_var = record.boogie_var(stmt.name)
            builder.emit(Havoc(boogie_var))
            return VarDeclHint(boogie_var)
        if isinstance(stmt, Inhale):
            hint = self.trans_inhale(stmt.assertion, record, True, builder)
            return InhaleHint(True, hint)
        if isinstance(stmt, Exhale):
            return self.trans_exhale(stmt.assertion, record, True, builder)
        if isinstance(stmt, AssertStmt):
            return self._trans_assert(stmt, record, builder)
        if isinstance(stmt, If):
            wd = self.wd_checks(stmt.cond, record)
            builder.emit(*wd)
            then_builder, else_builder = _StmtBuilder(), _StmtBuilder()
            then_hint = self.trans_stmt(stmt.then, record, then_builder)
            else_hint = self.trans_stmt(stmt.otherwise, record, else_builder)
            builder.emit_if(
                self.trans_expr(stmt.cond, record),
                then_builder.build(),
                else_builder.build(),
            )
            return IfHint(len(wd), then_hint, else_hint)
        if isinstance(stmt, MethodCall):
            return self._trans_call(stmt, record, builder)
        raise TranslationError(f"unsupported statement {stmt!r}")

    def _trans_assert(
        self, stmt: AssertStmt, record: TranslationRecord, builder: _StmtBuilder
    ) -> AssertHint:
        """``assert A``: remcheck against a scratch mask; M is untouched."""
        wd_mask_var = self._fresh("WM", MASK_TYPE)
        scratch = self._fresh("AM", MASK_TYPE)
        builder.emit(Assign(wd_mask_var, BVar(record.mask_var)))
        builder.emit(Assign(scratch, BVar(record.mask_var)))
        scratch_record = record.with_mask_var(scratch).with_wd_mask(wd_mask_var)
        rc_hint = self.trans_remcheck(stmt.assertion, scratch_record, True, builder)
        return AssertHint(wd_mask_var, scratch, rc_hint)

    def _trans_call(
        self, stmt: MethodCall, record: TranslationRecord, builder: _StmtBuilder
    ) -> CallHint:
        """Method call: exhale pre (wd omitted), havoc targets, inhale post.

        The omission of wd checks is sound only because the callee's
        procedure checks its specification's well-formedness (Sec. 4.2);
        the emitted :class:`CallHint` records this dependency explicitly.
        """
        callee = self._program.method(stmt.method)
        for arg in stmt.args:
            if not isinstance(arg, Var):
                raise TranslationError(
                    f"call to {stmt.method!r}: only variables are supported as "
                    f"arguments (rewrite `m(e)` to `var t := e; m(t)`)"
                )
        arg_map = {
            formal: arg for (formal, _), arg in zip(callee.args, stmt.args)
        }
        pre = substitute_assertion(callee.pre, arg_map)
        with_wd = self._options.wd_checks_at_calls
        exhale_hint = self.trans_exhale(pre, record, with_wd, builder)
        target_boogie_vars = tuple(record.boogie_var(t) for t in stmt.targets)
        for boogie_var in target_boogie_vars:
            builder.emit(Havoc(boogie_var))
        ret_map = dict(arg_map)
        for (ret_formal, _), target in zip(callee.returns, stmt.targets):
            ret_map[ret_formal] = Var(target)
        post = substitute_assertion(callee.post, ret_map)
        post_hint = self.trans_inhale(post, record, with_wd, builder)
        return CallHint(
            callee=stmt.method,
            exhale_pre=exhale_hint,
            target_boogie_vars=target_boogie_vars,
            inhale_post=InhaleHint(with_wd, post_hint),
        )

    # -- whole method -----------------------------------------------------------------

    def translate_method(self) -> TranslatedMethod:
        """Translate the whole method: init, C1 branch, C2 obligation."""
        method = self._method
        builder = _StmtBuilder()
        # Init: empty mask, consistent by construction.
        builder.emit(Assign(MASK_VAR, BVar(ZERO_MASK_CONST)))
        builder.emit(Assume(self._good_mask(MASK_VAR)))
        init_cmd_count = 2
        # C1: spec well-formedness inside a dying nondeterministic branch.
        wf_builder = _StmtBuilder()
        wf_pre_hint = self.trans_inhale(method.pre, self.record, True, wf_builder)
        havoc_returns = tuple(self.record.boogie_var(r) for r in method.return_names)
        for boogie_var in havoc_returns:
            wf_builder.emit(Havoc(boogie_var))
        wf_post_hint = self.trans_inhale(method.post, self.record, True, wf_builder)
        wf_builder.emit(Assume(FALSE))
        builder.emit_if(None, wf_builder.build(), ())
        wf_hint = SpecWellFormednessHint(
            inhale_pre=InhaleHint(True, wf_pre_hint),
            havoc_return_vars=havoc_returns,
            inhale_post=InhaleHint(True, wf_post_hint),
        )
        # C2: inhale pre; body; exhale post (only for methods with a body).
        body_pre_hint: Optional[InhaleHint] = None
        body_hint: Optional[StmtHint] = None
        body_post_hint: Optional[ExhaleHint] = None
        if method.body is not None:
            body_pre_hint = InhaleHint(
                True, self.trans_inhale(method.pre, self.record, True, builder)
            )
            body_hint = self.trans_stmt(method.body, self.record, builder)
            body_post_hint = self.trans_exhale(method.post, self.record, True, builder)
        locals_: List[Tuple[str, BType]] = [
            (self.record.boogie_var(name), boogie_type_of(typ))
            for name, typ in sorted(self._var_types.items())
        ]
        locals_ += self._extra_locals
        procedure = Procedure(
            name=procedure_name(method.name), locals=tuple(locals_), body=builder.build()
        )
        hint = MethodHint(
            method=method.name,
            init_cmd_count=init_cmd_count,
            wellformedness=wf_hint,
            body_inhale_pre=body_pre_hint,
            body=body_hint,
            body_exhale_post=body_post_hint,
        )
        return TranslatedMethod(method.name, procedure, self.record, hint)


def procedure_name(method_name: str) -> str:
    """The Boogie procedure name generated for a Viper method."""
    return f"m_{method_name}"


def translate_method(
    program: Program,
    type_info: ProgramTypeInfo,
    method: MethodDecl,
    options: Optional[TranslationOptions] = None,
    background: Optional[BackgroundTheory] = None,
) -> TranslatedMethod:
    """Translate a single method into its Boogie procedure plus hints.

    This is the per-unit entry point of the incremental pipeline: a
    method's translation reads only the method itself, its callees'
    *interfaces* (pre/post, substituted at call sites), and the program's
    field declarations — which is exactly what the unit cache key in
    :mod:`repro.pipeline.units` digests.
    """
    if options is None:
        options = TranslationOptions()
    if background is None:
        background = build_background(type_info.field_types)
    translator = _MethodTranslator(program, type_info, background, method, options)
    return translator.translate_method()


def background_boogie_program(
    background: BackgroundTheory,
    procedures: Tuple[Procedure, ...] = (),
) -> BoogieProgram:
    """The Boogie program skeleton: background theory, globals, procedures.

    With no procedures this is the shared prelude every method's
    procedure is checked against — the incremental service renders it
    once and splices cached per-procedure texts after it.
    """
    return BoogieProgram(
        type_decls=background.type_decls,
        consts=background.consts,
        globals=(
            GlobalVarDecl(HEAP_VAR, HEAP_TYPE),
            GlobalVarDecl(MASK_VAR, MASK_TYPE),
        ),
        functions=background.functions,
        axioms=background.axioms,
        procedures=procedures,
    )


def assemble_translation(
    program: Program,
    type_info: ProgramTypeInfo,
    methods: Dict[str, TranslatedMethod],
    options: TranslationOptions,
    background: Optional[BackgroundTheory] = None,
) -> TranslationResult:
    """Assemble per-method translations into a whole-program result.

    ``methods`` must hold one :class:`TranslatedMethod` per program method
    (freshly translated or served from the unit cache); procedures are
    emitted in declaration order regardless of dict order.
    """
    if background is None:
        background = build_background(type_info.field_types)
    procedures = tuple(methods[m.name].procedure for m in program.methods)
    boogie_program = background_boogie_program(background, procedures)
    return TranslationResult(
        viper_program=program,
        type_info=type_info,
        background=background,
        boogie_program=boogie_program,
        methods=methods,
        options=options,
    )


def translate_program(
    program: Program,
    type_info: ProgramTypeInfo,
    options: Optional[TranslationOptions] = None,
) -> TranslationResult:
    """Translate a type-checked Viper program into a Boogie program."""
    if options is None:
        options = TranslationOptions()
    background = build_background(type_info.field_types)
    methods: Dict[str, TranslatedMethod] = {
        method.name: translate_method(
            program, type_info, method, options, background=background
        )
        for method in program.methods
    }
    return assemble_translation(
        program, type_info, methods, options, background=background
    )
