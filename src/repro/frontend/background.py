"""Background theory G and its standard interpretation (Sec. 4.4).

Trust: **trusted** — the standard interpretation used to check background
axioms (Sec. 4.4).

The Viper-to-Boogie translation always emits a fixed set of global Boogie
declarations: uninterpreted types for references, fields, heaps and masks;
``read``/``upd`` functions (the desugared polymorphic maps); the
``GoodMask`` and ``idOnPositive`` functions; the ``null`` and ``ZeroMask``
constants; and one ``Field τ`` constant per Viper field.

This module also constructs the *standard interpretation* used by the final
theorem (Fig. 9 / Fig. 10): heap and mask carriers are **partial maps**
represented by :class:`~repro.boogie.values.FrozenMap`; ``read`` returns a
type-appropriate default for keys outside the domain.  Admitting the empty
map as a heap value is exactly how the paper breaks the impredicativity
circularity of Boogie's polymorphic maps.  ``check_axioms_bounded``
(from :mod:`repro.boogie.interp`) validates that this interpretation
satisfies all emitted axioms.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..boogie.ast import (
    AxiomDecl,
    band,
    BBinOp,
    BBinOpKind,
    beq,
    bimplies,
    BOOL,
    BRealLit,
    BType,
    BVar,
    ConstDecl,
    Forall,
    FuncApp,
    FuncDecl,
    REAL,
    TCon,
    TVar,
    TypeConDecl,
)
from ..boogie.interp import Interpretation, fixed_carrier
from ..boogie.values import (
    BValue,
    BVBool,
    BVInt,
    BVReal,
    FrozenMap,
    UValue,
    as_b_real,
)
from ..viper.ast import Program, Type
from ..viper.state import ViperState
from ..viper.values import NULL, Value, VBool, VInt, VNull, VPerm, VRef
from .records import boogie_type_of, field_type_con, REF_TYPE

# Canonical names of the background components.
HEAP_TYPE = TCon("HeapType")
MASK_TYPE = TCon("MaskType")
READ_HEAP = "readHeap"
UPD_HEAP = "updHeap"
READ_MASK = "readMask"
UPD_MASK = "updMask"
GOOD_MASK = "GoodMask"
ID_ON_POSITIVE = "idOnPositive"
NULL_CONST = "null"
ZERO_MASK_CONST = "ZeroMask"


def field_const_name(field_name: str) -> str:
    """The Boogie constant name representing a Viper field."""
    return f"field_{field_name}"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackgroundTheory:
    """The background declarations G plus bookkeeping for the program."""

    type_decls: Tuple[TypeConDecl, ...]
    consts: Tuple[ConstDecl, ...]
    functions: Tuple[FuncDecl, ...]
    axioms: Tuple[AxiomDecl, ...]
    field_types: Mapping[str, Type]

    @property
    def field_consts(self) -> Dict[str, str]:
        return {name: field_const_name(name) for name in self.field_types}


def build_background(field_types: Mapping[str, Type]) -> BackgroundTheory:
    """Build the background declarations for a program's fields."""
    type_decls = (
        TypeConDecl("Ref", 0),
        TypeConDecl("Field", 1),
        TypeConDecl("HeapType", 0),
        TypeConDecl("MaskType", 0),
    )
    consts = [ConstDecl(NULL_CONST, REF_TYPE)]
    for name in sorted(field_types):
        consts.append(
            ConstDecl(field_const_name(name), field_type_con(field_types[name]), unique=True)
        )
    consts.append(ConstDecl(ZERO_MASK_CONST, MASK_TYPE))
    t = TVar("T")
    field_t = TCon("Field", (t,))
    functions = (
        FuncDecl(READ_HEAP, ("T",), (HEAP_TYPE, REF_TYPE, field_t), t),
        FuncDecl(UPD_HEAP, ("T",), (HEAP_TYPE, REF_TYPE, field_t, t), HEAP_TYPE),
        FuncDecl(READ_MASK, ("T",), (MASK_TYPE, REF_TYPE, field_t), REAL),
        FuncDecl(UPD_MASK, ("T",), (MASK_TYPE, REF_TYPE, field_t, REAL), MASK_TYPE),
        FuncDecl(GOOD_MASK, (), (MASK_TYPE,), BOOL),
        FuncDecl(ID_ON_POSITIVE, (), (HEAP_TYPE, HEAP_TYPE, MASK_TYPE), BOOL),
    )
    axioms = _background_axioms()
    return BackgroundTheory(
        type_decls=type_decls,
        consts=tuple(consts),
        functions=functions,
        axioms=axioms,
        field_types=dict(field_types),
    )


def _background_axioms() -> Tuple[AxiomDecl, ...]:
    t = TVar("T")
    field_t = TCon("Field", (t,))
    h, h2, m = BVar("h"), BVar("h2"), BVar("m")
    r, r2, f, f2 = BVar("r"), BVar("r2"), BVar("f"), BVar("f2")
    v, p = BVar("v"), BVar("p")
    zero = BRealLit(Fraction(0))
    one = BRealLit(Fraction(1))

    def read_heap(heap, ref, fld):
        return FuncApp(READ_HEAP, (t,), (heap, ref, fld))

    def read_mask(mask, ref, fld):
        return FuncApp(READ_MASK, (t,), (mask, ref, fld))

    heap_upd = FuncApp(UPD_HEAP, (t,), (h, r, f, v))
    mask_upd = FuncApp(UPD_MASK, (t,), (m, r, f, p))
    distinct = BBinOp(
        BBinOpKind.OR, BBinOp(BBinOpKind.NE, r, r2), BBinOp(BBinOpKind.NE, f, f2)
    )
    axioms = (
        AxiomDecl(
            Forall(
                ("T",),
                (("h", HEAP_TYPE), ("r", REF_TYPE), ("f", field_t), ("v", t)),
                beq(read_heap(heap_upd, r, f), v),
            ),
            comment="heap read-over-update (same location)",
        ),
        AxiomDecl(
            Forall(
                ("T",),
                (
                    ("h", HEAP_TYPE),
                    ("r", REF_TYPE),
                    ("f", field_t),
                    ("v", t),
                    ("r2", REF_TYPE),
                    ("f2", field_t),
                ),
                bimplies(distinct, beq(read_heap(heap_upd, r2, f2), read_heap(h, r2, f2))),
            ),
            comment="heap read-over-update (other location)",
        ),
        AxiomDecl(
            Forall(
                ("T",),
                (("m", MASK_TYPE), ("r", REF_TYPE), ("f", field_t), ("p", REAL)),
                beq(read_mask(mask_upd, r, f), p),
            ),
            comment="mask read-over-update (same location)",
        ),
        AxiomDecl(
            Forall(
                ("T",),
                (
                    ("m", MASK_TYPE),
                    ("r", REF_TYPE),
                    ("f", field_t),
                    ("p", REAL),
                    ("r2", REF_TYPE),
                    ("f2", field_t),
                ),
                bimplies(distinct, beq(read_mask(mask_upd, r2, f2), read_mask(m, r2, f2))),
            ),
            comment="mask read-over-update (other location)",
        ),
        AxiomDecl(
            Forall(
                ("T",),
                (("r", REF_TYPE), ("f", field_t)),
                beq(read_mask(BVar(ZERO_MASK_CONST), r, f), zero),
            ),
            comment="ZeroMask holds no permission",
        ),
        AxiomDecl(
            Forall(
                ("T",),
                (("m", MASK_TYPE), ("r", REF_TYPE), ("f", field_t)),
                bimplies(
                    FuncApp(GOOD_MASK, (), (m,)),
                    band(
                        BBinOp(BBinOpKind.GE, read_mask(m, r, f), zero),
                        BBinOp(BBinOpKind.LE, read_mask(m, r, f), one),
                    ),
                ),
            ),
            comment="GoodMask implies a consistent permission mask",
        ),
        AxiomDecl(
            Forall(
                ("T",),
                (
                    ("h", HEAP_TYPE),
                    ("h2", HEAP_TYPE),
                    ("m", MASK_TYPE),
                    ("r", REF_TYPE),
                    ("f", field_t),
                ),
                bimplies(
                    band(
                        FuncApp(ID_ON_POSITIVE, (), (h, h2, m)),
                        BBinOp(BBinOpKind.GT, read_mask(m, r, f), zero),
                    ),
                    beq(read_heap(h2, r, f), read_heap(h, r, f)),
                ),
            ),
            comment="idOnPositive preserves permissioned locations",
        ),
    )
    return axioms


# ---------------------------------------------------------------------------
# Value correspondence (Viper values ↔ Boogie values)
# ---------------------------------------------------------------------------

NULL_ADDRESS = 0


def to_boogie_value(value: Value) -> BValue:
    """The Boogie representation of a Viper value."""
    if isinstance(value, VInt):
        return BVInt(value.value)
    if isinstance(value, VBool):
        return BVBool(value.value)
    if isinstance(value, VNull):
        return UValue("Ref", NULL_ADDRESS)
    if isinstance(value, VRef):
        return UValue("Ref", value.address)
    if isinstance(value, VPerm):
        return BVReal(value.amount)
    raise TypeError(f"unknown Viper value {value!r}")


def from_boogie_value(value: BValue, viper_type: Type) -> Value:
    """The Viper value represented by a Boogie value of the given type."""
    if viper_type is Type.INT:
        if isinstance(value, BVInt):
            return VInt(value.value)
    if viper_type is Type.BOOL:
        if isinstance(value, BVBool):
            return VBool(value.value)
    if viper_type is Type.REF:
        if isinstance(value, UValue) and value.type_name == "Ref":
            address = value.payload
            return NULL if address == NULL_ADDRESS else VRef(address)
    if viper_type is Type.PERM:
        if isinstance(value, (BVReal, BVInt)):
            return VPerm(as_b_real(value))
    raise TypeError(f"{value!r} does not represent a Viper {viper_type}")


def values_correspond(viper_value: Value, boogie_value: BValue) -> bool:
    """Whether a Boogie value represents a Viper value (numeric-coercive)."""
    if isinstance(viper_value, (VInt, VPerm)) and isinstance(
        boogie_value, (BVInt, BVReal)
    ):
        amount = (
            Fraction(viper_value.value)
            if isinstance(viper_value, VInt)
            else viper_value.amount
        )
        return amount == as_b_real(boogie_value)
    return to_boogie_value(viper_value) == boogie_value


def heap_to_boogie(state: ViperState) -> UValue:
    """Encode a Viper heap as a Boogie heap carrier element.

    Only explicitly-stored locations enter the partial map; unmapped
    locations agree via the default-valued ``read``.
    """
    payload = {}
    for (address, field_name), value in state.heap.items():
        payload[(address, field_name)] = to_boogie_value(value)
    return UValue("HeapType", FrozenMap(payload))


def mask_to_boogie(state: ViperState) -> UValue:
    """Encode a Viper permission mask as a Boogie mask carrier element."""
    payload = {}
    for (address, field_name), amount in state.mask.items():
        if amount != 0:
            payload[(address, field_name)] = amount
    return UValue("MaskType", FrozenMap(payload))


# ---------------------------------------------------------------------------
# Standard interpretation (Sec. 4.4)
# ---------------------------------------------------------------------------


def _field_default(field_types: Mapping[str, Type], field_name: str) -> BValue:
    viper_type = field_types.get(field_name, Type.INT)
    if viper_type is Type.INT:
        return BVInt(0)
    if viper_type is Type.BOOL:
        return BVBool(False)
    if viper_type is Type.REF:
        return UValue("Ref", NULL_ADDRESS)
    return BVReal(Fraction(0))


def _as_map(value: BValue, kind: str) -> FrozenMap:
    if isinstance(value, UValue) and value.type_name == kind:
        payload = value.payload
        if isinstance(payload, FrozenMap):
            return payload
    raise TypeError(f"expected a {kind} carrier element, got {value!r}")


def standard_interpretation(
    field_types: Mapping[str, Type],
    ref_addresses: Sequence[int] = (NULL_ADDRESS, 1, 2),
) -> Interpretation:
    """The interpretation 𝒯, ℱ justifying the background theory.

    Heap and mask carriers are partial maps keyed by ``(address, field)``;
    ``readHeap`` returns the field's typed default outside the domain and
    ``readMask`` returns zero — the circularity-free model of Sec. 4.4.
    """
    refs = tuple(UValue("Ref", a) for a in ref_addresses)
    field_names = sorted(field_types)

    def field_carrier(type_args):
        if len(type_args) != 1:
            return ()
        wanted = type_args[0]
        return tuple(
            UValue("Field", name)
            for name in field_names
            if boogie_type_of(field_types[name]) == wanted
        )

    def heap_carrier(_type_args):
        sample = [UValue("HeapType", FrozenMap())]
        for name in field_names[:2]:
            sample.append(
                UValue("HeapType", FrozenMap({(1, name): _field_default(field_types, name)}))
            )
        return tuple(sample)

    def mask_carrier(_type_args):
        sample = [UValue("MaskType", FrozenMap())]
        if field_names:
            loc = (1, field_names[0])
            sample.append(UValue("MaskType", FrozenMap({loc: Fraction(1)})))
            sample.append(UValue("MaskType", FrozenMap({loc: Fraction(1, 2)})))
            # An inconsistent mask keeps the GoodMask axiom non-vacuous.
            sample.append(UValue("MaskType", FrozenMap({loc: Fraction(3, 2)})))
        return tuple(sample)

    def read_heap(_targs, args):
        heap, ref, fld = args
        key = (ref.payload, fld.payload)
        payload = _as_map(heap, "HeapType")
        if key in payload:
            return payload.get(key)
        return _field_default(field_types, fld.payload)

    def upd_heap(_targs, args):
        heap, ref, fld, value = args
        payload = _as_map(heap, "HeapType")
        return UValue("HeapType", payload.set((ref.payload, fld.payload), value))

    def read_mask(_targs, args):
        mask, ref, fld = args
        payload = _as_map(mask, "MaskType")
        amount = payload.get((ref.payload, fld.payload), Fraction(0))
        return BVReal(amount)

    def upd_mask(_targs, args):
        mask, ref, fld, value = args
        payload = _as_map(mask, "MaskType")
        return UValue(
            "MaskType", payload.set((ref.payload, fld.payload), as_b_real(value))
        )

    def good_mask(_targs, args):
        payload = _as_map(args[0], "MaskType")
        return BVBool(all(Fraction(0) <= p <= Fraction(1) for _, p in payload.items()))

    def id_on_positive(_targs, args):
        h_payload = _as_map(args[0], "HeapType")
        h2_payload = _as_map(args[1], "HeapType")
        m_payload = _as_map(args[2], "MaskType")
        keys = set(h_payload.keys()) | set(h2_payload.keys())
        for key in keys:
            address, field_name = key
            if m_payload.get(key, Fraction(0)) > 0:
                default = _field_default(field_types, field_name)
                if h_payload.get(key, default) != h2_payload.get(key, default):
                    return BVBool(False)
        return BVBool(True)

    return Interpretation(
        carriers={
            "Ref": fixed_carrier(refs),
            "Field": field_carrier,
            "HeapType": heap_carrier,
            "MaskType": mask_carrier,
        },
        functions={
            READ_HEAP: read_heap,
            UPD_HEAP: upd_heap,
            READ_MASK: read_mask,
            UPD_MASK: upd_mask,
            GOOD_MASK: good_mask,
            ID_ON_POSITIVE: id_on_positive,
        },
        type_universe=(boogie_type_of(Type.INT), boogie_type_of(Type.BOOL), REF_TYPE, REAL),
    )


def constant_valuation(background: BackgroundTheory) -> Dict[str, BValue]:
    """Values of the declared constants in the standard interpretation."""
    values: Dict[str, BValue] = {
        NULL_CONST: UValue("Ref", NULL_ADDRESS),
        ZERO_MASK_CONST: UValue("MaskType", FrozenMap()),
    }
    for field_name in background.field_types:
        values[field_const_name(field_name)] = UValue("Field", field_name)
    return values
