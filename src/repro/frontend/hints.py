"""Hints: the instrumentation interface of the proof-producing translator.

Trust: **untrusted-but-checked** — hints only steer certificate *search*;
the kernel re-checks every claim they lead to.

The paper instruments fewer than 500 lines of the existing Viper-to-Boogie
implementation to emit *hints* alongside the generated Boogie code
(Sec. 4.3).  Hints come in two kinds:

1. hints indicating **which of multiple diverse translations** was used
   (e.g. whether well-definedness checks were omitted, whether the
   nondeterministic heap havoc was emitted, whether the permission-literal
   fast path was taken), and
2. hints supplying **rule parameters** (names of the auxiliary Boogie
   variables introduced — ``tmp``, ``WM``, ``H'`` in Fig. 3/Fig. 8 — which
   the tactic needs to adjust translation records and auxiliary-variable
   maps).

Hints are *untrusted*: the certification kernel checks every claim a hint
makes against the Boogie AST.  A wrong hint can only make proof generation
fail, never make a wrong proof check.

The hint tree mirrors the Viper statement structure, so the tactic can walk
statement and hint trees in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Assertion-level hints (inhale / remcheck translations)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PureHint:
    """A pure assertion was translated as wd-checks + assume/assert."""

    wd_check_count: int  # number of emitted well-definedness assert commands


@dataclass(frozen=True)
class AccHint:
    """An accessibility predicate translation.

    ``perm_temp_var`` is the auxiliary variable holding the permission
    amount (``tmp`` in Fig. 3) — ``None`` when the translator took the
    positive-literal fast path, which omits both the temporary and the
    nonnegativity check (a *diverse translation*, Sec. 3.4 / App. B).
    ``guarded_update`` records whether the mask update was wrapped in an
    ``if (tmp != 0)`` (exhale only).
    """

    wd_check_count: int
    perm_temp_var: Optional[str]
    guarded_update: bool = False


@dataclass(frozen=True)
class SepHint:
    left: "AssertionHint"
    right: "AssertionHint"


@dataclass(frozen=True)
class ImpliesHint:
    wd_check_count: int
    body: "AssertionHint"


@dataclass(frozen=True)
class CondHint:
    wd_check_count: int
    then: "AssertionHint"
    otherwise: "AssertionHint"


AssertionHint = Union[PureHint, AccHint, SepHint, ImpliesHint, CondHint]


# ---------------------------------------------------------------------------
# Statement-level hints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssignHint:
    wd_check_count: int


@dataclass(frozen=True)
class FieldAssignHint:
    wd_check_count: int


@dataclass(frozen=True)
class VarDeclHint:
    boogie_var: str


@dataclass(frozen=True)
class InhaleHint:
    #: Whether well-definedness checks were emitted (False at call sites —
    #: the non-local optimisation of Sec. 4.2).
    with_wd_checks: bool
    assertion: AssertionHint


@dataclass(frozen=True)
class ExhaleHint:
    with_wd_checks: bool
    #: Auxiliary mask variable capturing the evaluation state (``WM``);
    #: ``None`` when the translator omitted the snapshot (wd checks off).
    wd_mask_var: Optional[str]
    assertion: AssertionHint
    #: Temp heap variable for the nondeterministic assignment (``H'``);
    #: ``None`` when the havoc was omitted (no acc in the assertion).
    havoc_heap_var: Optional[str]


@dataclass(frozen=True)
class AssertHint:
    wd_mask_var: str
    #: Scratch mask the remcheck removal is applied to (M stays untouched).
    scratch_mask_var: str
    assertion: AssertionHint


@dataclass(frozen=True)
class IfHint:
    wd_check_count: int
    then: "StmtHint"
    otherwise: "StmtHint"


@dataclass(frozen=True)
class SeqHint:
    first: "StmtHint"
    second: "StmtHint"


@dataclass(frozen=True)
class SkipHint:
    pass


@dataclass(frozen=True)
class CallHint:
    """A method call: exhale pre (wd omitted), havoc targets, inhale post.

    ``callee`` names the method whose C1 (spec well-formedness) certificate
    this translation *depends on* — the formal dependency tracking of the
    non-local optimisation (Sec. 4.2, Fig. 10).
    """

    callee: str
    exhale_pre: ExhaleHint
    target_boogie_vars: Tuple[str, ...]
    inhale_post: InhaleHint


StmtHint = Union[
    AssignHint,
    FieldAssignHint,
    VarDeclHint,
    InhaleHint,
    ExhaleHint,
    AssertHint,
    IfHint,
    SeqHint,
    SkipHint,
    CallHint,
]


# ---------------------------------------------------------------------------
# Method-level hints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpecWellFormednessHint:
    """Hints for the C1 section of the procedure (spec well-formedness)."""

    inhale_pre: InhaleHint
    havoc_return_vars: Tuple[str, ...]
    inhale_post: InhaleHint


@dataclass(frozen=True)
class MethodHint:
    """All hints for one method's translation.

    The procedure has the shape::

        <init: M := ZeroMask; assume GoodMask(M)>
        if (*) { <C1: spec well-formedness checks>; assume false; }
        <C2: inhale pre; body; exhale post>

    The nondeterministic branch checks spec well-formedness and then dies
    (``assume false``), leaving the main path unconstrained — so correctness
    of the procedure yields both C1 and C2 of Fig. 10 independently.
    Abstract methods (no body) have only the C1 section; the three
    ``body_*`` fields are then ``None``.
    """

    method: str
    #: Number of simple commands in the init section (mask reset etc.).
    init_cmd_count: int
    wellformedness: SpecWellFormednessHint
    body_inhale_pre: Optional[InhaleHint]
    body: Optional[StmtHint]
    body_exhale_post: Optional[ExhaleHint]


def count_hint_nodes(hint: object) -> int:
    """Number of hint nodes (a harness metric for instrumentation output)."""
    if isinstance(hint, (SepHint,)):
        return 1 + count_hint_nodes(hint.left) + count_hint_nodes(hint.right)
    if isinstance(hint, ImpliesHint):
        return 1 + count_hint_nodes(hint.body)
    if isinstance(hint, CondHint):
        return 1 + count_hint_nodes(hint.then) + count_hint_nodes(hint.otherwise)
    if isinstance(hint, (InhaleHint,)):
        return 1 + count_hint_nodes(hint.assertion)
    if isinstance(hint, ExhaleHint):
        return 1 + count_hint_nodes(hint.assertion)
    if isinstance(hint, AssertHint):
        return 1 + count_hint_nodes(hint.assertion)
    if isinstance(hint, IfHint):
        return 1 + count_hint_nodes(hint.then) + count_hint_nodes(hint.otherwise)
    if isinstance(hint, SeqHint):
        return 1 + count_hint_nodes(hint.first) + count_hint_nodes(hint.second)
    if isinstance(hint, CallHint):
        return (
            1
            + count_hint_nodes(hint.exhale_pre)
            + count_hint_nodes(hint.inhale_post)
        )
    if isinstance(hint, MethodHint):
        return (
            1
            + count_hint_nodes(hint.wellformedness.inhale_pre)
            + count_hint_nodes(hint.wellformedness.inhale_post)
            + count_hint_nodes(hint.body_inhale_pre)
            + count_hint_nodes(hint.body)
            + count_hint_nodes(hint.body_exhale_post)
        )
    return 1
