"""Translation records (Sec. 4.1).

Trust: **trusted** — dataclass definitions shared across the boundary; the
kernel states judgements over them.

A *translation record* ``Tr`` specifies how the key Viper components are
represented in the Boogie state:

* ``var_map`` — Viper variables to their Boogie counterparts,
* ``heap_var`` / ``mask_var`` — the Boogie variables holding the Viper heap
  and permission mask (``H`` and ``M`` in Fig. 3),
* ``wd_mask_var`` — when a separate expression-evaluation state is active
  (during a ``remcheck``), the Boogie variable holding its mask (``WM``);
  the heap of the evaluation state always coincides with ``heap_var``
  because ``remcheck`` never changes the heap,
* ``field_consts`` — Viper fields to the Boogie constants representing them.

Records are immutable; the simulation proof adjusts the record as the
translation progresses (e.g. swapping in ``WM`` at the start of an exhale),
which is one of the stylised state-relation adjustments of Sec. 4.1.

This module also hosts the *expression-type synthesiser* shared by the
translator and the certification kernel: the Boogie encoding of a field
access needs the field's value type as the ``read`` type argument, and
numeric operators need to know whether they act on ``int`` or ``real``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..boogie.ast import BOOL, BType, INT, REAL, TCon
from ..viper.ast import (
    BinOp,
    BinOpKind,
    BoolLit,
    CondExp,
    Expr,
    FieldAcc,
    IntLit,
    NullLit,
    PermLit,
    Type,
    UnOp,
    UnOpKind,
    Var,
)

#: The Boogie type constructor for Viper references.
REF_TYPE = TCon("Ref")


def boogie_type_of(viper_type: Type) -> BType:
    """The Boogie representation type of a Viper type."""
    if viper_type is Type.INT:
        return INT
    if viper_type is Type.BOOL:
        return BOOL
    if viper_type is Type.REF:
        return REF_TYPE
    if viper_type is Type.PERM:
        return REAL
    raise ValueError(f"unknown Viper type {viper_type!r}")


def field_type_con(viper_type: Type) -> BType:
    """The ``Field τ`` type of a field constant."""
    return TCon("Field", (boogie_type_of(viper_type),))


@dataclass(frozen=True)
class TranslationRecord:
    """Tr: how Viper state components live in the Boogie state (Sec. 4.1)."""

    var_map: Mapping[str, str]
    heap_var: str
    mask_var: str
    field_consts: Mapping[str, str]
    #: Mask variable of the distinguished expression-evaluation state, when
    #: one is active (M⁰(Tr)); ``None`` means eval state == reduction state.
    wd_mask_var: Optional[str] = None

    def boogie_var(self, viper_var: str) -> str:
        try:
            return self.var_map[viper_var]
        except KeyError:
            raise KeyError(f"Viper variable {viper_var!r} not in translation record") from None

    def field_const(self, field_name: str) -> str:
        try:
            return self.field_consts[field_name]
        except KeyError:
            raise KeyError(f"Viper field {field_name!r} not in translation record") from None

    @property
    def effective_wd_mask(self) -> str:
        """The mask used for well-definedness checks (WM during remcheck)."""
        return self.wd_mask_var if self.wd_mask_var is not None else self.mask_var

    def with_wd_mask(self, wd_mask_var: Optional[str]) -> "TranslationRecord":
        return replace(self, wd_mask_var=wd_mask_var)

    def with_mask_var(self, mask_var: str) -> "TranslationRecord":
        """Redirect the reduction-state mask (used by ``assert`` statements,
        whose remcheck removes permissions from a scratch mask)."""
        return replace(self, mask_var=mask_var)

    def with_var(self, viper_var: str, boogie_var: str) -> "TranslationRecord":
        var_map = dict(self.var_map)
        var_map[viper_var] = boogie_var
        return replace(self, var_map=var_map)


# Re-exported from the Viper package: type synthesis is a language-level
# concern shared by the translator and the extension passes.
from ..viper.exprtype import viper_expr_type  # noqa: E402, F401
