"""Active health tracking: probe, eject, readmit, and notice drains.

Trust: **advisory** — health states steer placement, never verdicts; a
wrong state costs latency (a skipped healthy node) or a retry (a routed
dead node), not correctness.

One async loop probes every node's ``GET /healthz`` each interval:

* ``200 {"status": "ok"}``       → **up** (after ``readmit_after``
  consecutive successes, if the node was down);
* ``503 {"status": "draining"}`` → **draining** — the node announced a
  SIGTERM drain while its socket is still open (the server holds the
  listener for ``drain_notice`` exactly so this probe can see it), so
  the router stops sending *new* work before connects start failing;
* connect/timeout failure        → **down** after ``eject_after``
  consecutive failures.

The router also reports its own proxy failures through
:meth:`HealthMonitor.note_failure` (passive detection) so a crashed node
is ejected on the first failed request, not on the next probe tick.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .upstream import Upstream, UpstreamError

UP = "up"
DRAINING = "draining"
DOWN = "down"


@dataclass
class NodeHealth:
    """The tracked health of one node."""

    state: str = UP
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    probes: int = 0
    transitions: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
            "transitions": list(self.transitions[-8:]),
        }


class HealthMonitor:
    """Probe-driven health states for a set of upstreams."""

    def __init__(
        self,
        upstreams: Dict[str, Upstream],
        interval: float = 0.25,
        probe_timeout: float = 1.0,
        eject_after: int = 1,
        readmit_after: int = 1,
    ):
        self.upstreams = upstreams
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.eject_after = max(1, eject_after)
        self.readmit_after = max(1, readmit_after)
        self.health: Dict[str, NodeHealth] = {
            name: NodeHealth() for name in upstreams
        }

    # -- queries -----------------------------------------------------------

    def state(self, name: str) -> str:
        return self.health[name].state

    def is_routable(self, name: str) -> bool:
        return self.health[name].state == UP

    def routable(self) -> List[str]:
        """Node names currently accepting new work (insertion order)."""
        return [n for n, h in self.health.items() if h.state == UP]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {name: h.to_dict() for name, h in self.health.items()}

    # -- state transitions -------------------------------------------------

    def _set_state(self, name: str, state: str) -> None:
        node = self.health[name]
        if node.state != state:
            node.transitions.append(f"{node.state}->{state}")
            node.state = state

    def note_failure(self, name: str) -> None:
        """Passive ejection: a proxied request failed at transport level."""
        node = self.health[name]
        node.consecutive_successes = 0
        node.consecutive_failures += 1
        if node.consecutive_failures >= self.eject_after:
            self._set_state(name, DOWN)

    def note_success(self, name: str) -> None:
        node = self.health[name]
        node.consecutive_failures = 0
        node.consecutive_successes += 1
        if node.state == DOWN and node.consecutive_successes >= self.readmit_after:
            self._set_state(name, UP)
        elif node.state == DRAINING:
            # A drain never un-announces itself on the same process; a
            # fresh "ok" means the node restarted — readmit it.
            self._set_state(name, UP)

    def note_draining(self, name: str) -> None:
        node = self.health[name]
        node.consecutive_failures = 0
        self._set_state(name, DRAINING)

    # -- probing -----------------------------------------------------------

    async def probe_node(self, name: str) -> str:
        """Probe one node and fold the result into its state."""
        upstream = self.upstreams[name]
        self.health[name].probes += 1
        try:
            status, _headers, body = await upstream.request(
                "GET", "/healthz", timeout=self.probe_timeout
            )
        except UpstreamError:
            self.note_failure(name)
            return self.health[name].state
        reported = ""
        try:
            reported = str(json.loads(body.decode("utf-8")).get("status", ""))
        except (ValueError, UnicodeDecodeError):
            pass
        if status == 200 and reported == "ok":
            self.note_success(name)
        elif reported == "draining":
            self.note_draining(name)
        else:
            self.note_failure(name)
        return self.health[name].state

    async def probe_all(self) -> None:
        await asyncio.gather(*(self.probe_node(name) for name in self.upstreams))

    async def run(self, stop: Optional[asyncio.Event] = None) -> None:
        """Probe forever (or until ``stop`` is set / the task cancelled)."""
        while stop is None or not stop.is_set():
            await self.probe_all()
            if stop is None:
                await asyncio.sleep(self.interval)
            else:
                try:
                    await asyncio.wait_for(stop.wait(), self.interval)
                except asyncio.TimeoutError:
                    pass
