"""The sharding router: cache-affine placement with failure handling.

Trust: **untrusted** — routing is advisory.  The router picks *where* a
request runs; every node still performs the trusted reparse+kernel check
fresh, so the worst a wrong routing decision can do is miss a warm cache
or force a retry — never flip a verdict (docs/SERVICE.md § Clustering).

``repro cluster route`` fronts N ``repro serve`` nodes:

* **placement** — consistent hashing over the request's
  ``(source digest, options digest)`` key (:func:`~repro.cluster.ring.routing_key`),
  replicated to R owners, so repeat certifications of the same program
  land on the node whose memory/disk/unit tiers already hold it;
* **failure handling** — per-node health from ``/healthz`` (eject on
  failure, readmit on recovery, de-route on ``draining``), bounded
  per-node in-flight with spill-to-replica, retry-with-backoff on
  connection errors (safe because the pipeline is deterministic: re-
  running a certify is idempotent), and **hedged retries**: when a
  request outlives a p95-derived delay a second copy goes to a replica,
  the first response wins and the loser is cancelled;
* **observability** — one trace covers the whole hop: the router opens a
  ``route`` span, ships ``traceparent`` + ``X-Trace-Return: spans`` to
  the node, and folds the node's spans (request → pool → worker → every
  stage) back into its own trace store.  ``GET /metrics`` exposes
  per-node request/error/hedge/failover counters, ring-ownership
  gauges, and upstream latency histograms from the same
  :class:`~repro.service.metrics.ServiceMetrics` registry the nodes use.

Every proxied JSON response is stamped with ``"node": <name>`` (and an
``X-Repro-Node`` header) so clients — and ``repro loadgen`` — can report
per-node splits without asking the nodes anything.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..service.httpcore import (
    BadRequest,
    Connection,
    Response,
    json_response,
    read_request,
    write_response,
)
from ..service.metrics import ServiceMetrics
from ..trace import (
    RequestTraceStore,
    Span,
    TraceCollector,
    format_traceparent,
    new_trace_id,
)
from .health import DRAINING, UP, HealthMonitor
from .ring import DEFAULT_VNODES, HashRing, routing_key
from .upstream import Upstream, UpstreamError

#: Paths the router proxies; everything else is router-local or a 404.
PROXIED_PATHS = ("/v1/certify", "/v1/translate", "/v1/batch")


def parse_node_spec(spec: str, index: int) -> Tuple[str, str, int]:
    """``[name=]host:port`` → ``(name, host, port)`` (auto-named n1..nN)."""
    name, _, address = spec.rpartition("=")
    if not name:
        name = f"n{index + 1}"
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad node spec {spec!r}: expected [name=]host:port") from None
    return name, host or "127.0.0.1", port


@dataclass
class RouterConfig:
    """Static configuration for one :class:`ClusterRouter`."""

    host: str = "127.0.0.1"
    port: int = 8420
    #: Upstream nodes as ``[name=]host:port`` specs.
    nodes: List[str] = field(default_factory=list)
    #: Owners per key (1 = no replication).
    replication: int = 2
    vnodes: int = DEFAULT_VNODES
    #: Per-node in-flight bound before spilling to a replica.
    max_in_flight: int = 32
    connect_timeout: float = 2.0
    #: Per-proxied-request deadline, seconds.
    request_timeout: float = 120.0
    max_body_bytes: int = 2 * 1024 * 1024
    #: Health probe cadence and decision thresholds.
    probe_interval: float = 0.25
    probe_timeout: float = 1.0
    eject_after: int = 1
    readmit_after: int = 1
    #: Extra same-node retries (with backoff) when no replica is left.
    retries: int = 2
    backoff_base: float = 0.05
    #: Hedge a request once it outlives max(floor, factor × node p95);
    #: before the latency reservoir warms up, ``hedge_initial`` applies.
    hedge_delay_floor: float = 0.02
    hedge_factor: float = 1.5
    hedge_initial: float = 0.25
    quiet: bool = True
    #: Router-side request tracing (same store the nodes use).
    trace_dir: Optional[str] = None
    trace_sample: int = 10
    trace_rate: float = 0.0
    trace_seed: int = 0


class ClusterRouter:
    """The long-running sharding router."""

    def __init__(self, config: RouterConfig):
        if not config.nodes:
            raise ValueError("RouterConfig.nodes must name at least one node")
        self.config = config
        self.upstreams: Dict[str, Upstream] = {}
        for index, spec in enumerate(config.nodes):
            name, host, port = parse_node_spec(spec, index)
            if name in self.upstreams:
                raise ValueError(f"duplicate node name {name!r}")
            self.upstreams[name] = Upstream(
                name, host, port,
                max_in_flight=config.max_in_flight,
                connect_timeout=config.connect_timeout,
            )
        self.ring = HashRing(self.upstreams, vnodes=config.vnodes)
        self.monitor = HealthMonitor(
            self.upstreams,
            interval=config.probe_interval,
            probe_timeout=config.probe_timeout,
            eject_after=config.eject_after,
            readmit_after=config.readmit_after,
        )
        self.metrics = ServiceMetrics()
        self.trace_store: Optional[RequestTraceStore] = None
        if config.trace_dir:
            self.trace_store = RequestTraceStore(
                config.trace_dir,
                capacity=config.trace_sample,
                rate=config.trace_rate,
                seed=config.trace_seed,
            )
        self._server: Optional[asyncio.base_events.Server] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._shutdown = asyncio.Event()
        self._exit_code = 0
        self._started = time.time()
        self.port: Optional[int] = None
        self._register_gauges()

    # -- metrics wiring ----------------------------------------------------

    def _register_gauges(self) -> None:
        m = self.metrics
        shares = self.ring.shares()
        for name in self.upstreams:
            m.register_gauge(
                "repro_cluster_ring_share", lambda share=shares.get(name, 0.0): share,
                "Fraction of the hash ring owned by each node.",
                labels={"node": name},
            )
            m.register_gauge(
                "repro_cluster_node_up", lambda n=name: self._up_value(n),
                "Node routability: 1 up, 0.5 draining, 0 down.",
                labels={"node": name},
            )
            m.register_gauge(
                "repro_cluster_in_flight",
                lambda n=name: float(self.upstreams[n].in_flight),
                "Proxied requests currently in flight per node.",
                labels={"node": name},
            )
        m.register_gauge(
            "repro_uptime_seconds", lambda: time.time() - self._started,
            "Seconds since the router started.",
        )

    def _up_value(self, name: str) -> float:
        state = self.monitor.state(name)
        return 1.0 if state == UP else (0.5 if state == DRAINING else 0.0)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # Settle initial health before accepting placement decisions.
        await self.monitor.probe_all()
        self._monitor_task = asyncio.ensure_future(self.monitor.run())
        nodes = ", ".join(
            f"{u.name}={u.address}" for u in self.upstreams.values()
        )
        self._log(
            f"repro.cluster router on http://{self.config.host}:{self.port} "
            f"→ {nodes} (replication={self.config.replication})"
        )
        return self.port

    def request_shutdown(self, exit_code: int = 0) -> None:
        self._exit_code = exit_code
        self._shutdown.set()

    async def serve_until_shutdown(self) -> int:
        await self._shutdown.wait()
        self._log("repro.cluster router stopping…")
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._log(f"repro.cluster router stopped (exit {self._exit_code})")
        return self._exit_code

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(message, flush=True)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = Connection(reader)
        try:
            while True:
                try:
                    request = await read_request(conn, self.config.max_body_bytes)
                except BadRequest as error:
                    status, body, ctype, headers = json_response(
                        error.status, {"ok": False, "error": str(error)}
                    )
                    await write_response(
                        writer, status, body, ctype, headers, keep_alive=False
                    )
                    break
                if request is None:
                    break
                status, body, ctype, headers = await self._dispatch(request)
                keep_alive = request.keep_alive
                try:
                    await write_response(
                        writer, status, body, ctype, headers, keep_alive
                    )
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: Any) -> Response:
        started = time.perf_counter()
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                result = self._handle_healthz()
            elif route == ("GET", "/metrics"):
                result = (200, self.metrics.render().encode("utf-8"),
                          "text/plain; version=0.0.4; charset=utf-8", {})
            elif request.method == "POST" and request.path in PROXIED_PATHS:
                result = await self._proxy(request)
            elif request.path in ("/healthz", "/metrics") + PROXIED_PATHS:
                result = json_response(405, {"ok": False, "error": "method not allowed"})
            else:
                result = json_response(
                    404, {"ok": False, "error": f"no route {request.path}"}
                )
        except asyncio.CancelledError:
            raise
        except Exception as error:  # pragma: no cover - last-resort containment
            result = json_response(500, {"ok": False, "error": f"router error: {error}"})
        self.metrics.inc(
            "repro_requests_total",
            labels={"endpoint": request.path, "status": str(result[0])},
            help="Router HTTP requests by endpoint and status.",
        )
        self.metrics.observe(
            "repro_request_seconds", time.perf_counter() - started,
            labels={"endpoint": request.path},
            help="Router end-to-end request latency in seconds.",
            exemplar=result[3].get("X-Trace-Id"),
        )
        return result

    def _handle_healthz(self) -> Response:
        routable = self.monitor.routable()
        payload = {
            "status": "ok" if routable else "unavailable",
            "role": "router",
            "uptime_seconds": round(time.time() - self._started, 3),
            "replication": self.config.replication,
            "nodes": self.monitor.snapshot(),
            "ring": {n: round(s, 4) for n, s in self.ring.shares().items()},
        }
        return json_response(200 if routable else 503, payload)

    # -- placement ---------------------------------------------------------

    @staticmethod
    def request_key(payload: Any) -> Optional[str]:
        """The ring key for a certify/translate body (None if unkeyable)."""
        if not isinstance(payload, dict):
            return None
        source = payload.get("source")
        if not isinstance(source, str):
            return None
        options = payload.get("options")
        parsed = None
        if isinstance(options, dict) and options:
            try:
                from ..service.worker import options_from_dict

                parsed = options_from_dict(options)
            except (ValueError, TypeError):
                # The node is the authority on option validation; an
                # unkeyable options dict just routes by source alone.
                parsed = None
        return routing_key(source, parsed)

    def _candidates(self, key: Optional[str]) -> Tuple[List[str], Optional[str]]:
        """Attempt order for one request: ``(candidates, preferred_owner)``.

        Healthy ring owners first (warmest cache first), then every other
        healthy node — any node can serve any request, placement is only
        an optimisation.  With nothing healthy, fall back to all nodes in
        owner order so a wrongly-ejected cluster still gets attempts
        rather than an unconditional 503.
        """
        if key is not None:
            owners = self.ring.owners(key, max(1, self.config.replication))
        else:
            owners = []
        preferred = owners[0] if owners else None
        ordered = owners + [n for n in self.upstreams if n not in owners]
        candidates = [n for n in ordered if self.monitor.is_routable(n)]
        if not candidates:
            candidates = ordered
        if preferred is not None and candidates and candidates[0] != preferred:
            # The warm owner is out (down/draining): this request is a
            # failover by placement, before a single byte is sent.
            self.metrics.inc(
                "repro_cluster_failovers_total", labels={"reason": "placement"},
                help="Requests served by a non-primary node.",
            )
        if len(candidates) > 1 and self.upstreams[candidates[0]].at_capacity:
            for index, name in enumerate(candidates[1:], start=1):
                if not self.upstreams[name].at_capacity:
                    candidates[0], candidates[index] = candidates[index], candidates[0]
                    self.metrics.inc(
                        "repro_cluster_spills_total",
                        help="Requests moved to a replica by the in-flight bound.",
                    )
                    break
        return candidates, preferred

    def _hedge_delay(self, name: str) -> float:
        p95 = self.upstreams[name].p95()
        base = (
            p95 * self.config.hedge_factor
            if p95 is not None
            else self.config.hedge_initial
        )
        return max(self.config.hedge_delay_floor, base)

    # -- the proxy core ----------------------------------------------------

    async def _proxy(self, request: Any) -> Response:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = None  # the node will answer 400 authoritatively
        key = self.request_key(payload) if request.path != "/v1/batch" else None
        candidates, preferred = self._candidates(key)
        trace_id = new_trace_id()
        collector: Optional[TraceCollector] = None
        root: Optional[Span] = None
        if self.trace_store is not None:
            collector = TraceCollector()
            root = Span.start(
                "route", trace_id=trace_id,
                attributes={
                    "endpoint": request.path,
                    "key": (key or "")[:16],
                    "preferred": preferred or "",
                },
            )
        outcome = await self._race(candidates, request, root, collector)
        if outcome is None:
            result = json_response(
                502,
                {"ok": False, "error":
                 f"no node could serve the request (tried {', '.join(candidates)})",
                 "trace_id": trace_id},
                {"X-Trace-Id": trace_id},
            )
            self._finish_trace(root, collector, 502, winner=None)
            return result
        winner, status, payload_bytes = outcome
        if preferred is not None and winner != preferred:
            self.metrics.inc(
                "repro_cluster_failovers_total", labels={"reason": "in_request"},
                help="Requests served by a non-primary node.",
            )
        body, headers = self._stamp(payload_bytes, winner, trace_id, collector)
        self._finish_trace(root, collector, status, winner=winner)
        return status, body, "application/json; charset=utf-8", headers

    async def _race(
        self,
        candidates: List[str],
        request: Any,
        root: Optional[Span],
        collector: Optional[TraceCollector],
    ) -> Optional[Tuple[str, int, bytes]]:
        """Attempt candidates with hedging; first acceptable response wins.

        Returns ``(node, status, body)`` or None when every attempt
        failed at transport level or with a retryable status.
        """
        queue: List[str] = list(candidates)
        same_node_retries = self.config.retries
        active: Dict["asyncio.Task[Tuple[int, Dict[str, str], bytes]]", str] = {}
        hedged = False
        backoff = 0.0

        def launch() -> None:
            name = queue.pop(0)
            task = asyncio.ensure_future(self._forward(name, request, root, collector))
            active[task] = name

        launch()
        try:
            while active or queue:
                if not active:
                    # Everything in flight failed; try the next candidate
                    # after a short backoff (connection-error politeness).
                    if backoff:
                        await asyncio.sleep(backoff)
                    launch()
                    continue
                delay = None
                if not hedged and queue:
                    delay = self._hedge_delay(next(iter(active.values())))
                done, _pending = await asyncio.wait(
                    set(active), timeout=delay,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    # The hedge timer fired: race a replica against the
                    # straggler; the first response wins.
                    hedged = True
                    self.metrics.inc(
                        "repro_cluster_hedges_total",
                        help="Hedge requests launched against a replica.",
                    )
                    launch()
                    continue
                for task in done:
                    name = active.pop(task)
                    try:
                        status, _headers, body = task.result()
                    except UpstreamError as error:
                        self.monitor.note_failure(name)
                        self.metrics.inc(
                            "repro_cluster_node_errors_total",
                            labels={"node": name, "kind": "connect"},
                            help="Upstream failures per node and kind.",
                        )
                        self._log(f"upstream {name}: {error}")
                        backoff = max(backoff, self.config.backoff_base)
                        if not queue and not active and same_node_retries > 0:
                            # Last resort on a thin cluster: retry the
                            # same node with exponential backoff — the
                            # deterministic pipeline makes this idempotent.
                            same_node_retries -= 1
                            queue.append(name)
                            backoff = min(2.0, backoff * 2) or self.config.backoff_base
                        continue
                    retryable = self._note_status(name, status)
                    if retryable and (active or queue):
                        continue
                    if retryable and not queue and not active and same_node_retries > 0:
                        same_node_retries -= 1
                        queue.append(name)
                        continue
                    # Winner (or the last word of an exhausted cluster).
                    if hedged and name != candidates[0]:
                        self.metrics.inc(
                            "repro_cluster_hedge_wins_total",
                            help="Hedge requests that beat the primary.",
                        )
                    return name, status, body
            return None
        finally:
            for task in active:
                task.cancel()
            for task in active:
                try:
                    await task
                except (asyncio.CancelledError, UpstreamError):
                    pass

    def _note_status(self, name: str, status: int) -> bool:
        """Record an upstream status; True when it should be retried."""
        self.metrics.inc(
            "repro_cluster_requests_total",
            labels={"node": name, "status": str(status)},
            help="Proxied responses per node and status.",
        )
        if status == 503:
            # A node only answers 503 while draining: de-route it now
            # rather than waiting for its socket to close.
            self.monitor.note_draining(name)
            return True
        if status == 429:
            self.metrics.inc(
                "repro_cluster_spills_total",
                help="Requests moved to a replica by the in-flight bound.",
            )
            return True
        if status in (500, 502, 504):
            self.metrics.inc(
                "repro_cluster_node_errors_total",
                labels={"node": name, "kind": f"http_{status}"},
                help="Upstream failures per node and kind.",
            )
            return True
        return False

    async def _forward(
        self,
        name: str,
        request: Any,
        root: Optional[Span],
        collector: Optional[TraceCollector],
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One attempt against one node, as a child span of the route."""
        upstream = self.upstreams[name]
        headers = {"Content-Type": "application/json"}
        span: Optional[Span] = None
        if root is not None:
            span = Span.start("upstream", parent=root.context(),
                              attributes={"node": name})
            headers["traceparent"] = format_traceparent(span.context())
            headers["X-Trace-Return"] = "spans"
        started = time.perf_counter()
        try:
            status, response_headers, body = await upstream.request(
                request.method, request.path, request.body,
                headers=headers, timeout=self.config.request_timeout,
            )
        except (UpstreamError, asyncio.CancelledError) as error:
            if span is not None:
                span.set_error(str(error) or type(error).__name__)
                span.end()
                collector.add(span)
            raise
        self.metrics.observe(
            "repro_upstream_seconds", time.perf_counter() - started,
            labels={"node": name},
            help="Upstream request latency per node in seconds.",
        )
        if span is not None:
            span.attributes["status"] = status
            span.end()
            collector.add(span)
        return status, response_headers, body

    # -- response shaping --------------------------------------------------

    def _stamp(
        self,
        payload_bytes: bytes,
        winner: str,
        trace_id: str,
        collector: Optional[TraceCollector],
    ) -> Tuple[bytes, Dict[str, str]]:
        """Stamp the winning response with the node name and fold spans."""
        headers = {"X-Repro-Node": winner, "X-Trace-Id": trace_id}
        try:
            decoded = json.loads(payload_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return payload_bytes, headers
        if not isinstance(decoded, dict):
            return payload_bytes, headers
        if collector is not None:
            # The node honoured X-Trace-Return: its spans ride the
            # response body; fold them into the router's trace and strip
            # them from what the client sees.
            for item in decoded.pop("trace", None) or ():
                try:
                    collector.add(Span.from_dict(item))
                except (KeyError, TypeError, ValueError):
                    pass
        else:
            decoded.pop("trace", None)
        decoded["node"] = winner
        decoded["trace_id"] = trace_id
        return json.dumps(decoded, sort_keys=False).encode("utf-8"), headers

    def _finish_trace(
        self,
        root: Optional[Span],
        collector: Optional[TraceCollector],
        status: int,
        winner: Optional[str],
    ) -> None:
        if root is None or collector is None or self.trace_store is None:
            return
        root.attributes["status"] = status
        root.attributes["node"] = winner or ""
        if status >= 500:
            root.set_error(f"HTTP {status}")
        root.end()
        collector.add(root)
        for reason in self.trace_store.offer(root, collector.spans):
            self.metrics.inc(
                "repro_traces_persisted_total", labels={"reason": reason},
                help="Router traces persisted to --trace-dir, by keep reason.",
            )


# ---------------------------------------------------------------------------
# Entry points: blocking CLI router and the background test/library router.
# ---------------------------------------------------------------------------


async def _amain(config: RouterConfig) -> int:
    router = ClusterRouter(config)
    await router.start()
    loop = asyncio.get_running_loop()
    installed = []
    for signum, exit_code in ((signal.SIGINT, 130), (signal.SIGTERM, 143)):
        try:
            loop.add_signal_handler(signum, router.request_shutdown, exit_code)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            pass
    try:
        return await router.serve_until_shutdown()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def run_router(config: RouterConfig) -> int:
    """Run the router until SIGINT (exit 130) or SIGTERM (exit 143)."""
    return asyncio.run(_amain(config))


class BackgroundRouter:
    """Run a :class:`ClusterRouter` on a background thread (tests, chaos)."""

    def __init__(self, config: RouterConfig):
        self.config = config
        self.router: Optional[ClusterRouter] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundRouter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "BackgroundRouter":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("background router did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                "background router failed to start"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        async def body() -> int:
            self.router = ClusterRouter(self.config)
            self._loop = asyncio.get_running_loop()
            try:
                self.port = await self.router.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                raise
            self._ready.set()
            return await self.router.serve_until_shutdown()

        try:
            asyncio.run(body())
        except BaseException:
            self._ready.set()

    def stop(self) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_shutdown, 0)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
