"""repro.cluster — horizontal scale-out for the certification service.

Trust: **untrusted** infrastructure — routing is *advisory*.  The router
decides only *where* a request runs; every node still executes the
trusted reparse+kernel check fresh per request, so a misrouted request,
a stale replica, or a corrupted ring can at worst cause a spurious
rejection or a cache miss — never a false acceptance
(docs/SERVICE.md § Clustering, docs/TRUSTED_BASE.md).

The paper's pipeline checks each certificate independently of the
translator, which makes certification embarrassingly shardable: any node
that re-runs the trusted check can serve any request.  This package adds
the missing scale-out layer on top of the single-node service:

* :mod:`~repro.cluster.ring` — consistent hashing over the existing
  ``(source digest, options digest)`` cache key, so a given program
  always lands on the node whose warm memory/disk/unit tiers hold it,
  with each key replicated to R nodes for failover;
* :mod:`~repro.cluster.upstream` — per-node async HTTP client state:
  bounded in-flight accounting, latency tracking (p95 feeds the hedge
  delay), error counters;
* :mod:`~repro.cluster.health` — active ``/healthz`` probing with
  eject-on-failure / readmit-on-recovery, plus the ``draining`` state
  (503 + Retry-After) that de-routes a node before its socket closes;
* :mod:`~repro.cluster.router` — the sharding router itself
  (``repro cluster route``): spill-to-replica on capacity, hedged
  retries for tail latency, retry-with-backoff on connection errors
  (idempotent because the pipeline is deterministic), traceparent
  propagation router→node, and its own ``/metrics``;
* :mod:`~repro.cluster.nodes` — subprocess supervision for real
  ``repro serve`` nodes (spawn, await readiness, kill/stall/resume);
* :mod:`~repro.cluster.chaos` — the fault-injection harness
  (``repro cluster chaos``): kill/stall/corrupt a node under load and
  prove zero failed client requests during single-node loss.
"""

from .chaos import ChaosConfig, run_chaos  # noqa: F401
from .health import HealthMonitor, NodeHealth  # noqa: F401
from .nodes import NodeProcess, NodeSpec, free_port  # noqa: F401
from .ring import HashRing  # noqa: F401
from .router import (  # noqa: F401
    BackgroundRouter,
    ClusterRouter,
    RouterConfig,
    run_router,
)
from .upstream import Upstream, UpstreamError  # noqa: F401
