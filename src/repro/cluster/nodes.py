"""Node supervision: spawn, watch, and fault real ``repro serve`` processes.

Trust: **advisory** — test/ops tooling around the service, not part of
any verdict path.

The chaos harness (and ``repro cluster chaos``) needs *real* nodes —
separate processes with their own worker pools, caches, and sockets —
because the faults it injects (SIGKILL, SIGSTOP, cache corruption) only
mean something against real process boundaries.  :class:`NodeProcess`
wraps one ``python -m repro.cli serve`` subprocess with readiness
waiting and the three fault primitives:

* :meth:`NodeProcess.kill` — SIGKILL, the "machine died" fault;
* :meth:`NodeProcess.stall` / :meth:`NodeProcess.resume` — SIGSTOP /
  SIGCONT, the "GC pause / network partition" fault (connections open,
  nothing answers — exactly what hedged retries exist for);
* cache corruption is done by the chaos harness directly on the node's
  ``cache_dir`` (the node must *still* answer correctly afterwards —
  the poisoned-cache trust argument, live).
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..service.client import ServiceClient


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (racy by nature; fine for tests)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class NodeSpec:
    """How to launch one certification node."""

    name: str
    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 1
    queue_limit: int = 64
    cache_dir: Optional[str] = None
    request_timeout: float = 60.0
    extra_args: List[str] = field(default_factory=list)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def router_spec(self) -> str:
        return f"{self.name}={self.host}:{self.port}"


class NodeProcess:
    """One live ``repro serve`` subprocess."""

    def __init__(self, spec: NodeSpec):
        self.spec = spec
        if not self.spec.port:
            self.spec.port = free_port(self.spec.host)
        self.process: Optional[subprocess.Popen] = None
        self.faulted: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "NodeProcess":
        spec = self.spec
        args = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", spec.host, "--port", str(spec.port),
            "--jobs", str(spec.jobs),
            "--queue-limit", str(spec.queue_limit),
            "--request-timeout", str(spec.request_timeout),
        ]
        if spec.cache_dir:
            Path(spec.cache_dir).mkdir(parents=True, exist_ok=True)
            args += ["--cache-dir", spec.cache_dir]
        args += spec.extra_args
        self.process = subprocess.Popen(
            args, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        return self

    def wait_ready(self, timeout: float = 30.0) -> bool:
        with ServiceClient(self.spec.host, self.spec.port, timeout=5.0) as client:
            return client.wait_ready(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    # -- faults ------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL: instant, unannounced death — no drain, no goodbye."""
        if self.alive:
            self.process.kill()
            self.faulted = "kill"

    def stall(self) -> None:
        """SIGSTOP: the process freezes with its sockets still open."""
        if self.alive:
            self.process.send_signal(signal.SIGSTOP)
            self.faulted = "stall"

    def resume(self) -> None:
        """SIGCONT after a stall."""
        if self.process is not None and self.faulted == "stall":
            self.process.send_signal(signal.SIGCONT)
            self.faulted = None

    def terminate(self, grace: float = 10.0) -> Optional[int]:
        """SIGTERM and reap (SIGKILL after ``grace`` seconds)."""
        if self.process is None:
            return None
        if self.faulted == "stall":
            self.resume()
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)
        return self.process.returncode


class RouterProcess:
    """One live ``repro cluster route`` subprocess.

    Latency measurements must run the router as a real process: an
    in-process (background-thread) router shares the GIL with the load
    generator, so client-side JSON work gets booked as routing latency
    in bursts of up to the interpreter switch interval.
    """

    def __init__(
        self,
        node_specs: List[str],
        host: str = "127.0.0.1",
        port: int = 0,
        replication: int = 2,
        request_timeout: float = 60.0,
        hedge_floor: Optional[float] = None,
    ):
        self.host = host
        self.port = port or free_port(host)
        self.node_specs = node_specs
        self.replication = replication
        self.request_timeout = request_timeout
        self.hedge_floor = hedge_floor
        self.process: Optional[subprocess.Popen] = None

    def start(self) -> "RouterProcess":
        args = [
            sys.executable, "-m", "repro.cli", "cluster", "route",
            "--host", self.host, "--port", str(self.port),
            "--replication", str(self.replication),
            "--request-timeout", str(self.request_timeout),
        ]
        for spec in self.node_specs:
            args += ["--node", spec]
        if self.hedge_floor is not None:
            args += ["--hedge-floor", str(self.hedge_floor)]
        self.process = subprocess.Popen(
            args, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        return self

    def wait_ready(self, timeout: float = 30.0) -> bool:
        with ServiceClient(self.host, self.port, timeout=5.0) as client:
            return client.wait_ready(timeout=timeout)

    def terminate(self, grace: float = 10.0) -> Optional[int]:
        if self.process is None:
            return None
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=5.0)
        return self.process.returncode


def start_nodes(
    specs: List[NodeSpec], ready_timeout: float = 45.0
) -> List[NodeProcess]:
    """Start every node, then wait for all of them to answer ``/healthz``."""
    nodes = [NodeProcess(spec).start() for spec in specs]
    deadline = time.time() + ready_timeout
    for node in nodes:
        remaining = max(1.0, deadline - time.time())
        if not node.wait_ready(timeout=remaining):
            for other in nodes:
                other.terminate(grace=2.0)
            raise RuntimeError(
                f"node {node.spec.name} ({node.spec.address}) "
                f"did not become ready within {ready_timeout}s"
            )
    return nodes
