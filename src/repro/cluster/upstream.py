"""Per-node upstream state: async requests, in-flight bounds, latency.

Trust: **untrusted** transport — proxying only; verdicts come from the
node's own trusted reparse+check.

One :class:`Upstream` per cluster node holds everything the router needs
to make a routing decision about that node *right now*:

* an async HTTP/1.1 request primitive (connection per proxied request —
  no shared client state to corrupt when a hedge loser is cancelled
  mid-read; the node's keep-alive machinery is for end clients);
* **bounded in-flight accounting** — the router spills to a replica
  instead of queueing more than ``max_in_flight`` requests on one node;
* a **latency reservoir** — the last N upstream latencies, whose p95
  derives the hedge delay (hedge when a request is slower than 95% of
  this node's recent history, not after an arbitrary constant).
"""

from __future__ import annotations

import asyncio
from bisect import insort
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..service.httpcore import MAX_HEADER_BYTES, BadRequest, Connection

#: Latency observations kept per node for the p95 estimate.
RESERVOIR = 64


class UpstreamError(Exception):
    """A transport-level failure talking to one node (retryable)."""


class Upstream:
    """One cluster node, as seen from the router."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        max_in_flight: int = 32,
        connect_timeout: float = 2.0,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.max_in_flight = max_in_flight
        self.connect_timeout = connect_timeout
        self.in_flight = 0
        self.total = 0
        self.errors = 0
        self._latencies: Deque[float] = deque(maxlen=RESERVOIR)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def at_capacity(self) -> bool:
        return self.in_flight >= self.max_in_flight

    # -- latency tracking --------------------------------------------------

    def observe(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def p95(self) -> Optional[float]:
        """The p95 of recent upstream latencies (None until warmed up)."""
        if len(self._latencies) < 8:
            return None
        ordered: list = []
        for value in self._latencies:
            insort(ordered, value)
        rank = max(0, int(0.95 * len(ordered)) - 1)
        return ordered[rank]

    # -- the request primitive ---------------------------------------------

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP request to this node; raises :class:`UpstreamError`
        on any transport- or framing-level failure."""
        self.total += 1
        self.in_flight += 1
        started = asyncio.get_running_loop().time()
        writer: Optional[asyncio.StreamWriter] = None
        try:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as error:
                raise UpstreamError(
                    f"connect to {self.name} ({self.address}) failed: "
                    f"{error or type(error).__name__}"
                ) from None
            request_headers = {
                "Host": self.address,
                "Content-Length": str(len(body)),
                "Connection": "close",
                **(headers or {}),
            }
            head = f"{method} {path} HTTP/1.1\r\n" + "".join(
                f"{name}: {value}\r\n" for name, value in request_headers.items()
            ) + "\r\n"
            writer.write(head.encode("latin-1") + body)
            try:
                await writer.drain()
                status, response_headers, payload = await asyncio.wait_for(
                    _read_response(reader), timeout
                )
            except (OSError, BadRequest, asyncio.IncompleteReadError) as error:
                raise UpstreamError(
                    f"request to {self.name} failed mid-flight: "
                    f"{error or type(error).__name__}"
                ) from None
            except asyncio.TimeoutError:
                raise UpstreamError(
                    f"request to {self.name} exceeded {timeout}s"
                ) from None
            self.observe(asyncio.get_running_loop().time() - started)
            return status, response_headers, payload
        except UpstreamError:
            self.errors += 1
            raise
        finally:
            self.in_flight -= 1
            if writer is not None:
                writer.close()
                # Closing is best-effort cleanup; a reset here is fine.
                try:
                    await writer.wait_closed()
                except (OSError, asyncio.CancelledError):
                    pass


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Parse one Content-Length-framed HTTP response."""
    conn = Connection(reader)
    head = await conn.read_until(b"\r\n\r\n", MAX_HEADER_BYTES)
    if head is None:
        raise BadRequest("node closed the connection before responding")
    lines = head.decode("latin-1").split("\r\n")
    try:
        _version, status_text, _reason = lines[0].split(" ", 2)
        status = int(status_text)
    except ValueError:
        raise BadRequest(f"malformed status line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest("missing/bad Content-Length in node response") from None
    body = await conn.read_exact(length) if length > 0 else b""
    return status, headers, body
