"""Consistent hashing: the key→node map that keeps caches warm.

Trust: **advisory** — placement only.  The ring decides which node's
warm cache a request *should* hit; any node can correctly serve any
request (docs/SERVICE.md § Clustering).

Standard consistent-hash ring with virtual nodes: each physical node
owns ``vnodes`` points on a 64-bit circle (sha256 of ``"{name}#{i}"``),
a key hashes to a point the same way, and ownership is the first vnode
clockwise.  Properties the router relies on:

* **stability** — adding or removing one node remaps only ~1/N of the
  key space, so a node loss doesn't stampede every node's cold cache;
* **replication order** — :meth:`HashRing.owners` walks clockwise
  collecting *distinct* nodes, giving each key a deterministic
  preference list of R owners for failover;
* **determinism** — pure sha256, no process-local seeds: every router
  instance with the same node list computes the same placement, and the
  same key routes identically across restarts (which is what makes
  routed requests hit the disk tier after a rolling restart).

The routing key is the same ``(source digest, options digest)`` pair the
cache tiers are addressed by (:func:`repro.pipeline.cache.cache_key`),
so "lands on the owner" and "hits the warm cache" are the same fact.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Default virtual nodes per physical node.  64 keeps the largest/smallest
#: ownership share within ~2x for small clusters while staying cheap to
#: rebuild on membership changes.
DEFAULT_VNODES = 64


def _point(text: str) -> int:
    """A position on the 64-bit hash circle."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []
        self._sorted: List[int] = []
        for name in nodes:
            self.add(name)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def add(self, name: str) -> None:
        if name in self._nodes:
            return
        self._nodes.append(name)
        for i in range(self.vnodes):
            self._points.append((_point(f"{name}#{i}"), name))
        self._rebuild()

    def remove(self, name: str) -> None:
        if name not in self._nodes:
            return
        self._nodes.remove(name)
        self._points = [(p, n) for p, n in self._points if n != name]
        self._rebuild()

    def _rebuild(self) -> None:
        self._points.sort()
        self._sorted = [p for p, _ in self._points]

    # -- lookup ------------------------------------------------------------

    def owners(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` *distinct* nodes clockwise from ``key``.

        The list is the key's replica preference order: index 0 is the
        primary (whose cache tiers are warmest for this key), the rest
        are failover replicas.  Returns fewer than ``count`` names when
        the ring has fewer nodes.
        """
        if not self._points or count < 1:
            return []
        start = bisect.bisect_right(self._sorted, _point(key))
        seen: List[str] = []
        total = len(self._points)
        for offset in range(total):
            _, name = self._points[(start + offset) % total]
            if name not in seen:
                seen.append(name)
                if len(seen) >= count:
                    break
        return seen

    def primary(self, key: str) -> str:
        owners = self.owners(key, 1)
        if not owners:
            raise LookupError("empty ring")
        return owners[0]

    # -- introspection -----------------------------------------------------

    def shares(self) -> Dict[str, float]:
        """Fraction of the hash circle each node owns (sums to ~1.0).

        Exposed as the ``repro_cluster_ring_share{node=...}`` gauge so a
        lopsided ring is visible before it shows up as a hot node.
        """
        if not self._points:
            return {}
        space = float(2**64)
        arcs: Dict[str, float] = {name: 0.0 for name in self._nodes}
        for index, (point, _) in enumerate(self._points):
            prev_point = self._points[index - 1][0]
            arc = (point - prev_point) % 2**64 if index else (
                point + 2**64 - self._points[-1][0]
            ) % 2**64
            arcs[self._points[index][1]] += arc / space
        return arcs


def routing_key(source: str, options: object = None) -> str:
    """The ring key for one certify/translate request.

    Identical inputs → identical key → identical placement: the same
    ``(source digest, options digest)`` pair that addresses the cache
    tiers (so the ring's primary is also the warmest node).
    """
    from ..pipeline.cache import source_digest
    from ..pipeline.units import options_digest

    return f"{source_digest(source)}:{options_digest(options)}"
