"""The fault-injection harness: prove failover with real process faults.

Trust: **advisory** — a test harness; its report *describes* the
cluster's behaviour under faults, and the behaviour it checks for is
exactly the trust argument: faults may cost latency or cache warmth,
never verdicts.

``repro cluster chaos`` stands up a real cluster (N ``repro serve``
subprocesses + the sharding router), drives the loadgen corpus through
the router, injects one fault mid-run, and asserts the cluster absorbed
it:

* ``kill``    — SIGKILL one node: in-flight proxied requests fail at
  transport level, the router retries them on a replica (idempotent:
  the pipeline is deterministic), health ejects the corpse, and every
  later request fails over by placement;
* ``stall``   — SIGSTOP one node: its sockets stay open but nothing
  answers; hedged retries rescue the stragglers and the probe timeout
  ejects the node (SIGCONT restores it afterwards);
* ``corrupt`` — mangle the node's disk-cache files under load: the
  corruption-tolerant loader treats them as misses and every verdict is
  recomputed by the trusted path — the poisoned-cache argument, live;
* ``none``    — a control run (also used by CI to measure overhead).

The report is one JSON object: the loadgen results (the zero-failed-
requests claim), parsed router counters (``failovers_total > 0`` proves
failover absorbed the fault — not luck), the per-node request split, a
router→node trace-connectivity check, and the router-vs-direct p50
overhead measurement.
"""

from __future__ import annotations

import glob
import json
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..service.client import ServiceClient, ServiceError
from ..service.loadgen import LoadgenConfig, run_loadgen
from .nodes import NodeProcess, NodeSpec, RouterProcess, start_nodes
from .router import BackgroundRouter, RouterConfig

FAULTS = ("kill", "stall", "corrupt", "none")


@dataclass
class ChaosConfig:
    """One chaos experiment."""

    nodes: int = 3
    replication: int = 2
    requests: int = 50
    concurrency: int = 8
    #: Restrict the replay corpus to one suite (keeps runs fast).
    suite: Optional[str] = "Viper"
    fault: str = "kill"
    #: Which node to fault (index into the node list).
    fault_node: int = 0
    #: Inject once this fraction of the run has been proxied.
    fault_after: float = 0.3
    #: Measure router-vs-direct p50 overhead with a control phase first.
    measure_overhead: bool = True
    #: Per-phase request count; kept under the corpus size so every
    #: measured certify is a cold one.
    overhead_requests: int = 32
    jobs_per_node: int = 1
    #: Aggressive hedging so the report proves the hedge path under load.
    hedge_delay_floor: float = 0.005
    request_timeout: float = 60.0
    #: Scratch directory (a temp dir is created and removed when unset).
    work_dir: Optional[str] = None
    report_path: Optional[str] = None
    quiet: bool = True


def parse_metrics(text: str) -> Dict[str, float]:
    """Prometheus text → ``{"name{labels}": value}`` (samples only)."""
    values: Dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value_text = line.rpartition(" ")
        try:
            values[name] = float(value_text)
        except ValueError:
            continue
    return values


def sum_metric(values: Dict[str, float], name: str) -> float:
    """Sum a metric over all label sets (``name`` and ``name{...}``)."""
    return sum(
        v for k, v in values.items()
        if k == name or k.startswith(name + "{")
    )


def _check_trace_connectivity(trace_dir: str) -> Dict[str, Any]:
    """Find one persisted router trace whose spans connect router→node.

    Connected means: a ``route`` root, an ``upstream`` child of it, and a
    node-side ``request`` span parented on the upstream span — all under
    one trace id.  That is only possible if the traceparent header
    crossed the hop and the node shipped its spans back.
    """
    from ..trace.export import read_spans

    for path in sorted(glob.glob(os.path.join(trace_dir, "*.trace.json"))):
        try:
            spans = read_spans(path)
        except (OSError, ValueError, KeyError):
            continue
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.name != "request" or not span.parent_id:
                continue
            upstream = by_id.get(span.parent_id)
            if upstream is None or upstream.name != "upstream":
                continue
            route = by_id.get(upstream.parent_id or "")
            if route is None or route.name != "route":
                continue
            if len({span.trace_id, upstream.trace_id, route.trace_id}) != 1:
                continue
            return {
                "connected": True,
                "trace_id": span.trace_id,
                "file": os.path.basename(path),
                "spans": len(spans),
                "node": str(upstream.attributes.get("node", "")),
            }
    return {"connected": False}


def _corrupt_cache(cache_dir: str) -> int:
    """Overwrite every cached artifact file with garbage; returns count."""
    mangled = 0
    for path in Path(cache_dir).rglob("*"):
        if path.is_file():
            try:
                path.write_bytes(b"\x00corrupted-by-chaos\xff" * 8)
                mangled += 1
            except OSError:
                continue
    return mangled


def _warm_worker(port: int, rounds: int = 3) -> None:
    """Pay a node worker's one-time warm-up (imports, code caches).

    The overhead comparison is per-request hop cost, so every worker on
    both sides must be past its first-request warm-up before anything
    is measured; the warm-up sources are disjoint from the replay
    corpus, so the measured certifies themselves stay cold.
    """
    client = ServiceClient(port=port)
    for index in range(rounds):
        source = (
            f"method chaos_warmup_{index}(x: Int) returns (y: Int) "
            f"requires x > {index} ensures y > {index} {{ y := x }}\n"
        )
        try:
            client.certify(source)
        except ServiceError:
            return


class _LoadgenThread(threading.Thread):
    """Run one loadgen in the background, capturing report or error."""

    def __init__(self, config: LoadgenConfig):
        super().__init__(daemon=True)
        self.config = config
        self.report: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.report = run_loadgen(self.config)
        except BaseException as error:  # surfaced by the harness
            self.error = error


@dataclass
class _Cluster:
    nodes: List[NodeProcess] = field(default_factory=list)
    router: Optional[BackgroundRouter] = None

    def stop(self) -> None:
        if self.router is not None:
            self.router.stop()
            self.router = None
        for node in self.nodes:
            node.terminate(grace=5.0)
        self.nodes = []


def run_chaos(config: ChaosConfig) -> Dict[str, Any]:
    """Run one chaos experiment; returns (and optionally writes) the report."""
    if config.fault not in FAULTS:
        raise ValueError(f"unknown fault {config.fault!r}; choose from {FAULTS}")
    if config.nodes < 1:
        raise ValueError("need at least one node")
    if not (0 <= config.fault_node < config.nodes):
        raise ValueError("fault_node out of range")

    work_dir = config.work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    own_work_dir = config.work_dir is None
    trace_dir = os.path.join(work_dir, "router-traces")
    cluster = _Cluster()
    log = (lambda m: None) if config.quiet else (lambda m: print(m, flush=True))
    try:
        specs = [
            NodeSpec(
                name=f"c{i + 1}",
                jobs=config.jobs_per_node,
                cache_dir=os.path.join(work_dir, f"node{i + 1}-cache"),
                request_timeout=config.request_timeout,
            )
            for i in range(config.nodes)
        ]
        log(f"chaos: starting {config.nodes} node(s)…")
        cluster.nodes = start_nodes(specs)

        overhead: Dict[str, Any] = {"measured": False}
        if config.measure_overhead:
            # Insertion cost, apples to apples: two identical nodes
            # outside the ring take the same corpus at the same
            # concurrency — one directly, one behind a neutral router
            # fronting just it (replication 1, hedging off: a hedge
            # spends duplicate work to cut tail latency — a policy, not
            # hop cost).  The only difference between the phases is the
            # router hop, so the p50 delta is the router's own cost —
            # not ring warm-up, not N-vs-1 worker counts, not hedge
            # duplication.
            #
            # Both phases run *simultaneously*: on a shared (or single-
            # core) box, scheduler bursts hit whichever phase is running
            # — interleaving them in time makes that noise common-mode.
            # Two rounds on fresh node pairs average out per-node speed
            # differences.  The router is a real *process*: an in-
            # process (thread) router shares the GIL with the load
            # generator, booking the client's own JSON work as routing
            # latency.
            log("chaos: measuring router insertion cost…")
            phase_concurrency = max(1, config.concurrency // 2)
            rounds: List[Dict[str, float]] = []
            for round_index in range(2):
                pair = start_nodes([
                    NodeSpec(
                        name=f"baseline-{kind}{round_index}",
                        jobs=config.jobs_per_node,
                        cache_dir=os.path.join(
                            work_dir, f"baseline-{kind}{round_index}-cache"
                        ),
                        request_timeout=config.request_timeout,
                    )
                    for kind in ("direct", "routed")
                ])
                direct_node, routed_node = pair
                measure_router = RouterProcess(
                    node_specs=[routed_node.spec.router_spec],
                    replication=1,
                    request_timeout=config.request_timeout,
                    hedge_floor=3600.0,
                )
                try:
                    # Both workers pay their one-time warm-up (imports,
                    # code caches) on sources disjoint from the corpus,
                    # so the measured certifies stay cold on both sides.
                    for node in pair:
                        _warm_worker(node.spec.port)
                    measure_router.start()
                    if not measure_router.wait_ready(timeout=30.0):
                        raise RuntimeError(
                            "measurement router did not become ready"
                        )
                    phases = [
                        _LoadgenThread(LoadgenConfig(
                            port=port,
                            requests=config.overhead_requests,
                            concurrency=phase_concurrency,
                            suite=config.suite,
                            report_path=None,
                        ))
                        for port in (direct_node.spec.port, measure_router.port)
                    ]
                    for phase in phases:
                        phase.start()
                    for phase in phases:
                        phase.join()
                    for phase in phases:
                        if phase.error is not None:
                            raise phase.error
                    direct, routed = (phase.report for phase in phases)
                finally:
                    measure_router.terminate(grace=5.0)
                    for node in pair:
                        node.terminate(grace=5.0)
                rounds.append({
                    "direct_p50_ms": direct["latency_ms"]["p50"],
                    "router_p50_ms": routed["latency_ms"]["p50"],
                })
            overhead = {
                "measured": True,
                "requests": config.overhead_requests,
                "concurrency": phase_concurrency,
                "rounds": rounds,
                "direct_p50_ms": round(
                    sum(r["direct_p50_ms"] for r in rounds) / len(rounds), 3
                ),
                "router_p50_ms": round(
                    sum(r["router_p50_ms"] for r in rounds) / len(rounds), 3
                ),
            }
            if overhead["direct_p50_ms"]:
                overhead["overhead_pct"] = round(
                    (overhead["router_p50_ms"] - overhead["direct_p50_ms"])
                    / overhead["direct_p50_ms"] * 100, 2
                )

        log("chaos: starting router…")
        cluster.router = BackgroundRouter(RouterConfig(
            port=0,
            nodes=[spec.router_spec for spec in specs],
            replication=config.replication,
            hedge_delay_floor=config.hedge_delay_floor,
            request_timeout=config.request_timeout,
            trace_dir=trace_dir,
            trace_sample=10,
            quiet=config.quiet,
        )).start()
        router_port = cluster.router.port
        assert router_port is not None

        log(f"chaos: driving {config.requests} requests through the router…")
        loadgen = _LoadgenThread(LoadgenConfig(
            port=router_port,
            requests=config.requests,
            concurrency=config.concurrency,
            suite=config.suite,
            report_path=None,
        ))
        started = time.perf_counter()
        loadgen.start()

        fault_info: Dict[str, Any] = {"type": config.fault}
        if config.fault != "none":
            target = cluster.nodes[config.fault_node]
            threshold = max(1, int(config.requests * config.fault_after))
            probe = ServiceClient(port=router_port, timeout=5.0)
            injected = False
            while loadgen.is_alive():
                try:
                    proxied = sum_metric(
                        parse_metrics(probe.metrics()),
                        "repro_cluster_requests_total",
                    )
                except ServiceError:
                    proxied = 0.0
                if proxied >= threshold:
                    injected = True
                    break
                time.sleep(0.05)
            probe.close()
            fault_info.update({
                "node": target.spec.name,
                "injected": injected,
                "after_proxied": threshold if injected else None,
            })
            if injected:
                log(f"chaos: injecting {config.fault} on {target.spec.name}…")
                if config.fault == "kill":
                    target.kill()
                elif config.fault == "stall":
                    target.stall()
                elif config.fault == "corrupt":
                    fault_info["files_corrupted"] = _corrupt_cache(
                        target.spec.cache_dir or ""
                    )

        loadgen.join(timeout=600)
        duration = time.perf_counter() - started
        if loadgen.error is not None:
            raise RuntimeError(f"loadgen failed: {loadgen.error}") from loadgen.error
        if loadgen.report is None:
            raise RuntimeError("loadgen did not finish within 600s")
        report_lg = loadgen.report

        # Stalled nodes must be resumed before teardown can reap them.
        for node in cluster.nodes:
            node.resume()

        with ServiceClient(port=router_port, timeout=5.0) as probe:
            metrics = parse_metrics(probe.metrics())
            try:
                router_health = probe.healthz()
                router_health.pop("_status", None)
            except ServiceError:
                router_health = {}

        counters = {
            "failovers": sum_metric(metrics, "repro_cluster_failovers_total"),
            "hedges": sum_metric(metrics, "repro_cluster_hedges_total"),
            "hedge_wins": sum_metric(metrics, "repro_cluster_hedge_wins_total"),
            "spills": sum_metric(metrics, "repro_cluster_spills_total"),
            "upstream_errors": sum_metric(metrics, "repro_cluster_node_errors_total"),
        }
        trace_check = _check_trace_connectivity(trace_dir)

        outcomes = report_lg["outcomes"]
        checks = {
            "zero_client_errors": outcomes["errors"] == 0,
            "zero_server_errors": outcomes["server_errors"] == 0,
            "all_requests_completed": outcomes["completed"] == config.requests,
            "trace_connected": bool(trace_check.get("connected")),
        }
        if config.fault in ("kill", "stall") and fault_info.get("injected"):
            # Failover counters prove the loss was *absorbed*, not missed.
            checks["failover_proven"] = counters["failovers"] > 0

        report: Dict[str, Any] = {
            "meta": {
                "nodes": config.nodes,
                "replication": config.replication,
                "requests": config.requests,
                "concurrency": config.concurrency,
                "suite": config.suite or "all",
                "jobs_per_node": config.jobs_per_node,
                "duration_seconds": round(duration, 3),
            },
            "fault": fault_info,
            "loadgen": {
                "throughput_rps": report_lg["throughput_rps"],
                "latency_ms": report_lg["latency_ms"],
                "outcomes": outcomes,
                "nodes": report_lg.get("nodes", {}),
            },
            "router": {
                "counters": counters,
                "health": router_health,
            },
            "trace": trace_check,
            "overhead": overhead,
            "checks": checks,
            "ok": all(checks.values()),
        }
        if config.report_path:
            path = Path(config.report_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
            report["report_path"] = str(path)
        return report
    finally:
        cluster.stop()
        if own_work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


def summarise(report: Dict[str, Any]) -> str:
    """A short human-readable digest of a chaos report."""
    fault = report["fault"]
    counters = report["router"]["counters"]
    outcomes = report["loadgen"]["outcomes"]
    lines = [
        f"chaos: {report['meta']['nodes']} nodes ×R{report['meta']['replication']}, "
        f"{outcomes['completed']}/{report['meta']['requests']} requests in "
        f"{report['meta']['duration_seconds']}s — "
        f"{'OK' if report['ok'] else 'FAILED'}",
        f"  fault: {fault['type']}"
        + (f" on {fault.get('node')} (injected={fault.get('injected')})"
           if fault["type"] != "none" else ""),
        f"  client errors: {outcomes['errors']} "
        f"(server 5xx: {outcomes['server_errors']})",
        f"  router: failovers={counters['failovers']:.0f} "
        f"hedges={counters['hedges']:.0f} hedge-wins={counters['hedge_wins']:.0f} "
        f"spills={counters['spills']:.0f}",
    ]
    nodes = report["loadgen"].get("nodes")
    if nodes:
        split = " ".join(f"{n}={c}" for n, c in nodes.items())
        lines.append(f"  node split: {split}")
    trace = report.get("trace", {})
    if trace.get("connected"):
        lines.append(
            f"  trace: router→{trace.get('node', '?')} connected "
            f"({trace.get('spans')} spans, {trace.get('trace_id', '')[:8]}…)"
        )
    overhead = report.get("overhead", {})
    if overhead.get("measured") and "overhead_pct" in overhead:
        lines.append(
            f"  overhead: router p50 {overhead['router_p50_ms']}ms vs direct "
            f"{overhead['direct_p50_ms']}ms ({overhead['overhead_pct']:+.1f}%)"
        )
    if report.get("report_path"):
        lines.append(f"  report: {report['report_path']}")
    return "\n".join(lines)
