"""Command-line interface for the validated translation pipeline.

Trust: **untrusted-but-checked** — orchestration and presentation; verdicts
it prints come from the kernel.

Subcommands::

    python -m repro.cli translate FILE.vpr [-o OUT.bpl] [options]
    python -m repro.cli certify   FILE.vpr [-o OUT.cert] [--oracle] [--timings]
    python -m repro.cli lint      FILE.vpr [--json] [--select IDS] [--ignore IDS]
    python -m repro.cli check     FILE.vpr OUT.bpl OUT.cert
    python -m repro.cli verify    FILE.vpr
    python -m repro.cli bench     [SUITE] [--jobs N] [--json PATH]
    python -m repro.cli fuzz      [--seed N] [--iterations N] [--replay PATH]
    python -m repro.cli serve     [--port N] [--jobs N] [--cache-dir DIR]
                                  [--trace-dir DIR]
    python -m repro.cli loadgen   [--requests N] [--concurrency N] [--json]
    python -m repro.cli trace     summarize FILE...
    python -m repro.cli tcb       check [--json] [--root DIR] [--doc PATH]

``certify`` runs the instrumented translation and writes the certificate;
``check`` re-checks a certificate *independently*: it parses the Viper
source, parses the Boogie file with the Boogie parser, parses the
certificate, and runs only the trusted kernel — the translator is not
involved.  ``verify`` runs the bounded back-end on each procedure.
``lint`` runs the advisory static analyzer (:mod:`repro.analysis`) and
exits 0 when clean, 1 when findings remain, and 2 when the program could
not even be parsed.  ``fuzz`` adversarially stress-tests the kernel
(:mod:`repro.fuzz`): it exits 0 iff no iteration crashed or produced an
oracle disagreement.
``serve`` runs the long-lived certification server
(:mod:`repro.service`); ``loadgen`` replays the harness corpus against
one and reports latency percentiles, throughput, and the cache split.
``trace summarize`` renders exported trace files (``certify --trace``,
``serve --trace-dir``) as an aggregate table plus a flame tree of the
slowest trace (:mod:`repro.trace`).
``tcb check`` turns the trust boundary inward: it statically analyzes
*this package's own source* against the machine-readable trust policy
(:mod:`repro.tcb`, docs/TCB_CHECK.md) and exits with the ``lint``
convention — 0 when the boundary holds, 1 on findings, 2 when the tree
could not be analyzed.

Every command drives :mod:`repro.pipeline` — the single place the stage
sequence (parse → desugar → typecheck → units → analyze → translate →
generate → render → reparse → check) is spelled out.  Pipeline failures
surface as structured
diagnostics (stage, source location, recovery hint) with exit code 2;
``SIGINT`` exits with the conventional 130 and ``SIGTERM`` drains
cleanly and exits 143 (both tested via subprocess).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import Optional

from .boogie.parser import parse_boogie_program
from .boogie.prover import Verdict, verify_procedure_bounded
from .certification import check_program_certificate, parse_program_certificate
from .certification.oracle import validate_program_semantically
from .frontend import procedure_name, TranslationOptions
from .frontend.background import build_background, constant_valuation, standard_interpretation
from .frontend.translator import TranslationResult
from .pipeline import (
    PipelineContext,
    PipelineError,
    PipelineInstrumentation,
    run_pipeline,
)


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _run_file_pipeline(path: str, upto: str, options=None, **kwargs) -> PipelineContext:
    """Run the staged pipeline on a Viper file, with CLI diagnostics."""
    return run_pipeline(_read_source(path), options, upto=upto, wrap_errors=True, **kwargs)


def _load_viper(path: str):
    """Parse, desugar, and type-check a Viper file (pipeline delegation).

    Retained for backwards compatibility; new code should call
    :func:`repro.pipeline.run_pipeline` directly.
    """
    ctx = _run_file_pipeline(path, upto="typecheck")
    return ctx.program, ctx.type_info


def _options_from(args: argparse.Namespace) -> TranslationOptions:
    return TranslationOptions(
        wd_checks_at_calls=getattr(args, "wd_at_calls", False),
        literal_perm_fastpath=not getattr(args, "no_fastpath", False),
        always_emit_exhale_havoc=getattr(args, "always_havoc", False),
    )


def _print_timings(ctx: PipelineContext) -> None:
    print("\nper-stage instrumentation:")
    for record in ctx.instrumentation.records:
        status = "cached" if record.cached else ("skipped" if record.skipped else f"{record.seconds:.4f}s")
        sizes = "".join(f"  {k}={v}" for k, v in record.artifacts.items())
        print(f"  {record.stage:<10} {status:>8}{sizes}")


def cmd_translate(args: argparse.Namespace) -> int:
    """`translate`: emit the Boogie program for a Viper file."""
    ctx = _run_file_pipeline(args.file, "translate", _options_from(args),
                             analyze=not args.no_analyze,
                             unit_jobs=args.unit_jobs)
    text = ctx.boogie_text
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    if args.timings:
        _print_timings(ctx)
    return 0


def _write_trace_file(path: str, root, inst: PipelineInstrumentation) -> None:
    """Export one CLI run's trace: the root span plus derived stage spans."""
    from .trace import spans_from_instrumentation, write_chrome_trace

    spans = [root] + spans_from_instrumentation(inst, parent=root.context())
    write_chrome_trace(path, spans)
    print(f"wrote {path} ({len(spans)} spans, trace {root.trace_id})")


def cmd_certify(args: argparse.Namespace) -> int:
    """`certify`: translate, generate, serialise, and independently check."""
    root = None
    if args.trace:
        from .trace import Span, use_context

        # The whole run shares one trace; the ambient context also rides
        # into --unit-jobs worker processes via the executor.  The trace
        # is written even when a stage raises — an errored run is exactly
        # the one worth inspecting — with the stages completed so far.
        inst = PipelineInstrumentation()
        root = Span.start("certify", attributes={"file": args.file})
        try:
            with use_context(root.context()):
                ctx = _run_file_pipeline(args.file, "check", _options_from(args),
                                         analyze=not args.no_analyze,
                                         unit_jobs=args.unit_jobs,
                                         instrumentation=inst)
        except Exception as error:
            root.end()
            root.set_error(str(error))
            _write_trace_file(args.trace, root, inst)
            raise
    else:
        ctx = _run_file_pipeline(args.file, "check", _options_from(args),
                                 analyze=not args.no_analyze,
                                 unit_jobs=args.unit_jobs)
    report = ctx.report
    if root is not None:
        root.end()
        if not report.ok:
            root.set_error(report.error)
        _write_trace_file(args.trace, root, ctx.instrumentation)
    if not report.ok:
        print(f"certification FAILED: {report.error}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(ctx.certificate_text)
        print(f"wrote {args.output} ({len(ctx.certificate_text.splitlines())} lines)")
    if args.boogie_output:
        with open(args.boogie_output, "w", encoding="utf-8") as handle:
            handle.write(ctx.boogie_text)
        print(f"wrote {args.boogie_output}")
    print(report.statement())
    summary = ctx.instrumentation.unit_cache_summary()
    if summary["reused"] or summary["rebuilt"]:
        print(f"units: {summary['reused']} reused, "
              f"{summary['rebuilt']} rebuilt")
    if args.timings:
        _print_timings(ctx)
        for record in ctx.instrumentation.unit_records:
            status = "reused" if record.reused else f"{record.seconds:.4f}s"
            print(f"  {record.stage:<10} {status:>8}  "
                  f"unit={record.method} tier={record.tier}")
    if args.oracle:
        print("\nsemantic oracle (failure-direction co-execution):")
        for verdict in validate_program_semantically(ctx.translation, max_states_per_method=12):
            status = "ok" if verdict.ok else f"FAILED: {verdict.detail}"
            print(f"  {verdict.method}: {status}")
            if not verdict.ok:
                return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """`lint`: run the static analyzer on a Viper file.

    Exit codes follow the linter convention: 0 = clean, 1 = findings,
    2 = the program could not be analyzed (parse failure) or the check
    selection was invalid.
    """
    from .analysis import CHECKS, lint_source

    if args.list_checks:
        for code in sorted(CHECKS):
            info = CHECKS[code]
            print(f"{code}  {info.severity:<7} {info.name:<22} {info.summary}")
        return 0
    if not args.file:
        print("lint: a FILE argument is required (or --list-checks)",
              file=sys.stderr)
        return 2
    try:
        result = lint_source(
            _read_source(args.file),
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
            error_on_warn=args.error_on_warn,
        )
    except ValueError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return result.exit_code
    if result.error is not None:
        print(result.error.render(), file=sys.stderr)
        return result.exit_code
    for finding in result.findings:
        where = f"{args.file}:{finding.line}" if finding.line else args.file
        scope = f" [{finding.method}]" if finding.method else ""
        print(f"{where}: {finding.severity} {finding.code}{scope}: "
              f"{finding.message}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    tail = f", {result.suppressed} suppressed" if result.suppressed else ""
    print(f"{len(result.findings)} {noun}{tail}")
    return result.exit_code


def cmd_check(args: argparse.Namespace) -> int:
    """Independent check: Viper source + Boogie file + certificate file."""
    ctx = _run_file_pipeline(args.file, "typecheck")
    program, type_info = ctx.program, ctx.type_info
    with open(args.boogie, "r", encoding="utf-8") as handle:
        boogie_program = parse_boogie_program(handle.read())
    with open(args.certificate, "r", encoding="utf-8") as handle:
        certificate = parse_program_certificate(handle.read())
    background = build_background(type_info.field_types)
    result = TranslationResult(
        viper_program=program,
        type_info=type_info,
        background=background,
        boogie_program=boogie_program,
        methods={},
        options=TranslationOptions(),
    )
    report = check_program_certificate(result, certificate)
    if report.ok:
        print(f"ACCEPTED in {report.check_seconds:.3f}s")
        print(report.statement())
        return 0
    print(f"REJECTED: {report.error}", file=sys.stderr)
    return 1


def cmd_verify(args: argparse.Namespace) -> int:
    """`verify`: bounded back-end verdict per procedure."""
    ctx = _run_file_pipeline(args.file, "translate")
    result = ctx.translation
    interp = standard_interpretation(ctx.type_info.field_types)
    consts = constant_valuation(result.background)
    exit_code = 0
    for method in ctx.program.methods:
        proc = result.boogie_program.procedure(procedure_name(method.name))
        verdict = verify_procedure_bounded(
            result.boogie_program, proc, interp, fixed=consts
        )
        print(f"{method.name}: {verdict.verdict}")
        if verdict.verdict is Verdict.REFUTED:
            exit_code = 1
    return exit_code


def cmd_rules(args: argparse.Namespace) -> int:
    """`rules`: print the kernel's rule catalog."""
    from .certification.rules import render_catalog

    print(render_catalog())
    return 0


def _bench_reports(
    suite: Optional[str],
    limit: Optional[int],
    samples: int,
    jobs: Optional[int],
    names=None,
) -> list:
    """Run the harness ``samples`` times; one ``bench_report`` dict per run.

    ``names`` (a set of ``(suite, name)`` pairs) restricts the run to the
    files a baseline actually covered, so ``bench diff`` without CURRENT
    re-measures exactly what it will compare.
    """
    from .harness import bench_report, full_corpus, run_files, suite_files

    corpus = {suite: suite_files(suite)} if suite else full_corpus()
    selected = {}
    for suite_name, files in corpus.items():
        if names is not None:
            files = [f for f in files if (suite_name, f.name) in names]
        if limit is not None:
            files = files[: max(limit, 0)]
        if files:
            selected[suite_name] = files
    if not selected:
        return []
    reports = []
    for _ in range(max(samples, 1)):
        per_suite = {
            suite_name: run_files(files, jobs=jobs)
            for suite_name, files in selected.items()
        }
        reports.append(bench_report(per_suite, jobs=jobs))
    return reports


def cmd_bench_record(args: argparse.Namespace) -> int:
    """`bench record`: append baseline sample(s) to the history store."""
    from .perf import DEFAULT_HISTORY_FILE, append_record, make_record

    reports = _bench_reports(args.suite, args.limit, args.samples, args.jobs)
    if not reports or not any(r.get("suites") for r in reports):
        print("bench record: no corpus files selected", file=sys.stderr)
        return 2
    path = args.out or DEFAULT_HISTORY_FILE
    for report in reports:
        append_record(path, make_record(report, label=args.label))
    files = sum(
        len(payload["files"])
        for payload in reports[0]["suites"].values()
    )
    print(
        f"recorded {len(reports)} sample(s) of {files} file(s) to {path}"
        + (f" (label {args.label!r})" if args.label else "")
    )
    return 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    """`bench diff`: statistically compare against a recorded baseline.

    Exit codes mirror ``lint``/``tcb check``: 0 = no regression, 1 =
    regression(s), 2 = nothing comparable / unreadable history.
    """
    from .perf import (
        CompareConfig,
        HistoryError,
        attribution_from_diff,
        compare_reports,
        environment_fingerprint,
        file_records,
        read_history,
    )

    if not args.base:
        print("bench diff: BASE history file required", file=sys.stderr)
        return 2
    try:
        base_records = read_history(args.base)
        if args.label:
            base_records = [r for r in base_records if r.label == args.label]
            if not base_records:
                raise HistoryError(
                    f"{args.base}: no records with label {args.label!r}"
                )
        if args.current:
            current_records = read_history(args.current)
        else:
            current_records = None
    except (OSError, HistoryError) as error:
        print(f"bench diff: {error}", file=sys.stderr)
        return 2
    base_reports = [r.report for r in base_records]
    base_fp = base_records[-1].fingerprint
    if current_records is not None:
        current_reports = [r.report for r in current_records]
        current_fp = current_records[-1].fingerprint
    else:
        # Re-run exactly the files the baseline covered, live.
        covered = set(file_records(base_reports, suite=args.suite))
        current_reports = _bench_reports(
            args.suite, args.limit, args.samples, args.jobs, names=covered
        )
        current_fp = environment_fingerprint()
    config = CompareConfig(
        noise_floor=args.noise_floor,
        min_seconds=args.min_seconds,
        bootstrap=args.bootstrap,
        confidence=args.confidence,
        calibrate=args.calibrate,
        seed=args.seed,
    )
    diff = compare_reports(
        base_reports,
        current_reports,
        config,
        suite=args.suite,
        base_fingerprint=base_fp,
        current_fingerprint=current_fp,
    )
    base_rows = file_records(base_reports, suite=args.suite)
    current_rows = file_records(current_reports, suite=args.suite)
    for file_diff in diff.regressions:
        key = (file_diff.suite, file_diff.name)
        diff.attributions.append(
            attribution_from_diff(
                file_diff, base_rows.get(key, []), current_rows.get(key, [])
            )
        )
    if args.json is not None:
        payload = json.dumps(diff.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
        return diff.exit_code
    print(diff.render())
    for attribution in diff.attributions:
        print()
        print(
            f"attribution {attribution['suite']}/{attribution['name']} "
            f"(guilty: {', '.join(attribution['guilty_stages'])}):"
        )
        for line in attribution["flame_diff"]:
            print(f"  {line}")
    return diff.exit_code


def cmd_bench(args: argparse.Namespace) -> int:
    """`bench`: run the harness (optionally in parallel), dump JSON/corpus.

    ``bench record`` / ``bench diff`` dispatch to the performance
    observatory (:mod:`repro.perf`).
    """
    from .harness import (
        dump_corpus,
        full_corpus,
        render_bench_json,
        render_detail_table,
        render_table1,
        run_files,
        suite_files,
    )

    if args.target == "record":
        return cmd_bench_record(args)
    if args.target == "diff":
        return cmd_bench_diff(args)
    if args.dump:
        count = dump_corpus(args.dump)
        print(f"wrote {count} corpus files under {args.dump}")
        return 0
    jobs = args.jobs

    def limited(files):
        return files[: max(args.limit, 0)] if args.limit is not None else files

    if args.target:
        per_suite = {
            args.target: run_files(limited(suite_files(args.target)), jobs=jobs)
        }
        print(render_detail_table(per_suite[args.target], f"{args.target} suite"))
    else:
        per_suite = {
            suite: run_files(limited(files), jobs=jobs)
            for suite, files in full_corpus().items()
        }
        print(render_table1(per_suite))
    if args.json is not None:
        payload = render_bench_json(per_suite, jobs=jobs)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """`perf profile`: one pipeline run under cProfile, hotspots first."""
    from .perf import profile_source, render_profile

    if args.perf_command == "profile":
        try:
            source = _read_source(args.file)
        except OSError as error:
            print(f"perf profile: {error}", file=sys.stderr)
            return 2
        profile = profile_source(
            source,
            upto=args.upto,
            top=args.top,
            analyze=not args.no_analyze,
        )
        if args.json is not None:
            payload = json.dumps(profile, indent=2)
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
                print(f"wrote {args.json}")
        else:
            print(render_profile(profile))
        return 0
    raise AssertionError(f"unknown perf command {args.perf_command!r}")


def cmd_fuzz(args: argparse.Namespace) -> int:
    """`fuzz`: adversarially fuzz the trusted certification kernel.

    Exit code 0 iff the run is clean — no pipeline crash, no kernel
    crash, and no kernel-accepted mutant that the differential oracle
    refutes.  Kernel *rejections* of corrupted artifacts are the expected
    outcome (the kernel doing its job), not failures.
    """
    from .fuzz import FuzzConfig, FuzzCorpus, replay_record, run_fuzz

    if args.replay:
        record = FuzzCorpus.load(args.replay)
        report = replay_record(record, minimize=not args.no_minimize)
    else:
        config = FuzzConfig(
            seed=args.seed,
            iterations=args.iterations,
            time_budget=args.time_budget,
            jobs=args.jobs,
            corpus_dir=args.corpus_dir,
            minimize=not args.no_minimize,
        )
        report = run_fuzz(config)
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """`serve`: run the long-lived certification server (repro.service)."""
    from .service import run_server, ServerConfig
    from .service.admission import RequestLimits

    config = ServerConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        use_threads=args.threads,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        recycle_after=args.recycle_after,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_bytes,
        limits=RequestLimits(max_source_bytes=args.max_source_bytes),
        drain_grace=args.drain_grace,
        quiet=False,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        trace_rate=args.trace_rate,
        trace_seed=args.trace_seed,
        perf_baseline=args.perf_baseline,
        perf_window=args.perf_window,
    )
    return run_server(config)


def cmd_trace(args: argparse.Namespace) -> int:
    """`trace summarize`: aggregate table + flame tree from trace files."""
    from .trace import read_many, render_summary, summary_to_dict

    try:
        spans = read_many(args.files)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2
    if getattr(args, "json", None) is not None:
        payload = json.dumps(summary_to_dict(spans), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    else:
        print(render_summary(spans))
    return 0 if spans else 1


def cmd_tcb(args: argparse.Namespace) -> int:
    """`tcb check`: machine-check the trust boundary over repro's source.

    Exit codes mirror ``lint``: 0 = the boundary holds, 1 = findings,
    2 = the tree (or the inventory document) could not be analyzed.
    """
    from .tcb import ALL_TCB_CHECK_IDS, TB_CHECKS, check_tree

    if args.list_checks:
        for code in ALL_TCB_CHECK_IDS:
            info = TB_CHECKS[code]
            print(f"{code}  {info.severity:<7} {info.name:<32} {info.summary}")
        return 0
    kwargs = {}
    if args.root:
        kwargs["src_root"] = args.root
    if args.doc:
        kwargs["doc_path"] = args.doc
    elif args.no_doc:
        kwargs["use_default_doc"] = False
    result = check_tree(**kwargs)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return result.exit_code
    if result.error is not None:
        print(result.render(), file=sys.stderr)
        return result.exit_code
    print(result.render())
    return result.exit_code


def cmd_loadgen(args: argparse.Namespace) -> int:
    """`loadgen`: replay the corpus against a server; report latency/cache."""
    from .service.client import ServiceError
    from .service.loadgen import LoadgenConfig, run_loadgen, summarise

    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        requests=args.requests,
        concurrency=args.concurrency,
        suite=args.suite,
        warmup=args.warmup,
        baseline=args.baseline,
        defects=args.defects,
        report_path=args.report,
    )
    try:
        report = run_loadgen(config)
    except ServiceError as error:
        print(f"loadgen failed: {error}", file=sys.stderr)
        return 1
    if args.json is not None:
        payload = json.dumps(report, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    print(summarise(report))
    return 0 if report["outcomes"]["errors"] == 0 else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    """`cluster route` / `cluster chaos`: the scale-out layer."""
    if args.cluster_command == "route":
        from .cluster import RouterConfig, run_router

        config = RouterConfig(
            host=args.host,
            port=args.port,
            nodes=args.node,
            replication=args.replication,
            max_in_flight=args.max_in_flight,
            request_timeout=args.request_timeout,
            probe_interval=args.probe_interval,
            hedge_delay_floor=args.hedge_floor,
            retries=args.retries,
            quiet=False,
            trace_dir=args.trace_dir,
            trace_sample=args.trace_sample,
        )
        return run_router(config)

    from .cluster.chaos import ChaosConfig, run_chaos, summarise

    config = ChaosConfig(
        nodes=args.nodes,
        replication=args.replication,
        requests=args.requests,
        concurrency=args.concurrency,
        suite=args.suite,
        fault=args.fault,
        fault_node=args.fault_node,
        fault_after=args.fault_after,
        measure_overhead=not args.no_overhead,
        jobs_per_node=args.jobs_per_node,
        report_path=args.report,
        quiet=args.json == "-",
    )
    report = run_chaos(config)
    if args.json is not None:
        payload = json.dumps(report, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote {args.json}")
    if args.json != "-":
        print(summarise(report))
    return 0 if report["ok"] else 1


def _version() -> str:
    """The package version.

    The in-tree ``repro.__version__`` is the source of truth (it tracks
    the checkout actually being executed); installed distribution
    metadata is the fallback for the unusual case of a stripped package.
    """
    try:
        from . import __version__

        return __version__
    except Exception:
        from importlib.metadata import version

        return version("repro")


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Validated Viper-to-Boogie translation"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    translate = sub.add_parser("translate", help="translate a Viper file to Boogie")
    translate.add_argument("file")
    translate.add_argument("-o", "--output")
    certify = sub.add_parser("certify", help="translate and certify a Viper file")
    certify.add_argument("file")
    certify.add_argument("-o", "--output", help="write the certificate here")
    certify.add_argument("--boogie-output", help="also write the Boogie program")
    certify.add_argument("--oracle", action="store_true",
                         help="additionally co-execute both semantics")
    certify.add_argument("--trace", metavar="PATH",
                         help="write a Chrome-trace JSON of the run "
                              "(open in about:tracing / Perfetto, or feed "
                              "to 'repro trace summarize')")
    for command in (translate, certify):
        command.add_argument("--wd-at-calls", action="store_true",
                             help="emit wd checks at call sites (disable the "
                                  "non-local optimisation)")
        command.add_argument("--no-fastpath", action="store_true",
                             help="disable the permission-literal fast path")
        command.add_argument("--always-havoc", action="store_true",
                             help="emit the exhale heap havoc even for pure "
                                  "assertions")
        command.add_argument("--timings", action="store_true",
                             help="print per-stage instrumentation records")
        command.add_argument("--no-analyze", action="store_true",
                             help="skip the advisory static-analysis stage")
        command.add_argument("--unit-jobs", type=int, default=None, metavar="N",
                             help="translate method units over N worker "
                                  "processes (0 = one per CPU; default: "
                                  "serial)")
    lint = sub.add_parser("lint", help="static analysis (advisory lints)")
    lint.add_argument("file", nargs="?",
                      help="the Viper source to analyze")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as machine-readable JSON")
    lint.add_argument("--select", metavar="IDS",
                      help="comma-separated check IDs to run exclusively "
                           "(e.g. VPR001,VPR008)")
    lint.add_argument("--ignore", metavar="IDS",
                      help="comma-separated check IDs to drop")
    lint.add_argument("--error-on-warn", action="store_true",
                      help="promote every warning finding to error severity")
    lint.add_argument("--list-checks", action="store_true",
                      help="print the check catalog and exit")
    check = sub.add_parser("check", help="independently check a certificate")
    check.add_argument("file", help="the Viper source")
    check.add_argument("boogie", help="the Boogie translation (.bpl)")
    check.add_argument("certificate", help="the certificate (.cert)")
    verify = sub.add_parser("verify", help="bounded back-end verification")
    verify.add_argument("file")
    sub.add_parser("rules", help="list the kernel's proof rules")
    bench = sub.add_parser(
        "bench",
        help="run the evaluation harness (or 'record'/'diff' its history)",
    )
    bench.add_argument("target", nargs="?", metavar="TARGET",
                       choices=["Viper", "Gobra", "VerCors", "MPP",
                                "record", "diff"],
                       help="a suite to run, or 'record' (append a baseline "
                            "to the history store) / 'diff' (compare against "
                            "a recorded baseline)")
    bench.add_argument("base", nargs="?", metavar="BASE",
                       help="(diff) the baseline history JSONL")
    bench.add_argument("current", nargs="?", metavar="CURRENT",
                       help="(diff) a current history JSONL; omitted = "
                            "re-run the baseline's files live")
    bench.add_argument("--dump", metavar="DIR",
                       help="write the corpus .vpr files to DIR instead of "
                            "running the pipeline")
    bench.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                       help="fan out over N worker processes (0 = one per "
                            "CPU; default: serial)")
    bench.add_argument("--json", nargs="?", const="-", metavar="PATH",
                       help="also write machine-readable output to PATH "
                            "('-' or no value = stdout)")
    bench.add_argument("--suite", choices=["Viper", "Gobra", "VerCors", "MPP"],
                       help="(record/diff) restrict to one suite")
    bench.add_argument("--limit", type=int, default=None, metavar="N",
                       help="only the first N files per suite (a fast CI "
                            "subset; applies to plain runs too)")
    bench.add_argument("--samples", type=int, default=1, metavar="N",
                       help="(record/diff) repeat the harness N times — "
                            "each run is one sample for the bootstrap "
                            "comparator (default: 1)")
    bench.add_argument("--label", default="", metavar="NAME",
                       help="(record/diff) label the recorded samples / "
                            "select baseline samples by label")
    bench.add_argument("--out", metavar="PATH",
                       help="(record) the history file to append to "
                            "(default: benchmarks/results/history/"
                            "history.jsonl)")
    bench.add_argument("--noise-floor", type=float, default=0.5, metavar="F",
                       help="(diff) page only when the whole confidence "
                            "interval sits above 1+F (default: 0.5, i.e. "
                            "a provable 1.5× median ratio)")
    bench.add_argument("--min-seconds", type=float, default=0.005,
                       metavar="S",
                       help="(diff) skip (file, stage) pairs whose medians "
                            "are both under S — sub-noise-quantum timings "
                            "carry no signal (default: 0.005)")
    bench.add_argument("--bootstrap", type=int, default=400, metavar="B",
                       help="(diff) bootstrap resamples per comparison "
                            "(default: 400)")
    bench.add_argument("--confidence", type=float, default=0.95, metavar="C",
                       help="(diff) central CI mass (default: 0.95)")
    bench.add_argument("--calibrate", choices=["auto", "on", "off"],
                       default="auto",
                       help="(diff) cross-machine calibration by the median "
                            "stage ratio: auto = when environment "
                            "fingerprints differ (default: auto)")
    bench.add_argument("--seed", type=int, default=0, metavar="N",
                       help="(diff) root seed of the deterministic "
                            "bootstrap (default: 0)")
    fuzz = sub.add_parser("fuzz",
                          help="adversarially fuzz the certification kernel")
    fuzz.add_argument("--seed", type=int, default=0, metavar="N",
                      help="root seed of the deterministic schedule "
                           "(default: 0)")
    fuzz.add_argument("--iterations", "-n", type=int, default=100, metavar="N",
                      help="number of fuzz cases to run (default: 100)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop dispatching new cases after this many "
                           "seconds (already-dispatched cases complete)")
    fuzz.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                      help="fan out over N worker processes (0 = one per "
                           "CPU; default: serial)")
    fuzz.add_argument("--corpus-dir", default="fuzz-corpus", metavar="DIR",
                      help="replayable failure corpus directory "
                           "(default: fuzz-corpus)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip delta-debugging minimization of failures")
    fuzz.add_argument("--replay", metavar="PATH",
                      help="re-judge one persisted failure (a corpus bucket "
                           "directory or its repro.json) instead of fuzzing")
    fuzz.add_argument("--json", metavar="PATH",
                      help="also write the machine-readable fuzz report "
                           "to PATH")
    serve = sub.add_parser("serve",
                           help="run the certification server (repro.service)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8421,
                       help="listening port (0 = ephemeral; default: 8421)")
    serve.add_argument("--jobs", "-j", type=int, default=0, metavar="N",
                       help="worker processes (0 = one per CPU; default: 0)")
    serve.add_argument("--threads", action="store_true",
                       help="use in-process worker threads instead of a "
                            "process pool")
    serve.add_argument("--queue-limit", type=int, default=64, metavar="N",
                       help="max queued+in-flight requests before 429 "
                            "(default: 64)")
    serve.add_argument("--request-timeout", type=float, default=120.0,
                       metavar="SECONDS", help="per-request deadline "
                       "(default: 120)")
    serve.add_argument("--recycle-after", type=int, default=500, metavar="N",
                       help="recycle worker processes after N jobs "
                            "(0 = never; default: 500)")
    serve.add_argument("--cache-dir", metavar="DIR",
                       help="disk cache root for untrusted artifacts "
                            "(default: in-memory caching only)")
    serve.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                       metavar="N", help="disk cache LRU size bound "
                       "(default: 64 MiB)")
    serve.add_argument("--max-source-bytes", type=int, default=256 * 1024,
                       metavar="N", help="largest accepted source "
                       "(default: 256 KiB)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="shutdown grace for in-flight work (default: 10)")
    serve.add_argument("--trace-dir", metavar="DIR",
                       help="persist request traces here: the N slowest, "
                            "every errored request, and a sampled fraction "
                            "(default: tracing off)")
    serve.add_argument("--trace-sample", type=int, default=10, metavar="N",
                       help="how many slowest-request traces to keep "
                            "(default: 10)")
    serve.add_argument("--trace-rate", type=float, default=0.0, metavar="R",
                       help="additionally persist this fraction of all "
                            "requests, chosen by trace-id hash "
                            "(default: 0.0)")
    serve.add_argument("--trace-seed", type=int, default=0, metavar="N",
                       help="salt for the deterministic trace sampler "
                            "(default: 0)")
    serve.add_argument("--perf-baseline", metavar="PATH",
                       help="a bench history JSONL ('repro bench record' "
                            "output); enables GET /v1/perf drift ratios and "
                            "the repro_stage_seconds_baseline_ratio gauges")
    serve.add_argument("--perf-window", type=int, default=256, metavar="N",
                       help="per-request stage timings kept in the rolling "
                            "perf window (default: 256)")
    loadgen = sub.add_parser("loadgen",
                             help="replay the corpus against a running server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8421)
    loadgen.add_argument("--requests", "-n", type=int, default=144, metavar="N",
                         help="total requests to send (default: 144 — the "
                              "72-file corpus twice)")
    loadgen.add_argument("--concurrency", "-c", type=int, default=8, metavar="N",
                         help="client threads (default: 8)")
    loadgen.add_argument("--suite",
                         choices=["Viper", "Gobra", "VerCors", "MPP"],
                         help="replay one suite instead of all 72 files")
    loadgen.add_argument("--warmup", action="store_true",
                         help="send each program once, unmeasured, before "
                              "the run (reports warm-cache behaviour)")
    loadgen.add_argument("--defects", type=int, default=0, metavar="N",
                         help="mix N lint-defective requests into the run "
                              "(exercises the 422 admission fast path)")
    loadgen.add_argument("--baseline", type=int, default=0, metavar="N",
                         help="also time N single-shot CLI certifications "
                              "for the speedup comparison")
    loadgen.add_argument("--report", metavar="PATH",
                         default=os.path.join("benchmarks", "results",
                                              "loadgen_report.json"),
                         help="write the JSON latency report here "
                              "(default: benchmarks/results/"
                              "loadgen_report.json; '' disables)")
    loadgen.add_argument("--json", nargs="?", const="-", metavar="PATH",
                         help="print the full JSON report to stdout "
                              "(or write it to PATH)")
    cluster = sub.add_parser("cluster",
                             help="scale-out: the sharding router and the "
                                  "fault-injection harness")
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    route = cluster_sub.add_parser(
        "route", help="run the sharding router in front of N serve nodes"
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=8420,
                       help="router listen port (default: 8420)")
    route.add_argument("--node", action="append", required=True,
                       metavar="[NAME=]HOST:PORT",
                       help="an upstream node (repeat per node)")
    route.add_argument("--replication", "-r", type=int, default=2, metavar="R",
                       help="ring owners per key (default: 2)")
    route.add_argument("--max-in-flight", type=int, default=32, metavar="N",
                       help="per-node in-flight bound before spilling to a "
                            "replica (default: 32)")
    route.add_argument("--request-timeout", type=float, default=120.0,
                       metavar="SECONDS",
                       help="per-proxied-request deadline (default: 120)")
    route.add_argument("--probe-interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="health probe cadence (default: 0.25)")
    route.add_argument("--hedge-floor", type=float, default=0.02,
                       metavar="SECONDS",
                       help="minimum hedge delay; the actual delay is "
                            "max(floor, 1.5 × node p95) (default: 0.02)")
    route.add_argument("--retries", type=int, default=2, metavar="N",
                       help="same-node retries with backoff when no replica "
                            "remains (default: 2)")
    route.add_argument("--trace-dir", metavar="DIR",
                       help="persist router request traces here (spans "
                            "cover the router→node hop)")
    route.add_argument("--trace-sample", type=int, default=10, metavar="N",
                       help="keep the N slowest routed traces (default: 10)")
    chaos = cluster_sub.add_parser(
        "chaos",
        help="start nodes + router, inject a fault under load, report",
    )
    chaos.add_argument("--nodes", type=int, default=3, metavar="N",
                       help="cluster size (default: 3)")
    chaos.add_argument("--replication", "-r", type=int, default=2, metavar="R",
                       help="ring owners per key (default: 2)")
    chaos.add_argument("--requests", "-n", type=int, default=50, metavar="N",
                       help="requests through the router (default: 50)")
    chaos.add_argument("--concurrency", "-c", type=int, default=8, metavar="N",
                       help="client threads (default: 8)")
    chaos.add_argument("--suite", default="Viper",
                       choices=["Viper", "Gobra", "VerCors", "MPP"],
                       help="replay corpus suite (default: Viper)")
    chaos.add_argument("--fault", default="kill",
                       choices=["kill", "stall", "corrupt", "none"],
                       help="the fault to inject mid-run (default: kill)")
    chaos.add_argument("--fault-node", type=int, default=0, metavar="I",
                       help="index of the node to fault (default: 0)")
    chaos.add_argument("--fault-after", type=float, default=0.3, metavar="F",
                       help="inject after this fraction of the run has been "
                            "proxied (default: 0.3)")
    chaos.add_argument("--jobs-per-node", type=int, default=1, metavar="N",
                       help="worker processes per node (default: 1)")
    chaos.add_argument("--no-overhead", action="store_true",
                       help="skip the router-vs-direct p50 overhead phase")
    chaos.add_argument("--report", metavar="PATH",
                       help="write the JSON chaos report here")
    chaos.add_argument("--json", nargs="?", const="-", metavar="PATH",
                       help="print the full JSON report to stdout "
                            "(or write it to PATH)")
    trace = sub.add_parser("trace", help="inspect exported request traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize",
        help="aggregate span table plus a flame tree of the slowest trace",
    )
    trace_summarize.add_argument(
        "files", nargs="+", metavar="FILE",
        help="Chrome-trace or JSONL span files (certify --trace output, "
             "or *.trace.json files from serve --trace-dir)",
    )
    trace_summarize.add_argument(
        "--json", nargs="?", const="-", metavar="PATH",
        help="emit the summary (stats table + flame tree) as JSON to "
             "stdout, or write it to PATH",
    )
    perf = sub.add_parser(
        "perf",
        help="performance observatory: deterministic pipeline profiling",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_profile = perf_sub.add_parser(
        "profile",
        help="run one file through the pipeline under cProfile and "
             "report per-stage seconds plus the top-N hotspots",
    )
    perf_profile.add_argument("file", help="the Viper source to profile")
    perf_profile.add_argument("--upto", default="check", metavar="STAGE",
                              help="run the pipeline through this stage "
                                   "(default: check)")
    perf_profile.add_argument("--top", type=int, default=20, metavar="N",
                              help="hotspots to report (default: 20)")
    perf_profile.add_argument("--no-analyze", action="store_true",
                              help="skip the advisory static-analysis stage")
    perf_profile.add_argument("--json", nargs="?", const="-", metavar="PATH",
                              help="emit the profile as JSON to stdout, or "
                                   "write it to PATH")
    tcb = sub.add_parser(
        "tcb",
        help="machine-check the trust boundary over repro's own source",
    )
    tcb_sub = tcb.add_subparsers(dest="tcb_command", required=True)
    tcb_check = tcb_sub.add_parser(
        "check",
        help="run the TB001-TB008 trust-boundary checks "
             "(docs/TCB_CHECK.md)",
    )
    tcb_check.add_argument(
        "--json", action="store_true",
        help="print the full result as JSON",
    )
    tcb_check.add_argument(
        "--root", metavar="DIR", default=None,
        help="source tree to analyze (default: the directory containing "
             "the installed repro package)",
    )
    tcb_check.add_argument(
        "--doc", metavar="PATH", default=None,
        help="TRUSTED_BASE.md inventory to cross-check (default: the "
             "checkout's docs/TRUSTED_BASE.md; TB008 is skipped when "
             "absent)",
    )
    tcb_check.add_argument(
        "--no-doc", action="store_true",
        help="skip the TB008 doc-consistency check",
    )
    tcb_check.add_argument(
        "--list-checks", action="store_true",
        help="list the TB check catalog and exit",
    )
    return parser


def _silence_stdout() -> None:
    """Point stdout at /dev/null so interpreter shutdown can't re-raise
    BrokenPipeError while flushing."""
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    except (OSError, ValueError):
        pass


def _flush_stdout_safely() -> int:
    """Flush stdout; returns 1 if the consumer is gone, else 0."""
    try:
        sys.stdout.flush()
    except BrokenPipeError:
        _silence_stdout()
        return 1
    except (OSError, ValueError):
        return 1
    return 0


class _Terminated(Exception):
    """Raised by the SIGTERM handler to unwind into a clean 143 exit."""


def _raise_terminated(signum, frame):  # pragma: no cover - signal context
    raise _Terminated()


def main(argv: Optional[list] = None) -> int:
    """Entry point; returns the process exit code.

    Exit codes: 0 success, 1 command-level failure (rejected certificate,
    refuted procedure), 2 pipeline diagnostic (parse/type/translate error),
    130 on ``SIGINT`` (the conventional ``128 + SIGINT``), 143 on
    ``SIGTERM`` (``128 + SIGTERM``, after a clean unwind — ``serve``
    additionally drains in-flight requests and flushes its disk cache
    before exiting).
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "translate": cmd_translate,
        "certify": cmd_certify,
        "lint": cmd_lint,
        "check": cmd_check,
        "verify": cmd_verify,
        "rules": cmd_rules,
        "bench": cmd_bench,
        "fuzz": cmd_fuzz,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "cluster": cmd_cluster,
        "trace": cmd_trace,
        "perf": cmd_perf,
        "tcb": cmd_tcb,
    }
    previous_sigterm = None
    if threading.current_thread() is threading.main_thread():
        # Long-running commands (bench over the corpus, fuzz campaigns,
        # serve) must terminate cleanly under SIGTERM.  `serve` swaps in
        # its own asyncio handler that drains before exiting.
        try:
            previous_sigterm = signal.signal(signal.SIGTERM, _raise_terminated)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            previous_sigterm = None
    try:
        code = handlers[args.command](args)
        _flush_stdout_safely()
        return code
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head).
        _silence_stdout()
        return 0
    except KeyboardInterrupt:
        _flush_stdout_safely()
        print("interrupted", file=sys.stderr)
        return 130
    except _Terminated:
        _flush_stdout_safely()
        print("terminated", file=sys.stderr)
        return 143
    except PipelineError as error:
        print(error.diagnostic.render(), file=sys.stderr)
        return 2
    finally:
        if previous_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except (ValueError, OSError):  # pragma: no cover
                pass


if __name__ == "__main__":
    sys.exit(main())
