"""Command-line interface for the validated translation pipeline.

Subcommands::

    python -m repro.cli translate FILE.vpr [-o OUT.bpl] [options]
    python -m repro.cli certify   FILE.vpr [-o OUT.cert] [--oracle]
    python -m repro.cli check     FILE.vpr OUT.bpl OUT.cert
    python -m repro.cli verify    FILE.vpr
    python -m repro.cli bench     [SUITE]

``certify`` runs the instrumented translation and writes the certificate;
``check`` re-checks a certificate *independently*: it parses the Viper
source, parses the Boogie file with the Boogie parser, parses the
certificate, and runs only the trusted kernel — the translator is not
involved.  ``verify`` runs the bounded back-end on each procedure.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .boogie.parser import parse_boogie_program
from .boogie.pretty import pretty_boogie_program
from .boogie.prover import Verdict, verify_procedure_bounded
from .certification import (
    certify_translation,
    check_program_certificate,
    parse_program_certificate,
    render_program_certificate,
)
from .certification.oracle import validate_program_semantically
from .frontend import procedure_name, translate_program, TranslationOptions
from .frontend.background import build_background, constant_valuation, standard_interpretation
from .frontend.translator import TranslationResult
from .viper import (
    check_program,
    desugar_loops,
    desugar_new,
    desugar_old,
    parse_program,
    program_has_loops,
    program_has_new,
    program_has_old,
)


def _load_viper(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    program = parse_program(source)
    if program_has_loops(program):
        program = desugar_loops(program)
    if program_has_new(program):
        program = desugar_new(program)
    if program_has_old(program):
        program = desugar_old(program)
    from .viper import hoist_call_args, program_has_complex_call_args

    if program_has_complex_call_args(program):
        program = hoist_call_args(program)
    return program, check_program(program)


def _options_from(args: argparse.Namespace) -> TranslationOptions:
    return TranslationOptions(
        wd_checks_at_calls=getattr(args, "wd_at_calls", False),
        literal_perm_fastpath=not getattr(args, "no_fastpath", False),
        always_emit_exhale_havoc=getattr(args, "always_havoc", False),
    )


def cmd_translate(args: argparse.Namespace) -> int:
    """`translate`: emit the Boogie program for a Viper file."""
    program, type_info = _load_viper(args.file)
    result = translate_program(program, type_info, _options_from(args))
    text = pretty_boogie_program(result.boogie_program)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    """`certify`: translate, generate, and check a certificate."""
    program, type_info = _load_viper(args.file)
    result = translate_program(program, type_info, _options_from(args))
    certificate, report = certify_translation(result)
    if not report.ok:
        print(f"certification FAILED: {report.error}", file=sys.stderr)
        return 1
    text = render_program_certificate(certificate)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    if args.boogie_output:
        with open(args.boogie_output, "w", encoding="utf-8") as handle:
            handle.write(pretty_boogie_program(result.boogie_program))
        print(f"wrote {args.boogie_output}")
    print(report.statement())
    if args.oracle:
        print("\nsemantic oracle (failure-direction co-execution):")
        for verdict in validate_program_semantically(result, max_states_per_method=12):
            status = "ok" if verdict.ok else f"FAILED: {verdict.detail}"
            print(f"  {verdict.method}: {status}")
            if not verdict.ok:
                return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Independent check: Viper source + Boogie file + certificate file."""
    program, type_info = _load_viper(args.file)
    with open(args.boogie, "r", encoding="utf-8") as handle:
        boogie_program = parse_boogie_program(handle.read())
    with open(args.certificate, "r", encoding="utf-8") as handle:
        certificate = parse_program_certificate(handle.read())
    background = build_background(type_info.field_types)
    result = TranslationResult(
        viper_program=program,
        type_info=type_info,
        background=background,
        boogie_program=boogie_program,
        methods={},
        options=TranslationOptions(),
    )
    report = check_program_certificate(result, certificate)
    if report.ok:
        print(f"ACCEPTED in {report.check_seconds:.3f}s")
        print(report.statement())
        return 0
    print(f"REJECTED: {report.error}", file=sys.stderr)
    return 1


def cmd_verify(args: argparse.Namespace) -> int:
    """`verify`: bounded back-end verdict per procedure."""
    program, type_info = _load_viper(args.file)
    result = translate_program(program, type_info)
    interp = standard_interpretation(type_info.field_types)
    consts = constant_valuation(result.background)
    exit_code = 0
    for method in program.methods:
        proc = result.boogie_program.procedure(procedure_name(method.name))
        verdict = verify_procedure_bounded(
            result.boogie_program, proc, interp, fixed=consts
        )
        print(f"{method.name}: {verdict.verdict}")
        if verdict.verdict is Verdict.REFUTED:
            exit_code = 1
    return exit_code


def cmd_rules(args: argparse.Namespace) -> int:
    """`rules`: print the kernel's rule catalog."""
    from .certification.rules import render_catalog

    print(render_catalog())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """`bench`: run the harness or dump the corpus."""
    from .harness import (
        dump_corpus,
        full_corpus,
        render_detail_table,
        render_table1,
        run_files,
        suite_files,
    )

    if args.dump:
        count = dump_corpus(args.dump)
        print(f"wrote {count} corpus files under {args.dump}")
        return 0
    if args.suite:
        metrics = run_files(suite_files(args.suite))
        print(render_detail_table(metrics, f"{args.suite} suite"))
    else:
        per_suite = {suite: run_files(files) for suite, files in full_corpus().items()}
        print(render_table1(per_suite))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Validated Viper-to-Boogie translation"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    translate = sub.add_parser("translate", help="translate a Viper file to Boogie")
    translate.add_argument("file")
    translate.add_argument("-o", "--output")
    certify = sub.add_parser("certify", help="translate and certify a Viper file")
    certify.add_argument("file")
    certify.add_argument("-o", "--output", help="write the certificate here")
    certify.add_argument("--boogie-output", help="also write the Boogie program")
    certify.add_argument("--oracle", action="store_true",
                         help="additionally co-execute both semantics")
    for command in (translate, certify):
        command.add_argument("--wd-at-calls", action="store_true",
                             help="emit wd checks at call sites (disable the "
                                  "non-local optimisation)")
        command.add_argument("--no-fastpath", action="store_true",
                             help="disable the permission-literal fast path")
        command.add_argument("--always-havoc", action="store_true",
                             help="emit the exhale heap havoc even for pure "
                                  "assertions")
    check = sub.add_parser("check", help="independently check a certificate")
    check.add_argument("file", help="the Viper source")
    check.add_argument("boogie", help="the Boogie translation (.bpl)")
    check.add_argument("certificate", help="the certificate (.cert)")
    verify = sub.add_parser("verify", help="bounded back-end verification")
    verify.add_argument("file")
    sub.add_parser("rules", help="list the kernel's proof rules")
    bench = sub.add_parser("bench", help="run the evaluation harness")
    bench.add_argument("suite", nargs="?",
                       choices=["Viper", "Gobra", "VerCors", "MPP"])
    bench.add_argument("--dump", metavar="DIR",
                       help="write the corpus .vpr files to DIR instead of "
                            "running the pipeline")
    return parser


def main(argv: Optional[list] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "translate": cmd_translate,
        "certify": cmd_certify,
        "check": cmd_check,
        "verify": cmd_verify,
        "rules": cmd_rules,
        "bench": cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head).
        return 0


if __name__ == "__main__":
    sys.exit(main())
