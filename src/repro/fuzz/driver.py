"""The adversarial fuzzing driver: generate → pipeline → oracle → mutate.

Trust: **advisory** — fuzz campaign orchestration.

Each iteration of :func:`run_fuzz` exercises the full trust story once:

1. **Clean run** — a seeded well-typed Viper program (from
   :mod:`repro.fuzz.generate` or the handcrafted seed corpus) goes through
   :func:`repro.pipeline.run_pipeline` end to end.  The expected outcome
   is ``accept``; a kernel rejection of a pristine translation
   (``reject``), any exception (``crash``), or a differential-oracle
   disagreement (``oracle-disagreement``) is a failure of the system under
   test.
2. **Incremental-consistency run** — one semantically inert
   single-method source edit (:func:`repro.fuzz.mutators.mutate_single_method`)
   re-runs the pipeline against the warm unit cache of the clean run.
   The rebuilt set must equal what the dependency map
   (:mod:`repro.pipeline.units`) predicts: the mutated unit alone for a
   body edit, the unit plus its transitive callers for a spec edit.  A
   disagreement is ``unit-mismatch`` — a bug in the incrementality
   layer's cache routing (never a soundness bug, but a broken rebuild
   contract).
3. **Mutant run** — one adversarial mutator from
   :mod:`repro.fuzz.mutators` corrupts an untrusted artifact of the same
   translation, and the trusted reparse+check path judges the corrupted
   pair.  The expected outcome is ``mutant-reject``; a kernel exception is
   ``mutant-crash`` and a kernel acceptance is escalated by the oracle:
   semantic disagreement means ``oracle-disagreement`` (a soundness bug —
   the kernel certified a lie), while semantic agreement is recorded as
   ``mutant-accept-benign`` (the corruption was provably inert; the kernel
   was *right* to accept).

Failures are deduplicated by bucket signature, persisted to a replayable
corpus (:mod:`repro.fuzz.corpus`), and delta-debugged to minimal
reproducers (:mod:`repro.fuzz.minimize`).  Iterations are deterministic
functions of ``(seed, index)`` — :func:`derive_seed` — so a run can be
bisected, parallelised over :func:`repro.pipeline.executor.parallel_map`
workers, or replayed case by case without changing any verdict.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..certification.oracle import validate_program_semantically
from ..certification.prooftree import (
    CertificateParseError,
    parse_program_certificate,
)
from ..certification.theorem import check_program_certificate
from ..frontend.translator import TranslationOptions, TranslationResult
from ..pipeline import ArtifactCache, PipelineError, run_pipeline
from ..pipeline.executor import parallel_map_batches, resolve_jobs
from ..pipeline.units import callers_of
from ..viper.pretty import pretty_program
from .corpus import bucket_for, FailureRecord, FuzzCorpus
from .generate import derive_seed, generate_program, SEED_CORPUS
from .minimize import minimize_cert_text, minimize_source
from .mutators import (
    make_subject,
    Mutation,
    mutate_single_method,
    MUTATORS,
    MUTATORS_BY_NAME,
    normalize_certificate,
)

__all__ = [
    "CaseResult",
    "FAILURE_OUTCOMES",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "OPTION_VARIANTS",
    "build_case",
    "replay_record",
    "run_case",
    "run_fuzz",
]


# ---------------------------------------------------------------------------
# Configuration and the deterministic case schedule
# ---------------------------------------------------------------------------

#: Translation variants rotated through by the schedule.  Fuzzing only the
#: default variant would leave whole kernel branches (wd-checks at calls,
#: temp-based permissions, unconditional exhale havocs) untested.
OPTION_VARIANTS: Dict[str, TranslationOptions] = {
    "default": TranslationOptions(),
    "wd-at-calls": TranslationOptions(wd_checks_at_calls=True),
    "no-fastpath": TranslationOptions(literal_perm_fastpath=False),
    "always-havoc": TranslationOptions(always_emit_exhale_havoc=True),
}

_OPTION_NAMES = tuple(OPTION_VARIANTS)

#: Mutators that only apply under a specific translation variant or seed
#: program get that combination forced whenever they are scheduled, so a
#: bounded run still covers every mutator class.
_PREFERRED_SUBJECT: Dict[str, Tuple[Optional[int], str]] = {
    "hints-claim-wd-omitted": (0, "wd-at-calls"),
    "hints-claim-wd-present": (0, "default"),
    "hints-lie-fastpath": (0, "no-fastpath"),
}

FAILURE_OUTCOMES = frozenset(
    {"reject", "crash", "oracle-disagreement", "mutant-crash",
     "unit-mismatch"}
)


@dataclass(frozen=True)
class FuzzConfig:
    """Everything a fuzzing run depends on (picklable, all primitives)."""

    seed: int = 0
    iterations: int = 100
    time_budget: Optional[float] = None  # seconds, checked between batches
    jobs: Optional[int] = None
    oracle_states: int = 4
    #: Per-state path budgets for the differential oracle.  The oracle's
    #: defaults (4 000 / 60 000) are tuned for one-shot validation of a
    #: single file; a fuzzing run executes the oracle on *every* iteration
    #: and methods with calls make Boogie path enumeration explode, so the
    #: driver trades completeness for throughput.  Budget exhaustion is
    #: *inconclusive* (ok), never a spurious disagreement.
    oracle_viper_paths: int = 400
    oracle_boogie_paths: int = 2_000
    corpus_dir: str = "fuzz-corpus"
    minimize: bool = True
    check_axioms: bool = False  # validated once per session by the tests


@dataclass(frozen=True)
class FuzzCase:
    """One deterministic iteration: ``(seed, index) → case``."""

    index: int
    case_seed: int
    source_kind: str  # "seed-corpus" | "generated"
    source: str
    options_name: str
    mutator_start: int
    features: Tuple[str, ...] = ()


@dataclass
class CaseResult:
    """The judged outcomes of one case (clean run + mutant run)."""

    index: int
    case_seed: int
    source_kind: str
    options_name: str
    source: str
    clean_outcome: str = "accept"
    clean_detail: str = ""
    mutator: Optional[str] = None
    mutant_outcome: Optional[str] = None
    mutant_detail: str = ""
    mutant_certificate: Optional[str] = None
    #: Incremental-consistency verdict: ``unit-consistent``,
    #: ``unit-mismatch``, or ``None`` when no source mutation applied.
    unit_outcome: Optional[str] = None
    unit_detail: str = ""
    duration: float = 0.0
    features: Tuple[str, ...] = ()

    def failures(self) -> List[Tuple[str, str, Optional[str], Optional[str]]]:
        """``(outcome, detail, mutator, certificate_text)`` per failure."""
        found = []
        if self.clean_outcome in FAILURE_OUTCOMES:
            found.append((self.clean_outcome, self.clean_detail, None, None))
        if self.unit_outcome in FAILURE_OUTCOMES:
            found.append((self.unit_outcome, self.unit_detail, None, None))
        if self.mutant_outcome in FAILURE_OUTCOMES:
            found.append(
                (
                    self.mutant_outcome,
                    self.mutant_detail,
                    self.mutator,
                    self.mutant_certificate,
                )
            )
        return found


def build_case(config: FuzzConfig, index: int) -> FuzzCase:
    """The deterministic schedule: what does iteration ``index`` run?"""
    case_seed = derive_seed(config.seed, index)
    scheduled = MUTATORS[index % len(MUTATORS)]
    preferred = _PREFERRED_SUBJECT.get(scheduled.name)
    if preferred is not None:
        seed_index, options_name = preferred
    else:
        seed_index = (index // 3) % len(SEED_CORPUS) if index % 3 == 0 else None
        options_name = _OPTION_NAMES[index % len(_OPTION_NAMES)]
    if seed_index is not None:
        return FuzzCase(
            index=index,
            case_seed=case_seed,
            source_kind="seed-corpus",
            source=SEED_CORPUS[seed_index],
            options_name=options_name,
            mutator_start=index % len(MUTATORS),
        )
    generated = generate_program(case_seed)
    return FuzzCase(
        index=index,
        case_seed=case_seed,
        source_kind="generated",
        source=generated.source,
        options_name=options_name,
        mutator_start=index % len(MUTATORS),
        features=generated.features,
    )


# ---------------------------------------------------------------------------
# Judging one case (module-level: picklable for the parallel executor)
# ---------------------------------------------------------------------------


def _judge_mutation(
    mutation: Mutation, pristine, config: FuzzConfig
) -> Tuple[str, str]:
    """Classify one mutation through the trusted reparse+check path."""
    try:
        certificate = parse_program_certificate(mutation.certificate_text)
    except CertificateParseError as error:
        return "mutant-reject", f"reparse: {error}"
    except Exception as error:  # noqa: BLE001 - parser crash is a finding
        return "mutant-crash", f"reparse crash: {type(error).__name__}: {error}"
    try:
        report = check_program_certificate(
            mutation.result, certificate, check_axioms=False
        )
    except Exception as error:  # noqa: BLE001 - kernel crash is a finding
        return "mutant-crash", f"kernel crash: {type(error).__name__}: {error}"
    if not report.ok:
        return "mutant-reject", report.error or "kernel rejected"
    # The kernel accepted a corrupted artifact: escalate to the oracle.
    if normalize_certificate(certificate) == normalize_certificate(
        pristine.certificate
    ) and mutation.result is pristine.result:
        return "mutant-noop", "mutation denoted the identical certificate"
    verdicts = validate_program_semantically(
        mutation.result,
        max_states_per_method=config.oracle_states,
        max_viper_paths=config.oracle_viper_paths,
        max_boogie_paths=config.oracle_boogie_paths,
    )
    disagreements = [v for v in verdicts if not v.ok]
    if disagreements:
        worst = disagreements[0]
        return (
            "oracle-disagreement",
            f"kernel accepted mutant but oracle disagrees on "
            f"{worst.method}: {worst.detail}",
        )
    return (
        "mutant-accept-benign",
        "kernel accepted a corrupted artifact; oracle confirms the "
        "corruption is semantically inert",
    )


def _check_unit_accounting(
    ctx, case: FuzzCase, options: TranslationOptions,
    cache: ArtifactCache, config: FuzzConfig,
) -> Tuple[Optional[str], str]:
    """Judge the incrementality layer against its own dependency map.

    One inert single-method source edit
    (:func:`repro.fuzz.mutators.mutate_single_method`) re-runs the
    pipeline against the warm unit cache of the clean run.  Three sets
    must coincide: the units the dependency map predicts invalid (the
    mutated unit, plus its transitive callers iff the edit touched the
    spec), the units whose cache key actually changed, and the units the
    pipeline actually rebuilt.  Any disagreement is a ``unit-mismatch``
    finding — stale-cache routing in the incremental layer (it cannot be
    a soundness bug, docs/TRUSTED_BASE.md, but it breaks the
    incremental-rebuild contract).
    """
    rng = random.Random(case.case_seed ^ 0x1C4E11A7)
    # Round-trip to a canonical baseline first: the mutated source is a
    # pretty-print, so its *unmutated* methods must reparse to ASTs that
    # are digest-identical to the baseline's.  The original source is not
    # that baseline — desugaring (old-expressions, loops) can produce
    # tree shapes the pretty-printer renders the same but the parser
    # re-nests differently.
    canonical = pretty_program(ctx.program)
    try:
        base = run_pipeline(
            canonical, options=options, cache=cache,
            check_axioms=config.check_axioms,
        )
    except Exception as error:  # noqa: BLE001
        return (
            "unit-mismatch",
            f"canonical round-trip crashed the pipeline: "
            f"{type(error).__name__}: {error}",
        )
    if not base.report.ok:
        return (
            "unit-mismatch",
            f"canonical round-trip was rejected: {base.report.error}",
        )
    mutation = mutate_single_method(rng, base.program)
    if mutation is None:
        return None, ""
    expected = {mutation.method}
    if mutation.kind == "spec":
        expected |= set(callers_of(base.units, mutation.method))
    try:
        warm = run_pipeline(
            mutation.source, options=options, cache=cache,
            check_axioms=config.check_axioms,
        )
    except Exception as error:  # noqa: BLE001 - inert edits must not crash
        return (
            "unit-mismatch",
            f"inert {mutation.kind} edit of {mutation.method!r} crashed "
            f"the pipeline: {type(error).__name__}: {error}",
        )
    if not warm.report.ok:
        return (
            "unit-mismatch",
            f"inert {mutation.kind} edit of {mutation.method!r} was "
            f"rejected: {warm.report.error}",
        )
    key_diff = {
        name
        for name, key in warm.unit_keys.items()
        if base.unit_keys.get(name) != key
    }
    rebuilt = set(
        warm.instrumentation.unit_cache_summary()["rebuilt_methods"]
    )
    if rebuilt != expected or key_diff != expected:
        return (
            "unit-mismatch",
            f"{mutation.kind} edit of {mutation.method!r}: dependency map "
            f"predicts {sorted(expected)}, key diff {sorted(key_diff)}, "
            f"pipeline rebuilt {sorted(rebuilt)}",
        )
    return "unit-consistent", ""


def run_case(args: Tuple[FuzzConfig, FuzzCase]) -> CaseResult:
    """Run one fuzz case: clean pipeline + oracle + incremental
    consistency + one artifact mutation."""
    config, case = args
    started = time.perf_counter()
    result = CaseResult(
        index=case.index,
        case_seed=case.case_seed,
        source_kind=case.source_kind,
        options_name=case.options_name,
        source=case.source,
        features=case.features,
    )
    options = OPTION_VARIANTS[case.options_name]
    # 1. Clean run through the staged pipeline.  The local cache warms
    #    the per-unit tier for the incremental-consistency check below.
    unit_cache = ArtifactCache()
    try:
        ctx = run_pipeline(
            case.source, options=options, check_axioms=config.check_axioms,
            cache=unit_cache,
        )
    except PipelineError as error:
        result.clean_outcome = "crash"
        result.clean_detail = f"pipeline diagnostic: {error}"
        result.duration = time.perf_counter() - started
        return result
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        result.clean_outcome = "crash"
        result.clean_detail = f"{type(error).__name__}: {error}"
        result.duration = time.perf_counter() - started
        return result
    if not ctx.report.ok:
        result.clean_outcome = "reject"
        result.clean_detail = ctx.report.error or "kernel rejected pristine run"
        result.duration = time.perf_counter() - started
        return result
    # 2. Differential oracle co-execution on the pristine translation.
    try:
        verdicts = validate_program_semantically(
            ctx.translation,
            max_states_per_method=config.oracle_states,
            max_viper_paths=config.oracle_viper_paths,
            max_boogie_paths=config.oracle_boogie_paths,
        )
    except Exception as error:  # noqa: BLE001
        result.clean_outcome = "crash"
        result.clean_detail = f"oracle crash: {type(error).__name__}: {error}"
        result.duration = time.perf_counter() - started
        return result
    bad = [v for v in verdicts if not v.ok]
    if bad:
        result.clean_outcome = "oracle-disagreement"
        result.clean_detail = f"{bad[0].method}: {bad[0].detail}"
        result.duration = time.perf_counter() - started
        return result
    # 3. Incremental consistency: unit-reuse accounting must match the
    #    dependency map for one inert single-method edit.
    result.unit_outcome, result.unit_detail = _check_unit_accounting(
        ctx, case, options, unit_cache, config
    )
    # 4. One adversarial mutation (rotating start for class coverage).
    try:
        subject = make_subject(ctx.translation)
    except Exception as error:  # noqa: BLE001
        result.clean_outcome = "crash"
        result.clean_detail = f"tactic crash: {type(error).__name__}: {error}"
        result.duration = time.perf_counter() - started
        return result
    rng = random.Random(case.case_seed ^ 0x5BF03635)
    for offset in range(len(MUTATORS)):
        mutator = MUTATORS[(case.mutator_start + offset) % len(MUTATORS)]
        try:
            mutation = mutator.apply(rng, subject)
        except Exception as error:  # noqa: BLE001 - mutator bug, not kernel
            result.mutator = mutator.name
            result.mutant_outcome = "mutant-crash"
            result.mutant_detail = (
                f"mutator crash: {type(error).__name__}: {error}"
            )
            result.duration = time.perf_counter() - started
            return result
        if mutation is None:
            continue
        result.mutator = mutator.name
        outcome, detail = _judge_mutation(mutation, subject, config)
        result.mutant_outcome = outcome
        result.mutant_detail = detail
        if outcome in FAILURE_OUTCOMES or outcome == "mutant-accept-benign":
            result.mutant_certificate = mutation.certificate_text
        break
    result.duration = time.perf_counter() - started
    return result


# ---------------------------------------------------------------------------
# Minimization of failures (runs in the parent process)
# ---------------------------------------------------------------------------


def _clean_outcome_of(source: str, config: FuzzConfig, options_name: str) -> str:
    """Re-classify a candidate source the way the driver would."""
    options = OPTION_VARIANTS[options_name]
    try:
        ctx = run_pipeline(source, options=options, check_axioms=False)
    except Exception:  # noqa: BLE001 - classification, not judgement
        return "crash"
    if not ctx.report.ok:
        return "reject"
    try:
        verdicts = validate_program_semantically(
            ctx.translation,
            max_states_per_method=config.oracle_states,
            max_viper_paths=config.oracle_viper_paths,
            max_boogie_paths=config.oracle_boogie_paths,
        )
    except Exception:  # noqa: BLE001
        return "crash"
    if any(not v.ok for v in verdicts):
        return "oracle-disagreement"
    return "accept"


def _mutant_cert_predicate(
    result: TranslationResult, outcome: str
) -> Callable[[str], bool]:
    """Does a candidate certificate text still show the mutant failure?"""

    def predicate(text: str) -> bool:
        try:
            certificate = parse_program_certificate(text)
        except CertificateParseError:
            return False  # clean rejection by the reparse path
        except Exception:  # noqa: BLE001
            return outcome == "mutant-crash"
        try:
            report = check_program_certificate(result, certificate, check_axioms=False)
        except Exception:  # noqa: BLE001
            return outcome == "mutant-crash"
        if outcome == "mutant-crash":
            return False
        return report.ok  # mutant-accept*: still accepted

    return predicate


def minimize_failure(
    record: FailureRecord, config: FuzzConfig, options_name: str = "default"
) -> FailureRecord:
    """Attach minimized reproducers to a failure record (deterministic)."""
    if record.outcome == "unit-mismatch":
        # The reproducer is the (source, case_seed) pair itself — the
        # inert edit is derived from it deterministically; source-level
        # delta debugging would chase a clean-run outcome instead.
        return record
    if record.mutator is None:
        target = record.outcome

        def predicate(text: str) -> bool:
            return _clean_outcome_of(text, config, options_name) == target

        record.minimized_source = minimize_source(record.source, predicate)
    elif record.certificate_text is not None:
        try:
            ctx = run_pipeline(
                record.source,
                options=OPTION_VARIANTS[options_name],
                upto="check",
                check_axioms=False,
            )
            result = ctx.translation
        except Exception:  # noqa: BLE001 - keep the raw reproducer
            return record
        record.minimized_certificate = minimize_cert_text(
            record.certificate_text,
            _mutant_cert_predicate(result, record.outcome),
        )
    return record


# ---------------------------------------------------------------------------
# The run loop and report
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Aggregated result of a fuzzing run (JSON-serialisable)."""

    seed: int
    iterations_requested: int
    iterations_run: int = 0
    duration: float = 0.0
    outcome_counts: Dict[str, int] = field(default_factory=dict)
    mutator_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    feature_counts: Dict[str, int] = field(default_factory=dict)
    failures: List[Dict[str, object]] = field(default_factory=list)
    new_buckets: int = 0
    corpus_dir: str = "fuzz-corpus"

    @property
    def ok(self) -> bool:
        """True iff no iteration produced a failure outcome."""
        return not self.failures

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent, sort_keys=True)

    def summary(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} iterations={self.iterations_run}"
            f"/{self.iterations_requested} duration={self.duration:.2f}s",
            "outcomes: "
            + (
                ", ".join(
                    f"{name}={count}"
                    for name, count in sorted(self.outcome_counts.items())
                )
                or "none"
            ),
        ]
        covered = sum(
            1 for stats in self.mutator_stats.values() if stats.get("mutant-reject")
        )
        lines.append(
            f"mutator classes with >=1 kernel rejection: {covered}/{len(MUTATORS)}"
        )
        if self.failures:
            lines.append(f"FAILURES ({len(self.failures)} bucketed):")
            for failure in self.failures:
                lines.append(
                    f"  [{failure['outcome']}] {failure['bucket']}: "
                    f"{failure['detail']}"
                )
        else:
            lines.append("no failures: kernel rejected every adversarial artifact")
        return "\n".join(lines)


def _record_result(
    report: FuzzReport,
    result: CaseResult,
    corpus: Optional[FuzzCorpus],
    config: FuzzConfig,
) -> None:
    report.iterations_run += 1
    report.outcome_counts[result.clean_outcome] = (
        report.outcome_counts.get(result.clean_outcome, 0) + 1
    )
    if result.unit_outcome is not None:
        report.outcome_counts[result.unit_outcome] = (
            report.outcome_counts.get(result.unit_outcome, 0) + 1
        )
    if result.mutant_outcome is not None:
        report.outcome_counts[result.mutant_outcome] = (
            report.outcome_counts.get(result.mutant_outcome, 0) + 1
        )
    if result.mutator is not None and result.mutant_outcome is not None:
        stats = report.mutator_stats.setdefault(result.mutator, {})
        stats[result.mutant_outcome] = stats.get(result.mutant_outcome, 0) + 1
    for feature in result.features:
        report.feature_counts[feature] = report.feature_counts.get(feature, 0) + 1
    for outcome, detail, mutator, certificate in result.failures():
        record = FailureRecord(
            outcome=outcome,
            detail=detail,
            source=result.source,
            mutator=mutator,
            certificate_text=certificate,
            case={
                "seed": config.seed,
                "index": result.index,
                "case_seed": result.case_seed,
                "source_kind": result.source_kind,
                "options_name": result.options_name,
            },
        )
        entry: Dict[str, object] = {
            "outcome": outcome,
            "bucket": record.bucket,
            "detail": detail,
            "index": result.index,
            "mutator": mutator,
        }
        if corpus is not None:
            known = record.bucket in set(corpus.buckets())
            if not known:
                if config.minimize:
                    record = minimize_failure(record, config, result.options_name)
                _, created = corpus.persist(record)
                report.new_buckets += int(created)
                entry["path"] = str(corpus.root / record.bucket)
        report.failures.append(entry)


def run_fuzz(
    config: FuzzConfig,
    *,
    corpus: Optional[FuzzCorpus] = None,
    progress: Optional[Callable[[CaseResult], None]] = None,
) -> FuzzReport:
    """Run a fuzzing session according to ``config``.

    Cases are scheduled deterministically from ``(seed, index)``, fanned
    out over :func:`repro.pipeline.executor.parallel_map_batches` (which
    degrades to serial in-process execution for ``jobs in (None, 1)``),
    and judged as described in the module docstring.  Failures are
    deduplicated, minimized (in the parent process) and persisted to the
    corpus when one is supplied.
    """
    started = time.perf_counter()
    if corpus is None and config.corpus_dir:
        corpus = FuzzCorpus(config.corpus_dir)
    report = FuzzReport(
        seed=config.seed,
        iterations_requested=config.iterations,
        corpus_dir=str(corpus.root) if corpus is not None else "",
    )
    deadline = (
        started + config.time_budget if config.time_budget is not None else None
    )
    cases = [
        (config, build_case(config, index)) for index in range(config.iterations)
    ]
    workers = resolve_jobs(config.jobs)
    results = parallel_map_batches(
        run_case,
        cases,
        jobs=config.jobs,
        batch_size=max(8, 4 * workers),
        should_stop=(
            (lambda: time.perf_counter() >= deadline) if deadline else None
        ),
    )
    for result in results:
        _record_result(report, result, corpus, config)
        if progress is not None:
            progress(result)
    report.duration = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay_record(
    record: FailureRecord, *, minimize: bool = True
) -> FuzzReport:
    """Re-judge one persisted failure (for ``repro fuzz --replay``).

    Three replay modes, chosen from what the record contains:

    * a stored **certificate** (``hints``/``cert`` mutants, or a
      hand-forced failure) is re-judged directly through the trusted
      reparse+check path against a fresh translation of the stored source;
    * a **boogie-artifact** mutant is replayed by re-running the full
      deterministic schedule (``run_case``) — the mutated program is a
      function of ``(case_seed, mutator_start)``, not of any persisted
      binary artifact;
    * a **clean failure** re-runs pipeline + oracle on the stored source.

    A fresh minimization pass runs so the reproducer in the report is
    always the minimal one, independent of what was persisted.
    """
    config = FuzzConfig(minimize=minimize, corpus_dir="")
    options_name = str(record.case.get("options_name", "default"))
    if options_name not in OPTION_VARIANTS:
        options_name = "default"
    report = FuzzReport(seed=int(record.case.get("seed", 0)), iterations_requested=1)
    index = int(record.case.get("index", 0))
    mutator = MUTATORS_BY_NAME.get(record.mutator or "")
    if record.outcome == "unit-mismatch":
        # The inert source edit is a deterministic function of
        # (case_seed, source): re-running the full case re-derives it.
        case = FuzzCase(
            index=index,
            case_seed=int(record.case.get("case_seed", derive_seed(0, index))),
            source_kind=str(record.case.get("source_kind", "replay")),
            source=record.source,
            options_name=options_name,
            mutator_start=index % len(MUTATORS),
        )
        result = run_case((config, case))
    elif record.mutator is None or record.certificate_text is None:
        result = CaseResult(
            index=index,
            case_seed=int(record.case.get("case_seed", 0)),
            source_kind=str(record.case.get("source_kind", "replay")),
            options_name=options_name,
            source=record.source,
        )
        result.clean_outcome = _clean_outcome_of(record.source, config, options_name)
        result.clean_detail = f"replayed {record.outcome} case"
    elif mutator is not None and mutator.artifact == "boogie":
        case = FuzzCase(
            index=index,
            case_seed=int(record.case.get("case_seed", derive_seed(0, index))),
            source_kind=str(record.case.get("source_kind", "replay")),
            source=record.source,
            options_name=options_name,
            mutator_start=index % len(MUTATORS),
        )
        result = run_case((config, case))
    else:
        result = CaseResult(
            index=index,
            case_seed=int(record.case.get("case_seed", 0)),
            source_kind=str(record.case.get("source_kind", "replay")),
            options_name=options_name,
            source=record.source,
            mutator=record.mutator,
        )
        try:
            ctx = run_pipeline(
                record.source,
                options=OPTION_VARIANTS[options_name],
                check_axioms=False,
            )
            subject = make_subject(ctx.translation)
            mutation = Mutation(
                mutator=record.mutator,
                artifact=mutator.artifact if mutator else "cert",
                result=subject.result,
                certificate_text=record.certificate_text,
                detail=record.detail,
            )
            outcome, detail = _judge_mutation(mutation, subject, config)
        except Exception as error:  # noqa: BLE001
            outcome, detail = "crash", f"{type(error).__name__}: {error}"
        result.mutant_outcome = outcome
        result.mutant_detail = detail
        result.mutant_certificate = record.certificate_text
    _record_result(report, result, None, config)
    if report.failures and minimize:
        minimized = minimize_failure(
            FailureRecord(
                outcome=report.failures[0]["outcome"],  # type: ignore[arg-type]
                detail=str(report.failures[0]["detail"]),
                source=record.source,
                mutator=record.mutator,
                certificate_text=record.certificate_text,
            ),
            config,
            options_name,
        )
        report.failures[0]["minimized_source"] = minimized.minimized_source
        report.failures[0]["minimized_certificate"] = minimized.minimized_certificate
    return report
