"""Seeded generation of well-typed Viper programs (standalone, no hypothesis).

Trust: **advisory** — random program generation for fuzzing.

This module is the promotion of the hypothesis strategies that used to live
only in ``tests/strategies.py`` into a reusable correctness-tooling
subsystem: a *deterministic*, seed-driven generator of Viper programs that
are well-typed **by construction** and that exercise every desugaring input
of the staged pipeline (``while`` loops, ``old()`` expressions, ``new``
allocation, complex call arguments — the four extension passes of
``repro.viper``).

Design points:

* **Type-indexed** — ``_expr(rng, env, typ, depth)`` only produces
  expressions of the requested Viper type over the current environment, so
  every program passes ``repro.viper.check_program`` after desugaring.
* **Size-budgeted** — a :class:`GeneratorConfig` bounds methods per
  program, statements per method, and expression depth, so driver
  iterations stay fast enough for CI smoke runs.
* **Seeded and reproducible** — all randomness flows through one
  ``random.Random(seed)``; the same seed always yields the same program
  text (the fuzzing driver and the replay/minimisation machinery rely on
  this).
* **Round-trip-safe** — the generator avoids the two known
  pretty/parse asymmetries (``UnOp(NEG, IntLit)`` re-parses as a literal;
  ``Implies``/``CondAssert`` cannot be the left operand of ``&&``), the
  same constraints the hypothesis strategies encode.
* **Lint-clean** — every emitted program passes ``repro.analysis`` with
  zero findings.  Most checks are satisfied *by construction* (fresh
  locals are initialised at declaration, unused arguments and fields are
  pruned from signatures, literal ``true``/``false`` never appears as an
  assert/exhale body or a branch condition); the residual semantic checks
  (permission flow, dead stores) are enforced by bounded rejection
  sampling with the analyzer as the oracle.  This makes the generator an
  ongoing zero-false-positive oracle for the analyzer — any finding on a
  generated program is an analyzer bug — and the analyzer a
  well-formedness oracle for the generator.

The fixed variable environment (:data:`ENV`) and field declarations
(:data:`FIELDS`) are shared with ``tests/strategies.py`` so both generators
agree on the vocabulary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..viper.allocation import NewStmt
from ..viper.ast import (
    Acc,
    AExpr,
    AssertStmt,
    Assertion,
    BinOp,
    BinOpKind,
    BoolLit,
    CondAssert,
    CondExp,
    Exhale,
    Expr,
    FieldAssign,
    FieldAcc,
    FieldDecl,
    If,
    Implies,
    Inhale,
    IntLit,
    LocalAssign,
    MethodCall,
    MethodDecl,
    NullLit,
    PermLit,
    Program,
    SepConj,
    Seq,
    seq_of,
    Skip,
    Stmt,
    Type,
    UnOp,
    UnOpKind,
    Var,
    VarDecl,
)
from ..viper.loops import While
from ..viper.oldexprs import OldExpr
from ..viper.pretty import pretty_program

#: The fixed environment the assertion/statement generators draw from
#: (shared with the hypothesis strategies in ``tests/strategies.py``).
ENV: Dict[str, Type] = {
    "x": Type.REF,
    "y": Type.REF,
    "n": Type.INT,
    "m": Type.INT,
    "b": Type.BOOL,
    "p": Type.PERM,
}

#: The fixed field declarations (shared with ``tests/strategies.py``).
FIELDS: Dict[str, Type] = {"f": Type.INT, "g": Type.BOOL}

_POSITIVE_PERMS = (Fraction(1), Fraction(1, 2), Fraction(1, 4))
_INT_FIELDS = tuple(sorted(n for n, t in FIELDS.items() if t is Type.INT))
_ALL_FIELDS = tuple(sorted(FIELDS))


@dataclass(frozen=True)
class GeneratorConfig:
    """Size budgets and feature switches for program generation."""

    #: Maximum number of methods per program (at least 1).
    max_methods: int = 3
    #: Maximum number of statements generated per method body.
    stmt_budget: int = 8
    #: Maximum expression nesting depth.
    expr_depth: int = 2
    #: Maximum assertion nesting depth.
    assertion_depth: int = 2
    #: Feature switches — each gates one desugaring input of the pipeline.
    allow_loops: bool = True
    allow_old: bool = True
    allow_new: bool = True
    allow_calls: bool = True
    allow_complex_call_args: bool = True


@dataclass(frozen=True)
class GeneratedProgram:
    """One generator output: source text plus provenance metadata."""

    seed: int
    source: str
    method_count: int
    #: Which extension features the program exercises (sorted tuple drawn
    #: from ``{"loops", "old", "new", "calls", "complex-call-args"}``).
    features: Tuple[str, ...]


class _MethodEnv:
    """The mutable typing environment while generating one method body."""

    def __init__(self, variables: Dict[str, Type]):
        self.variables = dict(variables)

    def of_type(self, typ: Type) -> List[str]:
        return sorted(n for n, t in self.variables.items() if t is typ)


def _pick(rng: random.Random, items: Sequence):
    return items[rng.randrange(len(items))]


_DEFAULTS = {
    Type.INT: lambda: IntLit(0),
    Type.BOOL: lambda: BoolLit(False),
    Type.REF: lambda: NullLit(),
    Type.PERM: lambda: PermLit(Fraction(0)),
}


def _used_names(node) -> set:
    """Every variable name mentioned anywhere under ``node`` — reads
    (``Var``) and write targets (assignments, calls, allocations) alike
    (generic dataclass walk)."""
    import dataclasses

    names: set = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            names.add(current.name)
        elif isinstance(current, (LocalAssign, NewStmt)):
            names.add(current.target)
        elif isinstance(current, MethodCall):
            names.update(current.targets)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            for field_info in dataclasses.fields(current):
                stack.append(getattr(current, field_info.name))
        elif isinstance(current, (tuple, list)):
            stack.extend(current)
    return names


def _mentioned_fields(node) -> Tuple[set, bool]:
    """``(field names mentioned, saw new(*))`` under ``node``."""
    import dataclasses

    mentioned: set = set()
    saw_all = False
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (FieldAcc, Acc)):
            mentioned.add(current.field)
        elif isinstance(current, NewStmt):
            if current.all_fields:
                saw_all = True
            mentioned.update(current.fields)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            for field_info in dataclasses.fields(current):
                stack.append(getattr(current, field_info.name))
        elif isinstance(current, (tuple, list)):
            stack.extend(current)
    return mentioned, saw_all


# ---------------------------------------------------------------------------
# Expressions (type-indexed, depth-bounded)
# ---------------------------------------------------------------------------


def _leaf(rng: random.Random, env: _MethodEnv, typ: Type) -> Expr:
    variables = env.of_type(typ)
    roll = rng.random()
    if variables and roll < 0.6:
        return Var(_pick(rng, variables))
    if typ is Type.INT:
        return IntLit(rng.randrange(-4, 9))
    if typ is Type.BOOL:
        return BoolLit(rng.random() < 0.5)
    if typ is Type.REF:
        if variables:
            return Var(_pick(rng, variables))
        return NullLit()
    if typ is Type.PERM:
        return PermLit(_pick(rng, _POSITIVE_PERMS + (Fraction(0),)))
    if variables:
        return Var(_pick(rng, variables))
    raise AssertionError(f"no leaf for type {typ}")


def _expr(rng: random.Random, env: _MethodEnv, typ: Type, depth: int) -> Expr:
    """A well-typed expression of ``typ`` with nesting depth ≤ ``depth``."""
    if depth <= 0:
        return _leaf(rng, env, typ)
    sub = depth - 1
    roll = rng.random()
    if typ is Type.INT:
        if roll < 0.35:
            op = _pick(rng, (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL))
            return BinOp(op, _expr(rng, env, Type.INT, sub), _expr(rng, env, Type.INT, sub))
        if roll < 0.45 and env.of_type(Type.REF) and _INT_FIELDS:
            return FieldAcc(_leaf(rng, env, Type.REF), _pick(rng, _INT_FIELDS))
        if roll < 0.55 and env.of_type(Type.INT):
            # NEG only over variables: `-1` re-parses as a literal, so a
            # round-trippable generator must not negate IntLit directly.
            return UnOp(UnOpKind.NEG, Var(_pick(rng, env.of_type(Type.INT))))
        if roll < 0.65:
            return CondExp(
                _expr(rng, env, Type.BOOL, sub),
                _expr(rng, env, Type.INT, sub),
                _expr(rng, env, Type.INT, sub),
            )
        return _leaf(rng, env, Type.INT)
    if typ is Type.BOOL:
        if roll < 0.3:
            op = _pick(rng, (BinOpKind.AND, BinOpKind.OR, BinOpKind.IMPLIES))
            return BinOp(op, _expr(rng, env, Type.BOOL, sub), _expr(rng, env, Type.BOOL, sub))
        if roll < 0.65:
            op = _pick(
                rng,
                (BinOpKind.LT, BinOpKind.LE, BinOpKind.GT,
                 BinOpKind.GE, BinOpKind.EQ, BinOpKind.NE),
            )
            return BinOp(op, _expr(rng, env, Type.INT, sub), _expr(rng, env, Type.INT, sub))
        if roll < 0.75:
            return UnOp(UnOpKind.NOT, _expr(rng, env, Type.BOOL, sub))
        if roll < 0.85 and env.of_type(Type.REF):
            lhs = Var(_pick(rng, env.of_type(Type.REF)))
            return BinOp(_pick(rng, (BinOpKind.EQ, BinOpKind.NE)), lhs, NullLit())
        return _leaf(rng, env, Type.BOOL)
    if typ is Type.PERM:
        if roll < 0.25 and env.of_type(Type.PERM):
            return BinOp(
                BinOpKind.ADD,
                _expr(rng, env, Type.PERM, sub),
                PermLit(_pick(rng, _POSITIVE_PERMS)),
            )
        return _leaf(rng, env, Type.PERM)
    return _leaf(rng, env, typ)


# ---------------------------------------------------------------------------
# Assertions
# ---------------------------------------------------------------------------


def _acc(rng: random.Random, env: _MethodEnv, *, literal_only: bool = False) -> Acc:
    receivers = env.of_type(Type.REF)
    receiver: Expr = Var(_pick(rng, receivers)) if receivers else NullLit()
    perm_vars = env.of_type(Type.PERM)
    if not literal_only and perm_vars and rng.random() < 0.35:
        perm: Expr = Var(_pick(rng, perm_vars))
    else:
        perm = PermLit(_pick(rng, _POSITIVE_PERMS))
    return Acc(receiver, _pick(rng, _ALL_FIELDS), perm)


def _assertion(rng: random.Random, env: _MethodEnv, depth: int) -> Assertion:
    roll = rng.random()
    if depth <= 0:
        if roll < 0.5:
            return AExpr(_expr(rng, env, Type.BOOL, 1))
        return _acc(rng, env)
    sub = depth - 1
    if roll < 0.3:
        return AExpr(_expr(rng, env, Type.BOOL, 1))
    if roll < 0.55:
        return _acc(rng, env)
    if roll < 0.75:
        # Implications / conditionals are trailing-greedy in the concrete
        # syntax, so the left conjunct of `&&` must stay simple.
        left = _assertion(rng, env, 0)
        while isinstance(left, (Implies, CondAssert)):  # pragma: no cover
            left = _assertion(rng, env, 0)
        return SepConj(left, _assertion(rng, env, sub))
    if roll < 0.9:
        return Implies(_expr(rng, env, Type.BOOL, 1), _assertion(rng, env, sub))
    return CondAssert(
        _expr(rng, env, Type.BOOL, 1),
        _assertion(rng, env, sub),
        _assertion(rng, env, sub),
    )


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class _MethodBuilder:
    """Generates one method; tracks the statement budget and features used."""

    def __init__(
        self,
        rng: random.Random,
        config: GeneratorConfig,
        name: str,
        callees: Sequence[MethodDecl],
    ):
        self._rng = rng
        self._config = config
        self._name = name
        self._callees = list(callees)
        self._budget = config.stmt_budget
        self.features: set = set()
        self._locals: List[Tuple[str, Type]] = []
        self._fresh = 0

    def _fresh_local(self, typ: Type) -> str:
        name = f"t{self._fresh}"
        self._fresh += 1
        self._locals.append((name, typ))
        return name

    def build(self) -> MethodDecl:
        rng = self._rng
        # Arguments: always a Ref receiver; the rest of ENV with prob. 1/2
        # each, so calls see diverse signatures.
        args: List[Tuple[str, Type]] = [("x", Type.REF)]
        for var in ("n", "b", "p"):
            if rng.random() < 0.6:
                args.append((var, ENV[var]))
        returns: List[Tuple[str, Type]] = []
        if rng.random() < 0.6:
            returns.append(("r", Type.INT))
        env = _MethodEnv(dict(args))
        # The precondition always grants permission to x.f, so bodies that
        # read/write the heap have executions that do not fail immediately.
        pre: Assertion = Acc(Var("x"), "f", PermLit(Fraction(1)))
        if rng.random() < 0.7:
            pre = SepConj(pre, _assertion(rng, env, self._config.assertion_depth - 1))
        post_env = _MethodEnv({**dict(args), **dict(returns)})
        post: Assertion = Acc(Var("x"), "f", PermLit(_pick(rng, _POSITIVE_PERMS)))
        if rng.random() < 0.6:
            post = SepConj(post, _assertion(rng, post_env, self._config.assertion_depth - 1))
        if self._config.allow_old and rng.random() < 0.4:
            # old() over an argument-footprint expression; pre holds
            # acc(x.f, write), so old(x.f) is well-defined at entry.
            old_arg: Expr = FieldAcc(Var("x"), "f") if rng.random() < 0.5 else (
                Var("n") if ("n", Type.INT) in args else IntLit(2)
            )
            post = SepConj(post, AExpr(BinOp(BinOpKind.GE, OldExpr(old_arg), OldExpr(old_arg))))
            self.features.add("old")
        abstract = rng.random() < 0.12
        if abstract:
            return MethodDecl(
                name=self._name,
                args=tuple(args),
                returns=tuple(returns),
                pre=pre,
                post=post,
                body=None,
            )
        stmts: List[Stmt] = []
        for var_name, typ in returns:
            env.variables[var_name] = typ
        while self._budget > 0:
            stmt = self._stmt(env, depth=2)
            if stmt is not None:
                stmts.append(stmt)
        if not stmts:
            stmts = [AssertStmt(AExpr(BinOp(BinOpKind.EQ, Var("x"), Var("x"))))]
        body = seq_of(*stmts)
        decls = [VarDecl(name, typ) for name, typ in self._locals]
        # Declarations come first, each followed by a literal initialiser so
        # no path reads an unassigned local (the lint-clean contract: VPR001
        # is unsatisfiable by construction).  Generated statements only use
        # a local after its declaration because locals are created on demand
        # before the statement that uses them is appended; literal
        # initialisers are exempt from the dead-store check.
        inits: List[Stmt] = [
            LocalAssign(name, _DEFAULTS[typ]()) for name, typ in self._locals
        ]
        inits.extend(
            LocalAssign(var_name, _DEFAULTS[typ]())
            for var_name, typ in returns
        )
        full_body = seq_of(*decls, *inits, body)
        method = MethodDecl(
            name=self._name,
            args=tuple(args),
            returns=tuple(returns),
            pre=pre,
            post=post,
            body=full_body,
        )
        return self._prune_unused_args(method)

    @staticmethod
    def _prune_unused_args(method: MethodDecl) -> MethodDecl:
        """Drop arguments mentioned in neither specification nor body, so no
        generated signature trips the unused-argument check.  Pruning happens
        before the method becomes callable, so later call sites always see
        the final signature."""
        used = (
            _used_names(method.pre)
            | _used_names(method.post)
            | (_used_names(method.body) if method.body is not None else set())
        )
        kept = tuple(arg for arg in method.args if arg[0] in used)
        if len(kept) == len(method.args):
            return method
        return replace(method, args=kept)

    # -- lint-clean helpers ----------------------------------------------------

    @classmethod
    def _detrivialise(cls, assertion: Assertion) -> Assertion:
        """Replace literal ``true``/``false`` leaves (through ``&&``) so no
        assert/exhale is trivially true (VPR009) or literally false with
        live code after it (VPR003).  ``x`` is always in scope."""
        if isinstance(assertion, AExpr) and isinstance(assertion.expr, BoolLit):
            op = BinOpKind.EQ if assertion.expr.value else BinOpKind.NE
            return AExpr(BinOp(op, Var("x"), Var("x")))
        if isinstance(assertion, SepConj):
            return SepConj(
                cls._detrivialise(assertion.left),
                cls._detrivialise(assertion.right),
            )
        return assertion

    def _branch_cond(self, env: _MethodEnv) -> Expr:
        """A branch condition that is never a literal boolean (a constant
        condition makes one arm statically unreachable — VPR003)."""
        cond = _expr(self._rng, env, Type.BOOL, 1)
        if isinstance(cond, BoolLit):
            op = BinOpKind.EQ if cond.value else BinOpKind.NE
            return BinOp(op, Var("x"), Var("x"))
        return cond

    # -- statement alternatives ------------------------------------------------

    def _stmt(self, env: _MethodEnv, depth: int) -> Optional[Stmt]:
        rng = self._rng
        self._budget -= 1
        roll = rng.random()
        config = self._config
        if roll < 0.16:
            targets = env.of_type(Type.INT)
            if targets:
                return LocalAssign(
                    _pick(rng, targets), _expr(rng, env, Type.INT, config.expr_depth)
                )
            roll = 0.2
        if roll < 0.3:
            receivers = env.of_type(Type.REF)
            if receivers:
                return FieldAssign(
                    Var(_pick(rng, receivers)), "f",
                    _expr(rng, env, Type.INT, config.expr_depth),
                )
            roll = 0.35
        if roll < 0.42:
            return Inhale(_assertion(rng, env, config.assertion_depth))
        if roll < 0.5:
            return Exhale(self._detrivialise(_assertion(rng, env, config.assertion_depth)))
        if roll < 0.58:
            return AssertStmt(self._detrivialise(_assertion(rng, env, config.assertion_depth)))
        if roll < 0.66 and depth > 0:
            then = self._stmt(env, depth - 1) or Skip()
            otherwise: Stmt = Skip()
            if rng.random() < 0.5:
                otherwise = self._stmt(env, depth - 1) or Skip()
            return If(self._branch_cond(env), then, otherwise)
        if roll < 0.74 and config.allow_loops and depth > 0:
            counter = self._fresh_local(Type.INT)
            env.variables[counter] = Type.INT
            self.features.add("loops")
            body = seq_of(
                LocalAssign(counter, BinOp(BinOpKind.ADD, Var(counter), IntLit(1))),
                self._stmt(env, 0) or Skip(),
            )
            invariant: Assertion = (
                Acc(Var("x"), "f", PermLit(Fraction(1, 2)))
                if rng.random() < 0.5
                else AExpr(BinOp(BinOpKind.GE, Var(counter), IntLit(0)))
            )
            return seq_of(
                LocalAssign(counter, IntLit(0)),
                While(BinOp(BinOpKind.LT, Var(counter), IntLit(2)), invariant, body),
            )
        if roll < 0.82 and config.allow_new:
            target = self._fresh_local(Type.REF)
            env.variables[target] = Type.REF
            self.features.add("new")
            if rng.random() < 0.3:
                return NewStmt(target, (), all_fields=True)
            return NewStmt(target, ("f",))
        if roll < 0.95 and config.allow_calls and self._callees:
            return self._call(env)
        return AssertStmt(self._detrivialise(AExpr(_expr(rng, env, Type.BOOL, 1))))

    def _call(self, env: _MethodEnv) -> Optional[Stmt]:
        rng = self._rng
        callee = _pick(rng, self._callees)
        args: List[Expr] = []
        complex_used = False
        for _, typ in callee.args:
            candidates = env.of_type(typ)
            if (
                typ is Type.INT
                and self._config.allow_complex_call_args
                and rng.random() < 0.4
            ):
                args.append(_expr(rng, env, Type.INT, 1))
                complex_used = True
            elif candidates:
                args.append(Var(_pick(rng, candidates)))
            elif typ is Type.INT:
                args.append(IntLit(rng.randrange(0, 5)))
                complex_used = True
            elif typ is Type.BOOL:
                args.append(BoolLit(True))
                complex_used = True
            elif typ is Type.PERM:
                args.append(PermLit(Fraction(1, 2)))
                complex_used = True
            else:
                return None  # no Ref in scope: skip the call
        targets: List[str] = []
        arg_vars = {a.name for a in args if isinstance(a, Var)}
        for _, ret_type in callee.returns:
            target = self._fresh_local(ret_type)
            env.variables[target] = ret_type
            targets.append(target)
        if set(targets) & arg_vars:  # pragma: no cover - fresh names
            return None
        self.features.add("calls")
        if complex_used:
            self.features.add("complex-call-args")
        return MethodCall(tuple(targets), callee.name, tuple(args))


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


#: Bound on rejection-sampling attempts in :func:`generate_program`.  The
#: by-construction measures leave only the semantic residual (permission
#: flow, dead stores), so a handful of attempts suffices in practice.
_MAX_ATTEMPTS = 64


def _generate_once(seed: int, config: GeneratorConfig) -> GeneratedProgram:
    """One generation attempt (no lint-clean guarantee yet)."""
    rng = random.Random(seed)
    method_count = 1 + rng.randrange(max(1, config.max_methods))
    methods: List[MethodDecl] = []
    features: set = set()
    for index in range(method_count):
        builder = _MethodBuilder(rng, config, f"m{index}", methods)
        methods.append(builder.build())
        features |= builder.features
    # Declare only the fields the program mentions (`f` always is, through
    # every precondition); an unused declaration would trip VPR006.
    mentioned, saw_all = _mentioned_fields(tuple(methods))
    field_names = (
        sorted(FIELDS) if saw_all
        else sorted(mentioned & set(FIELDS)) or ["f"]
    )
    program = Program(
        fields=tuple(FieldDecl(name, FIELDS[name]) for name in field_names),
        methods=tuple(methods),
    )
    return GeneratedProgram(
        seed=seed,
        source=pretty_program(program),
        method_count=method_count,
        features=tuple(sorted(features)),
    )


def generate_program(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedProgram:
    """Generate one well-typed, lint-clean Viper program (deterministic).

    The structural checks are unsatisfiable by construction; the residual
    semantic findings (the permission-flow abstraction, dead stores) are
    eliminated by bounded rejection sampling — the attempt schedule is a
    pure function of ``seed``, so the same seed still always yields the
    same program.  The returned program's ``seed`` field records the
    *requested* seed regardless of how many attempts were rejected.
    """
    from ..analysis import lint_source  # deferred: keep worker imports light

    config = config or GeneratorConfig()
    generated = _generate_once(seed, config)
    attempt = 0
    while lint_source(generated.source).findings and attempt < _MAX_ATTEMPTS:
        attempt += 1
        retry_seed = derive_seed(seed ^ 0x5EED_C1EA, attempt)
        generated = replace(_generate_once(retry_seed, config), seed=seed)
    return generated


def generate_corpus(
    seed: int, count: int, config: Optional[GeneratorConfig] = None
) -> List[GeneratedProgram]:
    """Generate ``count`` programs from consecutive derived seeds."""
    return [generate_program(derive_seed(seed, i), config) for i in range(count)]


def derive_seed(seed: int, index: int) -> int:
    """The per-iteration seed (splitmix-style, avoids correlated streams)."""
    value = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 31
    return value & 0x7FFFFFFF


#: Hand-written programs that jointly exercise every mutator's
#: applicability condition (temp-based permission amounts, exhales holding
#: permission, calls with the non-local optimisation, conditionals, …).
#: The driver routes the first iterations of every run through this corpus
#: so each mutator class meets an applicable subject deterministically.
SEED_CORPUS: Tuple[str, ...] = (
    """
field f: Int

method callee(x: Ref)
  requires acc(x.f, 1/2) && x.f > 0
  ensures acc(x.f, 1/2)
{ assert x.f > 0 }

method main(x: Ref, p: Perm) returns (r: Int)
  requires acc(x.f, write) && p > none
  ensures acc(x.f, 1/2)
{
  x.f := 3
  r := x.f
  callee(x)
  exhale acc(x.f, 1/2) && x.f == 3
  inhale acc(x.f, p)
}
""",
    """
field f: Int
field g: Bool

method branchy(x: Ref, n: Int, p: Perm) returns (r: Int)
  requires acc(x.f, write) && acc(x.g, 1/2) && p > none
  ensures acc(x.f, 1/2)
{
  if (n > 0) {
    x.f := n
  } else {
    x.f := 0 - n
  }
  assert acc(x.f, 1/2) && x.f >= 0
  exhale acc(x.f, 1/4) && acc(x.g, 1/2)
  inhale acc(x.f, p)
  r := x.f
  exhale acc(x.f, 1/4)
}
""",
)
