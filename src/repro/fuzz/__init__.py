"""Adversarial fuzzing and minimization for the certification kernel.

Trust: **advisory** — fuzzing hunts for counterexamples; it can only ever
make us *less* confident, never more certified.

The paper's claim is *per-run validation*: the untrusted translator and
tactic may lie, and the trusted proof-checking kernel still catches it.
This package industrializes the adversarial stress-testing of that claim
(the hand-written ``tests/certification/test_checker_rejects.py`` cases
were the prototype):

* :mod:`repro.fuzz.generate` — a seeded, standalone well-typed Viper
  program generator (type-indexed, size-budgeted, covering every
  desugaring extension);
* :mod:`repro.fuzz.mutators` — adversarial mutators over the three
  untrusted artifacts (Boogie program, hints, ``.cert`` text), each
  tagged with the soundness property it attacks;
* :mod:`repro.fuzz.driver` — the fuzzing loop: pipeline + differential
  oracle co-execution, outcome classification, bucket deduplication;
* :mod:`repro.fuzz.minimize` — delta-debugging minimizers for failing
  Viper sources and corrupted certificates;
* :mod:`repro.fuzz.corpus` — the replayable on-disk failure corpus.

Entry points: the ``repro fuzz`` CLI subcommand and :func:`run_fuzz`.
See README "Fuzzing" and docs/TRUSTED_BASE.md for the trust story this
package exists to attack.
"""

from .corpus import bucket_for, FailureRecord, FuzzCorpus  # noqa: F401
from .driver import (  # noqa: F401
    build_case,
    CaseResult,
    FAILURE_OUTCOMES,
    FuzzCase,
    FuzzConfig,
    FuzzReport,
    OPTION_VARIANTS,
    replay_record,
    run_case,
    run_fuzz,
)
from .generate import (  # noqa: F401
    derive_seed,
    GeneratedProgram,
    generate_corpus,
    generate_program,
    GeneratorConfig,
    SEED_CORPUS,
)
from .minimize import ddmin_lines, minimize_cert_text, minimize_source  # noqa: F401
from .mutators import (  # noqa: F401
    make_subject,
    Mutation,
    MutationSubject,
    Mutator,
    MUTATORS,
    MUTATORS_BY_NAME,
    normalize_certificate,
)

__all__ = [
    "build_case",
    "bucket_for",
    "CaseResult",
    "ddmin_lines",
    "derive_seed",
    "FAILURE_OUTCOMES",
    "FailureRecord",
    "FuzzCase",
    "FuzzConfig",
    "FuzzCorpus",
    "FuzzReport",
    "GeneratedProgram",
    "generate_corpus",
    "generate_program",
    "GeneratorConfig",
    "make_subject",
    "minimize_cert_text",
    "minimize_source",
    "Mutation",
    "MutationSubject",
    "Mutator",
    "MUTATORS",
    "MUTATORS_BY_NAME",
    "normalize_certificate",
    "OPTION_VARIANTS",
    "replay_record",
    "run_case",
    "run_fuzz",
    "SEED_CORPUS",
]
