"""Delta-debugging minimization of failing fuzz cases.

Trust: **advisory** — shrinks fuzz counterexamples for human consumption.

When the fuzzing driver (:mod:`repro.fuzz.driver`) finds a failure it
persists the raw reproducer, but raw generated programs and certificates
are noisy: most of their content is irrelevant to the failure.  This
module shrinks both failing artifact kinds to *minimal* reproducers:

* :func:`minimize_source` shrinks a failing **Viper program** with greedy
  AST-level passes (method dropping, statement deletion, assertion
  simplification, field dropping) re-using the same AST and pretty-printer
  the pipeline itself uses — so every candidate is tested through exactly
  the code path that failed;
* :func:`minimize_cert_text` shrinks a failing **certificate text** with
  the classic ddmin algorithm over lines (the unit of meaning of the
  line-oriented format, docs/CERTIFICATE_FORMAT.md §2).

Both functions are **deterministic**: candidates are enumerated in a fixed
order and the first improving candidate is taken, so the same failure
always minimizes to the byte-identical reproducer (a property checked by
``tests/fuzz/test_minimize.py``).  The *predicate* passed in must return
``True`` iff the candidate still exhibits the failure being minimized;
predicates are expected to swallow their own exceptions (a crashing
candidate either *is* the failure — predicate ``True`` — or is not).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Sequence

from ..viper.ast import (
    Acc,
    AExpr,
    Assertion,
    AssertStmt,
    BoolLit,
    CondAssert,
    Exhale,
    expr_children,
    If,
    Implies,
    Inhale,
    MethodDecl,
    Program,
    SepConj,
    Seq,
    Skip,
    Stmt,
)
from ..viper.loops import While
from ..viper.parser import parse_program
from ..viper.pretty import pretty_program

__all__ = ["minimize_source", "minimize_cert_text", "ddmin_lines"]

TRUE = AExpr(BoolLit(True))

SourcePredicate = Callable[[str], bool]


# ---------------------------------------------------------------------------
# Size metric (strictly decreasing along accepted shrinks => termination)
# ---------------------------------------------------------------------------


def _expr_weight(expr) -> int:
    return 1 + sum(_expr_weight(child) for child in expr_children(expr))


def _assertion_weight(assertion: Assertion) -> int:
    if isinstance(assertion, AExpr):
        return 1 + _expr_weight(assertion.expr)
    if isinstance(assertion, Acc):
        return 1 + _expr_weight(assertion.receiver) + _expr_weight(assertion.perm)
    if isinstance(assertion, SepConj):
        return 1 + _assertion_weight(assertion.left) + _assertion_weight(assertion.right)
    if isinstance(assertion, Implies):
        return 1 + _expr_weight(assertion.cond) + _assertion_weight(assertion.body)
    if isinstance(assertion, CondAssert):
        return (
            1
            + _expr_weight(assertion.cond)
            + _assertion_weight(assertion.then)
            + _assertion_weight(assertion.otherwise)
        )
    return 1  # pragma: no cover - exhaustive above


def _stmt_weight(stmt: Stmt) -> int:
    if isinstance(stmt, Seq):
        return 1 + _stmt_weight(stmt.first) + _stmt_weight(stmt.second)
    if isinstance(stmt, If):
        return 1 + _expr_weight(stmt.cond) + _stmt_weight(stmt.then) + _stmt_weight(stmt.otherwise)
    if isinstance(stmt, While):
        return (
            1
            + _expr_weight(stmt.cond)
            + _assertion_weight(stmt.invariant)
            + _stmt_weight(stmt.body)
        )
    if isinstance(stmt, (Inhale, Exhale, AssertStmt)):
        return 1 + _assertion_weight(stmt.assertion)
    if isinstance(stmt, Skip):
        return 0
    return 2  # atomic statements outweigh Skip so deletion always shrinks


def _method_weight(method: MethodDecl) -> int:
    weight = 1 + len(method.args) + len(method.returns)
    weight += _assertion_weight(method.pre) + _assertion_weight(method.post)
    if method.body is not None:
        weight += 1 + _stmt_weight(method.body)
    return weight


def _program_weight(program: Program) -> int:
    return len(program.fields) + sum(_method_weight(m) for m in program.methods)


# ---------------------------------------------------------------------------
# Shrink candidates (enumerated in a fixed, deterministic order)
# ---------------------------------------------------------------------------


def _assertion_variants(assertion: Assertion) -> Iterator[Assertion]:
    """Strictly-smaller replacements for one assertion tree."""
    if isinstance(assertion, SepConj):
        yield assertion.left
        yield assertion.right
        for left in _assertion_variants(assertion.left):
            yield SepConj(left, assertion.right)
        for right in _assertion_variants(assertion.right):
            yield SepConj(assertion.left, right)
        return
    if isinstance(assertion, Implies):
        yield assertion.body
        for body in _assertion_variants(assertion.body):
            yield Implies(assertion.cond, body)
        return
    if isinstance(assertion, CondAssert):
        yield assertion.then
        yield assertion.otherwise
        for then in _assertion_variants(assertion.then):
            yield CondAssert(assertion.cond, then, assertion.otherwise)
        for otherwise in _assertion_variants(assertion.otherwise):
            yield CondAssert(assertion.cond, assertion.then, otherwise)
        return
    if assertion != TRUE:
        yield TRUE


def _stmt_variants(stmt: Stmt) -> Iterator[Stmt]:
    """Strictly-smaller replacements for one statement tree."""
    if isinstance(stmt, Seq):
        yield stmt.first
        yield stmt.second
        for first in _stmt_variants(stmt.first):
            yield Seq(first, stmt.second)
        for second in _stmt_variants(stmt.second):
            yield Seq(stmt.first, second)
        return
    if isinstance(stmt, If):
        yield stmt.then
        yield stmt.otherwise
        yield Skip()
        for then in _stmt_variants(stmt.then):
            yield If(stmt.cond, then, stmt.otherwise)
        for otherwise in _stmt_variants(stmt.otherwise):
            yield If(stmt.cond, stmt.then, otherwise)
        return
    if isinstance(stmt, While):
        yield stmt.body
        yield Skip()
        for body in _stmt_variants(stmt.body):
            yield While(stmt.cond, stmt.invariant, body)
        for invariant in _assertion_variants(stmt.invariant):
            yield While(stmt.cond, invariant, stmt.body)
        return
    if isinstance(stmt, (Inhale, Exhale, AssertStmt)):
        yield Skip()
        for assertion in _assertion_variants(stmt.assertion):
            yield type(stmt)(assertion)
        return
    if not isinstance(stmt, Skip):
        yield Skip()


def _method_variants(method: MethodDecl) -> Iterator[MethodDecl]:
    """Strictly-smaller replacements for one method."""
    if method.body is not None and not isinstance(method.body, Skip):
        yield replace(method, body=Skip())
        for body in _stmt_variants(method.body):
            yield replace(method, body=body)
    for pre in _assertion_variants(method.pre):
        yield replace(method, pre=pre)
    for post in _assertion_variants(method.post):
        yield replace(method, post=post)
    # Drop (now-)unused formals; ill-typed candidates fail the predicate.
    for index in range(len(method.args) - 1, -1, -1):
        yield replace(
            method, args=method.args[:index] + method.args[index + 1:]
        )
    for index in range(len(method.returns) - 1, -1, -1):
        yield replace(
            method, returns=method.returns[:index] + method.returns[index + 1:]
        )


def _program_variants(program: Program) -> Iterator[Program]:
    """All one-step shrinks of a program, biggest-first per category."""
    # 1. Drop whole methods (later methods first: they cannot be callees
    #    of earlier ones under the generator's ordering discipline).
    for index in range(len(program.methods) - 1, -1, -1):
        yield replace(
            program,
            methods=program.methods[:index] + program.methods[index + 1:],
        )
    # 2. Shrink each method in order.
    for index, method in enumerate(program.methods):
        for candidate in _method_variants(method):
            yield replace(
                program,
                methods=program.methods[:index]
                + (candidate,)
                + program.methods[index + 1:],
            )
    # 3. Drop fields (last first).
    for index in range(len(program.fields) - 1, -1, -1):
        yield replace(
            program,
            fields=program.fields[:index] + program.fields[index + 1:],
        )


# ---------------------------------------------------------------------------
# Source-level minimization
# ---------------------------------------------------------------------------


def minimize_source(
    source: str,
    predicate: SourcePredicate,
    *,
    max_steps: int = 10_000,
) -> str:
    """Shrink a failing Viper source to a minimal still-failing program.

    Greedy fixpoint iteration: in each round the one-step shrinks of the
    current program are enumerated in a fixed order and the first one that
    (a) strictly reduces the AST weight and (b) still satisfies
    ``predicate`` is adopted.  The result is the pretty-printed fixpoint
    (1-minimal with respect to the pass catalog).  If ``source`` cannot be
    parsed, a line-level :func:`ddmin_lines` pass runs instead, so even
    syntactically broken inputs minimize.
    """
    try:
        program = parse_program(source)
    except Exception:
        lines = ddmin_lines(
            source.splitlines(), lambda ls: predicate("\n".join(ls) + "\n")
        )
        return "\n".join(lines) + "\n"
    current = pretty_program(program)
    if not predicate(current):
        # The failure does not survive pretty-printing normalisation:
        # keep the original reproducer untouched rather than lose it.
        return source
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        weight = _program_weight(program)
        for candidate in _program_variants(program):
            steps += 1
            if steps >= max_steps:
                break
            if _program_weight(candidate) >= weight:
                continue
            text = pretty_program(candidate)
            if predicate(text):
                program, current = candidate, text
                improved = True
                break
    return current


# ---------------------------------------------------------------------------
# Certificate-text minimization (classic ddmin over lines)
# ---------------------------------------------------------------------------


def ddmin_lines(
    lines: Sequence[str], predicate: Callable[[List[str]], bool]
) -> List[str]:
    """Zeller/Hildebrandt ddmin over a list of lines (deterministic)."""
    lines = list(lines)
    if not predicate(lines):
        return lines
    granularity = 2
    while len(lines) >= 2:
        chunk = max(1, (len(lines) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(lines), chunk):
            candidate = lines[:start] + lines[start + chunk:]
            if candidate and predicate(candidate):
                lines = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(lines), granularity * 2)
    return lines


def minimize_cert_text(text: str, predicate: Callable[[str], bool]) -> str:
    """Shrink a failing certificate text to a minimal still-failing text.

    Operates on whole lines — the unit of meaning of the format
    (docs/CERTIFICATE_FORMAT.md §2) — so the result stays recognisably a
    certificate fragment; deterministic for a deterministic predicate.
    """
    lines = ddmin_lines(
        text.splitlines(), lambda ls: predicate("\n".join(ls) + "\n")
    )
    return "\n".join(lines) + "\n"
