"""Adversarial mutators over the three untrusted artifacts.

Trust: **advisory** — mutation strategies for fuzzing.

The kernel's trust story (docs/TRUSTED_BASE.md) is that the translator, the
hint stream, and the certificate text are all *untrusted*: a bug or a lie
in any of them must be caught by the trusted reparse+check path.  Each
mutator in this module attacks exactly one soundness property of that
story and is tagged with it:

* **Boogie mutators** simulate translator bugs — the generated code no
  longer simulates the Viper statement (swapped literals, dropped or
  duplicated or reordered commands, asserts weakened to assumes, retargeted
  state updates, truncated obligations);
* **hint mutators** simulate a lying tactic/instrumentation — the proof
  tree claims a different translation variant than the one emitted
  (wd-check flags flipped both ways, fast-path claims against temp-based
  code, aliasing auxiliary variables, reordered or dropped sub-proofs,
  omitted heap havocs);
* **certificate-text mutators** corrupt the serialised ``.cert`` artifact
  at the token and rule level; each cites the section of
  ``docs/CERTIFICATE_FORMAT.md`` whose guarantee it violates.

A fourth family targets the *incrementality* layer rather than the
kernel: :func:`mutate_single_method` performs a semantically inert
single-method **source** edit (an appended ``assert true``, or ``&&
true`` conjoined onto the postcondition) so the driver can re-run the
pipeline against a warm unit cache and assert that exactly the units the
dependency map invalidates — the mutated unit, plus its transitive
callers iff the edit touched the spec — were rebuilt.

Every mutator is deterministic given a ``random.Random`` and returns
``None`` when it is not applicable to the subject (so drivers can fall
through to the next mutator).  A mutator never returns an *unchanged*
artifact: the produced :class:`Mutation` always differs from the pristine
subject, which is what lets the driver classify a kernel acceptance of a
mutant as a finding rather than noise.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..boogie.ast import (
    Assign,
    Assume,
    BAssert,
    BBinOp,
    BIf,
    BIntLit,
    BUnOp,
    CondB,
    FuncApp,
    Havoc,
    MapSelect,
    MapStore,
    Procedure,
    SimpleCmd,
    StmtBlock,
)
from ..certification.prooftree import (
    parse_program_certificate,
    ProgramCertificate,
    render_program_certificate,
)
from ..certification.rules import RULE_NAMES
from ..certification.tactic import generate_program_certificate, ProofGenError
from ..frontend.hints import (
    AccHint,
    AssertHint,
    AssertionHint,
    CallHint,
    CondHint,
    ExhaleHint,
    IfHint,
    ImpliesHint,
    InhaleHint,
    MethodHint,
    SepHint,
    SeqHint,
    SkipHint,
    SpecWellFormednessHint,
)
from ..frontend.translator import TranslationResult
from ..viper.ast import (
    AssertStmt,
    Program as ViperProgram,
    Seq as ViperSeq,
    SepConj as ViperSepConj,
    TRUE_ASSERTION,
)
from ..viper.pretty import pretty_program

__all__ = [
    "Mutation",
    "MutationSubject",
    "Mutator",
    "MUTATORS",
    "MUTATORS_BY_NAME",
    "SourceMutation",
    "make_subject",
    "mutate_single_method",
    "normalize_certificate",
]


# ---------------------------------------------------------------------------
# Subjects and mutations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutationSubject:
    """The pristine artifacts of one translation run (before corruption)."""

    result: TranslationResult
    certificate: ProgramCertificate
    certificate_text: str


@dataclass(frozen=True)
class Mutation:
    """One corrupted artifact set, ready for the trusted path to judge.

    ``result`` carries the (possibly mutated) Boogie program;
    ``certificate_text`` carries the (possibly corrupted) serialised
    certificate.  Exactly one of the two differs from the pristine subject
    — which one is recorded in ``artifact``.
    """

    mutator: str
    artifact: str  # "boogie" | "hints" | "cert"
    result: TranslationResult
    certificate_text: str
    detail: str


def make_subject(result: TranslationResult) -> MutationSubject:
    """Build the pristine subject (certificate generated and rendered)."""
    certificate = generate_program_certificate(result)
    return MutationSubject(
        result=result,
        certificate=certificate,
        certificate_text=render_program_certificate(certificate),
    )


def normalize_certificate(cert: ProgramCertificate) -> ProgramCertificate:
    """Erase advisory fields before semantic-equality comparison.

    The ``depends`` lines of the text format (CERTIFICATE_FORMAT.md §3)
    are advisory *to the kernel* — it recomputes dependencies from the
    CALL-SIM nodes it checks — so two certificates differing only there
    denote the same proof.  (The untrusted unit-cache layer does read
    them for invalidation routing, but that never affects a verdict.)
    """
    return ProgramCertificate(
        tuple(replace(m, dependencies=()) for m in cert.methods)
    )


@dataclass(frozen=True)
class Mutator:
    """One named adversarial corruption.

    ``attacks`` names the soundness property the corruption targets (what
    the kernel must catch); ``spec_section`` cites the
    docs/CERTIFICATE_FORMAT.md section for certificate-text corruption.
    """

    name: str
    artifact: str  # "boogie" | "hints" | "cert"
    attacks: str
    apply: Callable[[random.Random, MutationSubject], Optional[Mutation]]
    spec_section: str = ""


# ---------------------------------------------------------------------------
# Boogie program mutators (simulated translator bugs)
# ---------------------------------------------------------------------------


def _procedures(subject: MutationSubject) -> List[str]:
    """Covered procedure names, in deterministic (certificate) order."""
    return [cert.procedure for cert in subject.certificate.methods]


def _with_procedure(result: TranslationResult, proc: Procedure) -> TranslationResult:
    procedures = tuple(
        proc if p.name == proc.name else p for p in result.boogie_program.procedures
    )
    return replace(
        result, boogie_program=replace(result.boogie_program, procedures=procedures)
    )


def _edit_commands(body, editor):
    """Rebuild a Boogie statement, mapping each command through ``editor``.

    ``editor(cmd, index)`` returns ``None`` to keep the command or a list
    of replacement commands; ``index`` is the global preorder position.
    """
    counter = itertools.count()

    def walk(stmt):
        blocks = []
        for block in stmt:
            cmds: List[SimpleCmd] = []
            for cmd in block.cmds:
                index = next(counter)
                replacement = editor(cmd, index)
                cmds.extend([cmd] if replacement is None else replacement)
            ifopt = block.ifopt
            if ifopt is not None:
                ifopt = BIf(ifopt.cond, walk(ifopt.then), walk(ifopt.otherwise))
            blocks.append(StmtBlock(tuple(cmds), ifopt))
        return tuple(blocks)

    return walk(body)


def _command_indices(body, predicate) -> List[int]:
    """Preorder indices of commands satisfying ``predicate``."""
    hits: List[int] = []

    def editor(cmd, index):
        if predicate(cmd):
            hits.append(index)
        return None

    _edit_commands(body, editor)
    return hits


def _boogie_mutation(
    rng: random.Random,
    subject: MutationSubject,
    name: str,
    predicate,
    rewrite,
    detail: str,
) -> Optional[Mutation]:
    """Apply ``rewrite`` to one random command matching ``predicate``."""
    for proc_name in _shuffled(rng, _procedures(subject)):
        proc = subject.result.boogie_program.procedure(proc_name)
        hits = _command_indices(proc.body, predicate)
        if not hits:
            continue
        target = hits[rng.randrange(len(hits))]

        def editor(cmd, index):
            return rewrite(cmd) if index == target else None

        body = _edit_commands(proc.body, editor)
        if body == proc.body:
            continue
        mutated = Procedure(proc.name, proc.locals, body)
        return Mutation(
            mutator=name,
            artifact="boogie",
            result=_with_procedure(subject.result, mutated),
            certificate_text=subject.certificate_text,
            detail=f"{detail} in {proc_name} at command #{target}",
        )
    return None


def _shuffled(rng: random.Random, items: Sequence) -> List:
    items = list(items)
    rng.shuffle(items)
    return items


def _rewrite_int_literals(expr, bump):
    """Replace the first embedded int literal via ``bump`` (bottom-up)."""
    if isinstance(expr, BIntLit):
        return bump(expr)
    if isinstance(expr, FuncApp):
        return FuncApp(
            expr.name, expr.type_args,
            tuple(_rewrite_int_literals(a, bump) for a in expr.args),
        )
    if isinstance(expr, BBinOp):
        return BBinOp(
            expr.op,
            _rewrite_int_literals(expr.left, bump),
            _rewrite_int_literals(expr.right, bump),
        )
    if isinstance(expr, BUnOp):
        return BUnOp(expr.op, _rewrite_int_literals(expr.operand, bump))
    if isinstance(expr, CondB):
        return CondB(
            _rewrite_int_literals(expr.cond, bump),
            _rewrite_int_literals(expr.then, bump),
            _rewrite_int_literals(expr.otherwise, bump),
        )
    if isinstance(expr, MapSelect):
        return MapSelect(
            _rewrite_int_literals(expr.map, bump),
            tuple(_rewrite_int_literals(a, bump) for a in expr.args),
        )
    if isinstance(expr, MapStore):
        return MapStore(
            _rewrite_int_literals(expr.map, bump),
            tuple(_rewrite_int_literals(a, bump) for a in expr.args),
            _rewrite_int_literals(expr.value, bump),
        )
    return expr


def _has_int_literal(expr) -> bool:
    marker: List[bool] = []

    def bump(lit):
        marker.append(True)
        return lit

    _rewrite_int_literals(expr, bump)
    return bool(marker)


def _cmd_expr(cmd):
    if isinstance(cmd, (Assume, BAssert)):
        return cmd.expr
    if isinstance(cmd, Assign):
        return cmd.rhs
    return None


def _mut_swap_literal(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    def predicate(cmd):
        expr = _cmd_expr(cmd)
        return expr is not None and _has_int_literal(expr)

    def rewrite(cmd):
        def bump(lit: BIntLit) -> BIntLit:
            return BIntLit(lit.value + 1)

        if isinstance(cmd, Assume):
            return [Assume(_rewrite_int_literals(cmd.expr, bump))]
        if isinstance(cmd, BAssert):
            return [BAssert(_rewrite_int_literals(cmd.expr, bump))]
        if isinstance(cmd, Assign):
            return [Assign(cmd.target, _rewrite_int_literals(cmd.rhs, bump))]
        return None  # pragma: no cover

    return _boogie_mutation(
        rng, subject, "boogie-swap-literal", predicate, rewrite,
        "integer literal incremented",
    )


def _mut_weaken_assert(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    return _boogie_mutation(
        rng, subject, "boogie-weaken-assert",
        lambda cmd: isinstance(cmd, BAssert),
        lambda cmd: [Assume(cmd.expr)],
        "assert weakened to assume",
    )


def _mut_drop_command(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    return _boogie_mutation(
        rng, subject, "boogie-drop-command",
        lambda cmd: True,
        lambda cmd: [],
        "command deleted",
    )


def _mut_duplicate_command(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    return _boogie_mutation(
        rng, subject, "boogie-duplicate-command",
        lambda cmd: True,
        lambda cmd: [cmd, cmd],
        "command duplicated",
    )


def _mut_retarget_assign(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    records = {
        cert.procedure: cert.record for cert in subject.certificate.methods
    }

    for proc_name in _shuffled(rng, _procedures(subject)):
        record = records[proc_name]

        def predicate(cmd):
            return isinstance(cmd, Assign) and cmd.target in (
                record.heap_var, record.mask_var
            )

        def rewrite(cmd):
            other = (
                record.mask_var if cmd.target == record.heap_var else record.heap_var
            )
            return [Assign(other, cmd.rhs)]

        one_proc_subject = subject  # mutate within this procedure only
        mutation = _boogie_mutation(
            rng, one_proc_subject, "boogie-retarget-assign", predicate, rewrite,
            "state update retargeted to the wrong global",
        )
        if mutation is not None:
            return mutation
    return None


def _mut_swap_adjacent(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    for proc_name in _shuffled(rng, _procedures(subject)):
        proc = subject.result.boogie_program.procedure(proc_name)
        # Collect indices i such that commands i and i+1 sit in one block
        # and differ.
        pairs: List[int] = []
        counter = itertools.count()

        def scan(stmt):
            for block in stmt:
                base = None
                for offset, cmd in enumerate(block.cmds):
                    index = next(counter)
                    if offset == 0:
                        base = index
                    if offset + 1 < len(block.cmds) and block.cmds[offset] != block.cmds[offset + 1]:
                        pairs.append(index)
                if block.ifopt is not None:
                    scan(block.ifopt.then)
                    scan(block.ifopt.otherwise)

        scan(proc.body)
        if not pairs:
            continue
        target = pairs[rng.randrange(len(pairs))]
        swapped: List[SimpleCmd] = []

        def editor(cmd, index):
            if index == target:
                swapped.append(cmd)
                return []
            if index == target + 1:
                return [cmd] + swapped
            return None

        body = _edit_commands(proc.body, editor)
        if body == proc.body:  # pragma: no cover - pairs guarantee change
            continue
        mutated = Procedure(proc.name, proc.locals, body)
        return Mutation(
            mutator="boogie-swap-adjacent",
            artifact="boogie",
            result=_with_procedure(subject.result, mutated),
            certificate_text=subject.certificate_text,
            detail=f"adjacent commands swapped in {proc_name} at #{target}",
        )
    return None


def _mut_truncate_body(rng: random.Random, subject: MutationSubject) -> Optional[Mutation]:
    for proc_name in _shuffled(rng, _procedures(subject)):
        proc = subject.result.boogie_program.procedure(proc_name)
        total = len(_command_indices(proc.body, lambda cmd: True))
        if total <= 1:
            continue
        keep = rng.randrange(1, total)

        def editor(cmd, index):
            return None if index < keep else []

        body = _edit_commands(proc.body, editor)
        if body == proc.body:
            continue
        mutated = Procedure(proc.name, proc.locals, body)
        return Mutation(
            mutator="boogie-truncate-body",
            artifact="boogie",
            result=_with_procedure(subject.result, mutated),
            certificate_text=subject.certificate_text,
            detail=f"body of {proc_name} truncated after {keep} commands",
        )
    return None


# ---------------------------------------------------------------------------
# Hint mutators (simulated lying tactic / instrumentation)
# ---------------------------------------------------------------------------

_HINT_CHILD_FIELDS = {
    SeqHint: ("first", "second"),
    IfHint: ("then", "otherwise"),
    SepHint: ("left", "right"),
    ImpliesHint: ("body",),
    CondHint: ("then", "otherwise"),
    InhaleHint: ("assertion",),
    ExhaleHint: ("assertion",),
    AssertHint: ("assertion",),
    CallHint: ("exhale_pre", "inhale_post"),
}


def _walk_hint(hint, visit, path=()):
    """Preorder visit of a hint tree (including assertion-level hints)."""
    visit(hint, path)
    for hint_type, fields in _HINT_CHILD_FIELDS.items():
        if isinstance(hint, hint_type):
            for name in fields:
                _walk_hint(getattr(hint, name), visit, path + (name,))
            break


def _rewrite_at(hint, target_path, transform, path=()):
    """Rebuild a hint tree with the node at ``target_path`` transformed."""
    if path == target_path:
        return transform(hint)
    for hint_type, fields in _HINT_CHILD_FIELDS.items():
        if isinstance(hint, hint_type):
            updates = {
                name: _rewrite_at(getattr(hint, name), target_path, transform,
                                  path + (name,))
                for name in fields
            }
            return replace(hint, **updates)
    return hint


def _method_hint_sections(hint: MethodHint) -> List[Tuple[str, object]]:
    sections: List[Tuple[str, object]] = [
        ("wf.pre", hint.wellformedness.inhale_pre),
        ("wf.post", hint.wellformedness.inhale_post),
    ]
    if hint.body is not None:
        sections.append(("body.pre", hint.body_inhale_pre))
        sections.append(("body", hint.body))
        sections.append(("body.post", hint.body_exhale_post))
    return sections


def _replace_section(hint: MethodHint, section: str, new_value) -> MethodHint:
    if section == "wf.pre":
        return replace(
            hint, wellformedness=replace(hint.wellformedness, inhale_pre=new_value)
        )
    if section == "wf.post":
        return replace(
            hint, wellformedness=replace(hint.wellformedness, inhale_post=new_value)
        )
    if section == "body.pre":
        return replace(hint, body_inhale_pre=new_value)
    if section == "body":
        return replace(hint, body=new_value)
    if section == "body.post":
        return replace(hint, body_exhale_post=new_value)
    raise KeyError(section)


def _hint_mutation(
    rng: random.Random,
    subject: MutationSubject,
    name: str,
    predicate,
    transform,
    detail: str,
) -> Optional[Mutation]:
    """Transform one random hint node matching ``predicate`` and regenerate."""
    method_names = _shuffled(rng, sorted(subject.result.methods))
    for method_name in method_names:
        translated = subject.result.methods[method_name]
        candidates: List[Tuple[str, Tuple[str, ...]]] = []
        for section, section_hint in _method_hint_sections(translated.hint):
            _walk_hint(
                section_hint,
                lambda node, path, section=section: candidates.append((section, path))
                if predicate(node, path)
                else None,
            )
        if not candidates:
            continue
        section, path = candidates[rng.randrange(len(candidates))]
        old_section = dict(_method_hint_sections(translated.hint))[section]
        new_section = _rewrite_at(old_section, path, transform)
        if new_section == old_section:
            continue
        new_hint = _replace_section(translated.hint, section, new_section)
        new_methods = dict(subject.result.methods)
        new_methods[method_name] = replace(translated, hint=new_hint)
        lying_result = replace(subject.result, methods=new_methods)
        try:
            certificate = generate_program_certificate(lying_result)
        except ProofGenError:
            continue  # the tactic refused; not a kernel-facing artifact
        text = render_program_certificate(certificate)
        if normalize_certificate(
            parse_program_certificate(text)
        ) == normalize_certificate(subject.certificate):
            continue  # the lie does not surface in the certificate
        return Mutation(
            mutator=name,
            artifact="hints",
            result=subject.result,
            certificate_text=text,
            detail=f"{detail} in {method_name} ({section}:{'/'.join(path) or 'root'})",
        )
    return None


def _at_call_site(path: Tuple[str, ...]) -> bool:
    """True when the node is the pre-exhale child of a ``CallHint``.

    The ``with_wd`` flag is only *load-bearing* at call sites: at body
    statement positions the kernel ignores the declared variant entirely
    and re-derives it (INHALE-STMT-SIM / EXH-SIM pass ``with_wd=True``
    unconditionally), so only the call-site flag feeds the non-local
    hypothesis discipline of Sec. 4.2.
    """
    return bool(path) and path[-1] == "exhale_pre"


def _mut_hint_claim_wd_omitted(rng, subject) -> Optional[Mutation]:
    # Only applicable to subjects translated with wd_checks_at_calls=True:
    # the code then snapshots a wd mask at the call-site exhale, and the
    # lying flag claims it did not (to smuggle in the Q hypothesis).
    return _hint_mutation(
        rng, subject, "hints-claim-wd-omitted",
        lambda node, path: _at_call_site(path)
        and isinstance(node, ExhaleHint) and node.with_wd_checks,
        lambda node: replace(node, with_wd_checks=False, wd_mask_var=None),
        "claimed call-site wd checks omitted against code that emits them",
    )


def _mut_hint_claim_wd_present(rng, subject) -> Optional[Mutation]:
    # Dual lie: under the default (optimised) translation the call-site
    # exhale omits wd checks; claiming them present makes the kernel
    # demand a wd-mask snapshot command the code never emitted.
    def transform(node):
        record = next(iter(subject.result.methods.values())).record
        wd_mask = record.wd_mask_var or "wdm_lie"
        return replace(node, with_wd_checks=True, wd_mask_var=wd_mask)

    return _hint_mutation(
        rng, subject, "hints-claim-wd-present",
        lambda node, path: _at_call_site(path)
        and isinstance(node, ExhaleHint) and not node.with_wd_checks,
        transform,
        "claimed call-site wd checks present against code that omits them",
    )


def _mut_hint_reorder_seq(rng, subject) -> Optional[Mutation]:
    return _hint_mutation(
        rng, subject, "hints-reorder-seq",
        lambda node, path: isinstance(node, SeqHint) and node.first != node.second,
        lambda node: SeqHint(node.second, node.first),
        "sequential sub-proofs reordered",
    )


def _mut_hint_drop_subtree(rng, subject) -> Optional[Mutation]:
    return _hint_mutation(
        rng, subject, "hints-drop-subtree",
        lambda node, path: isinstance(node, SeqHint)
        and not isinstance(node.second, SkipHint),
        lambda node: SeqHint(node.first, SkipHint()),
        "statement sub-proof dropped (replaced by a skip claim)",
    )


def _mut_hint_lie_fastpath(rng, subject) -> Optional[Mutation]:
    return _hint_mutation(
        rng, subject, "hints-lie-fastpath",
        lambda node, path: isinstance(node, AccHint) and node.perm_temp_var is not None,
        lambda node: replace(node, perm_temp_var=None),
        "claimed the literal fast path against temp-based code",
    )


def _mut_hint_alias_aux(rng, subject) -> Optional[Mutation]:
    # Claim the reduction-state mask itself as the wd-mask snapshot: the
    # freshness side condition must reject the alias even when command
    # matching could be fooled.
    mask_vars = {
        name: translated.record.mask_var
        for name, translated in subject.result.methods.items()
    }
    some_mask = sorted(set(mask_vars.values()))[0] if mask_vars else "M"
    return _hint_mutation(
        rng, subject, "hints-alias-aux",
        lambda node, path: isinstance(node, ExhaleHint) and node.wd_mask_var is not None,
        lambda node: replace(node, wd_mask_var=some_mask),
        "auxiliary wd-mask aliased to the tracked mask variable",
    )


def _assertion_hint_has_acc(node: AssertionHint) -> bool:
    found: List[bool] = []
    _walk_hint(node, lambda n, path: found.append(True) if isinstance(n, AccHint) else None)
    return bool(found)


def _mut_hint_drop_havoc(rng, subject) -> Optional[Mutation]:
    return _hint_mutation(
        rng, subject, "hints-drop-havoc",
        lambda node, path: isinstance(node, ExhaleHint)
        and node.havoc_heap_var is not None
        and _assertion_hint_has_acc(node.assertion),
        lambda node: replace(node, havoc_heap_var=None),
        "claimed the exhale heap havoc was omitted although permission is held",
    )


# ---------------------------------------------------------------------------
# Certificate-text mutators (token- and rule-level .cert corruption)
# ---------------------------------------------------------------------------


def _cert_mutation(
    subject: MutationSubject, name: str, lines: List[str], detail: str
) -> Optional[Mutation]:
    text = "\n".join(lines) + "\n"
    if text == subject.certificate_text:
        return None
    try:
        mutated = parse_program_certificate(text)
    except Exception:
        mutated = None
    if mutated is not None and normalize_certificate(mutated) == normalize_certificate(
        subject.certificate
    ):
        return None  # textual change denotes the identical certificate
    return Mutation(
        mutator=name,
        artifact="cert",
        result=subject.result,
        certificate_text=text,
        detail=detail,
    )


def _cert_lines(subject: MutationSubject) -> List[str]:
    return subject.certificate_text.splitlines()


def _mut_cert_corrupt_header(rng, subject) -> Optional[Mutation]:
    lines = _cert_lines(subject)
    lines[0] = "CERTIFICATE-V0"
    return _cert_mutation(
        subject, "cert-corrupt-header", lines, "version header corrupted"
    )


def _mut_cert_delete_line(rng, subject) -> Optional[Mutation]:
    lines = _cert_lines(subject)
    candidates = [
        i for i, line in enumerate(lines)
        if line.strip() and line.strip() not in ("CERTIFICATE-V1", "end-certificate")
    ]
    for index in _shuffled(rng, candidates):
        mutation = _cert_mutation(
            subject, "cert-delete-line",
            lines[:index] + lines[index + 1:],
            f"line {index + 1} deleted ({lines[index].strip()[:40]!r})",
        )
        if mutation is not None:
            return mutation
    return None


def _mut_cert_swap_lines(rng, subject) -> Optional[Mutation]:
    lines = _cert_lines(subject)
    candidates = [
        i for i in range(len(lines) - 1)
        if lines[i].strip() and lines[i + 1].strip() and lines[i] != lines[i + 1]
    ]
    for index in _shuffled(rng, candidates):
        swapped = list(lines)
        swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
        mutation = _cert_mutation(
            subject, "cert-swap-lines", swapped,
            f"lines {index + 1} and {index + 2} swapped",
        )
        if mutation is not None:
            return mutation
    return None


def _mut_cert_rename_rule(rng, subject) -> Optional[Mutation]:
    lines = _cert_lines(subject)
    rule_lines = [
        i for i, line in enumerate(lines)
        if line.strip().split() and line.strip().split()[0] in RULE_NAMES
    ]
    if not rule_lines:
        return None
    catalog = sorted(RULE_NAMES)
    for index in _shuffled(rng, rule_lines):
        stripped = lines[index].strip().split()
        current = stripped[0]
        replacement = catalog[(catalog.index(current) + 1) % len(catalog)]
        indent = lines[index][: len(lines[index]) - len(lines[index].lstrip())]
        mutated = list(lines)
        mutated[index] = indent + " ".join([replacement] + stripped[1:])
        mutation = _cert_mutation(
            subject, "cert-rename-rule", mutated,
            f"rule {current} renamed to {replacement} at line {index + 1}",
        )
        if mutation is not None:
            return mutation
    return None


def _mut_cert_corrupt_param(rng, subject) -> Optional[Mutation]:
    # ``with_wd`` keys are deliberately not corrupted here: the kernel
    # re-derives the translation variant at statement positions (the param
    # is advisory there — see docs/TRUSTED_BASE.md), so a token flip would
    # be semantically inert.  The load-bearing call-site flag lies are the
    # dedicated ``hints-claim-wd-*`` mutators.
    lines = _cert_lines(subject)
    flips = {"@true": "@false", "@false": "@true", "@none": "bogus"}
    candidates = [
        i for i, line in enumerate(lines) if "=" in line and line.startswith("  ")
    ]
    for index in _shuffled(rng, candidates):
        line = lines[index]
        indent = line[: len(line) - len(line.lstrip())]
        tokens = line.strip().split()
        param_slots = [
            j for j, tok in enumerate(tokens)
            if "=" in tok and not tok.startswith("with_wd=")
        ]
        if not param_slots:
            continue
        slot = param_slots[rng.randrange(len(param_slots))]
        key, _, value = tokens[slot].partition("=")
        if value in flips:
            new_value = flips[value]
        elif value.lstrip("-").isdigit():
            new_value = str(int(value) + 1)
        else:
            new_value = value + "_x"
        tokens[slot] = f"{key}={new_value}"
        mutated = list(lines)
        mutated[index] = indent + " ".join(tokens)
        mutation = _cert_mutation(
            subject, "cert-corrupt-param", mutated,
            f"parameter {key}={value} corrupted to {new_value} at line {index + 1}",
        )
        if mutation is not None:
            return mutation
    return None


def _mut_cert_corrupt_indent(rng, subject) -> Optional[Mutation]:
    lines = _cert_lines(subject)
    candidates = [i for i, line in enumerate(lines) if line.startswith("  ")]
    for index in _shuffled(rng, candidates):
        mutated = list(lines)
        mutated[index] = "  " + mutated[index]
        mutation = _cert_mutation(
            subject, "cert-corrupt-indent", mutated,
            f"proof line {index + 1} re-indented (reparenting attempt)",
        )
        if mutation is not None:
            return mutation
    return None


def _mut_cert_corrupt_record(rng, subject) -> Optional[Mutation]:
    # Only ``var`` lines are retargeted: the kernel's record check pins
    # every Viper variable to a *declared local* of the right type and
    # rejects duplicate targets, so both corruption shapes below are
    # guaranteed to be load-bearing.  ``heapvar``/``fieldconst`` lines are
    # only checked for *declaration*, so retargeting an entry the method
    # never touches would be semantically inert (and rightly accepted).
    lines = _cert_lines(subject)
    mask_value = "M"
    for line in lines:
        if line.strip().startswith("maskvar "):
            mask_value = line.strip().split()[1]
            break
    blocks = {}  # var-line index -> method-block ordinal (for sibling scoping)
    block = -1
    for i, line in enumerate(lines):
        if line.strip().startswith("method "):
            block += 1
        if line.strip().startswith("var "):
            blocks[i] = block
    candidates = sorted(blocks)
    for index in _shuffled(rng, candidates):
        tokens = lines[index].strip().split()
        siblings = [
            lines[j].strip().split()[-1]
            for j in candidates
            if j != index
            and blocks[j] == blocks[index]
            and lines[j].strip().split()[-1] != tokens[-1]
        ]
        if siblings and rng.random() < 0.5:
            # Alias two Viper variables to one Boogie local.
            tokens[-1] = siblings[rng.randrange(len(siblings))]
        else:
            # Retarget the variable to the tracked mask global.
            tokens[-1] = mask_value if tokens[-1] != mask_value else mask_value + "_x"
        mutated = list(lines)
        mutated[index] = " ".join(tokens)
        mutation = _cert_mutation(
            subject, "cert-corrupt-record", mutated,
            f"record line {index + 1} retargeted to {tokens[-1]!r}",
        )
        if mutation is not None:
            return mutation
    return None


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------

MUTATORS: Tuple[Mutator, ...] = (
    # -- translator bugs (Boogie program edits) ------------------------------
    Mutator(
        "boogie-swap-literal", "boogie",
        "expression faithfulness: the kernel recomputes every Viper-derived "
        "expression instead of trusting the emitted one",
        _mut_swap_literal,
    ),
    Mutator(
        "boogie-weaken-assert", "boogie",
        "check preservation: a failing Viper execution must keep a failing "
        "Boogie counterpart (asserts cannot become assumes)",
        _mut_weaken_assert,
    ),
    Mutator(
        "boogie-drop-command", "boogie",
        "obligation completeness: every schema command must be present at "
        "the cursor",
        _mut_drop_command,
    ),
    Mutator(
        "boogie-duplicate-command", "boogie",
        "cursor discipline: extra commands cannot hide inside or after a "
        "checked region",
        _mut_duplicate_command,
    ),
    Mutator(
        "boogie-swap-adjacent", "boogie",
        "schema ordering: state updates and checks must appear in the "
        "order the lemma schema fixes",
        _mut_swap_adjacent,
    ),
    Mutator(
        "boogie-retarget-assign", "boogie",
        "state-relation integrity: heap/mask updates must target the "
        "record-tracked globals",
        _mut_retarget_assign,
    ),
    Mutator(
        "boogie-truncate-body", "boogie",
        "obligation coverage: the certificate must account for the whole "
        "procedure body (no trailing or missing obligations)",
        _mut_truncate_body,
    ),
    # -- lying tactic / instrumentation (hint edits) -------------------------
    Mutator(
        "hints-claim-wd-omitted", "hints",
        "Q discipline (Sec. 4.2): wd omission is only sound under a "
        "non-local hypothesis",
        _mut_hint_claim_wd_omitted,
    ),
    Mutator(
        "hints-claim-wd-present", "hints",
        "variant honesty: the declared translation variant must match the "
        "emitted commands",
        _mut_hint_claim_wd_present,
    ),
    Mutator(
        "hints-reorder-seq", "hints",
        "structural lockstep: sub-proofs must align with the statement "
        "tree, not merely exist",
        _mut_hint_reorder_seq,
    ),
    Mutator(
        "hints-drop-subtree", "hints",
        "proof completeness: every sub-statement needs its own simulation "
        "proof",
        _mut_hint_drop_subtree,
    ),
    Mutator(
        "hints-lie-fastpath", "hints",
        "side-condition soundness: the literal fast path is only sound for "
        "positive literal amounts and matching commands",
        _mut_hint_lie_fastpath,
    ),
    Mutator(
        "hints-alias-aux", "hints",
        "auxiliary freshness: aux variables must not alias record-tracked "
        "state",
        _mut_hint_alias_aux,
    ),
    Mutator(
        "hints-drop-havoc", "hints",
        "havoc obligation (Sec. 3.4): omitting the exhale heap havoc is "
        "only sound for permission-free assertions",
        _mut_hint_drop_havoc,
    ),
    # -- .cert text corruption (cites docs/CERTIFICATE_FORMAT.md) ------------
    Mutator(
        "cert-corrupt-header", "cert",
        "format versioning: unknown versions must be rejected before any "
        "rule is interpreted",
        _mut_cert_corrupt_header,
        spec_section="§1 (header and versioning)",
    ),
    Mutator(
        "cert-delete-line", "cert",
        "record/proof completeness: a missing record or proof line cannot "
        "silently weaken the obligation",
        _mut_cert_delete_line,
        spec_section="§2–§4 (method blocks, record lines, proof blocks)",
    ),
    Mutator(
        "cert-swap-lines", "cert",
        "line-order significance: premise order is proof structure, not "
        "presentation",
        _mut_cert_swap_lines,
        spec_section="§4 (proof blocks and premise order)",
    ),
    Mutator(
        "cert-rename-rule", "cert",
        "rule-identity integrity: the applied rule is taken from the line, "
        "so a renamed rule must fail its schema",
        _mut_cert_rename_rule,
        spec_section="§6 (rule lines and the catalog)",
    ),
    Mutator(
        "cert-corrupt-param", "cert",
        "parameter integrity: rule parameters are side-condition inputs "
        "(variant flags, aux names), not comments",
        _mut_cert_corrupt_param,
        spec_section="§5 (parameter encoding)",
    ),
    Mutator(
        "cert-corrupt-indent", "cert",
        "tree-shape integrity: indentation *is* the premise structure",
        _mut_cert_corrupt_indent,
        spec_section="§4 (indentation as tree shape)",
    ),
    Mutator(
        "cert-corrupt-record", "cert",
        "state-relation integrity: the record must map to declared, "
        "correctly-typed, non-aliased Boogie variables",
        _mut_cert_corrupt_record,
        spec_section="§3 (translation-record lines)",
    ),
)

MUTATORS_BY_NAME = {mutator.name: mutator for mutator in MUTATORS}


# ---------------------------------------------------------------------------
# Source-level mutation (the incrementality layer's adversary)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceMutation:
    """One semantically inert single-method edit of the Viper *source*.

    Unlike :class:`Mutation`, nothing here is corrupted: the edit preserves
    certifiability by construction (``assert true`` appended to the body,
    or ``&& true`` conjoined onto the postcondition).  What it perturbs is
    the **unit-cache key structure** (:mod:`repro.pipeline.units`): a
    ``body`` edit must invalidate exactly the edited unit, a ``spec`` edit
    the edited unit plus its transitive callers.  The fuzz driver re-runs
    the pipeline against a warm cache and fails the run when the rebuilt
    set disagrees with that prediction.
    """

    source: str
    method: str
    kind: str  # "body" | "spec"


def mutate_single_method(
    rng: random.Random, program: "ViperProgram"
) -> Optional[SourceMutation]:
    """Apply one inert edit to one method; ``None`` if there is no method."""
    if not program.methods:
        return None
    method = program.methods[rng.randrange(len(program.methods))]
    kind = "spec" if method.body is None or rng.random() < 0.5 else "body"
    if kind == "body":
        mutated = replace(
            method, body=ViperSeq(method.body, AssertStmt(TRUE_ASSERTION))
        )
    else:
        mutated = replace(
            method, post=ViperSepConj(method.post, TRUE_ASSERTION)
        )
    methods = tuple(
        mutated if decl.name == method.name else decl
        for decl in program.methods
    )
    return SourceMutation(
        source=pretty_program(replace(program, methods=methods)),
        method=method.name,
        kind=kind,
    )
