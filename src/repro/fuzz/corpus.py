"""Replayable failure corpus for the fuzzing driver.

Trust: **advisory** — fuzz corpus bookkeeping.

Failures found by :mod:`repro.fuzz.driver` are persisted under a corpus
directory (``fuzz-corpus/`` by default) so they can be re-run long after
the generating session is gone.  Layout::

    fuzz-corpus/
      <bucket>/
        repro.json        # replay metadata: seed, options, mutator, outcome
        input.vpr         # the Viper source of the failing case
        mutated.cert      # the corrupted certificate (mutant failures only)
        minimized.vpr     # delta-debugged source reproducer (when available)
        minimized.cert    # delta-debugged certificate reproducer

Failures are **deduplicated by bucket**: the bucket name is the outcome
class joined with a digest of the *normalised* failure detail (numbers
and quoted names are blanked), so two crashes with the same shape but
different indices collapse into one directory.  ``repro.json`` embeds
everything :func:`repro.fuzz.driver.replay_file` needs — no pickle, no
reference back into the generating process, in keeping with the repo's
rule that persisted artifacts stay textual and auditable.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["FailureRecord", "FuzzCorpus", "bucket_for"]

_NUMBER = re.compile(r"\d+")
_QUOTED = re.compile(r"'[^']*'|\"[^\"]*\"")


def _normalise_detail(detail: str) -> str:
    """Blank volatile parts of a failure detail for bucketing."""
    head = detail.splitlines()[0] if detail else ""
    head = _QUOTED.sub("'…'", head)
    return _NUMBER.sub("#", head)


def bucket_for(outcome: str, detail: str, mutator: Optional[str] = None) -> str:
    """Deterministic bucket name: outcome class + digest of the shape."""
    signature = "|".join((outcome, mutator or "", _normalise_detail(detail)))
    digest = hashlib.sha1(signature.encode("utf-8")).hexdigest()[:10]
    return f"{outcome}-{digest}"


@dataclass
class FailureRecord:
    """One persisted (replayable) failure."""

    outcome: str
    detail: str
    source: str
    case: Dict[str, object] = field(default_factory=dict)
    mutator: Optional[str] = None
    certificate_text: Optional[str] = None
    minimized_source: Optional[str] = None
    minimized_certificate: Optional[str] = None

    @property
    def bucket(self) -> str:
        return bucket_for(self.outcome, self.detail, self.mutator)


class FuzzCorpus:
    """A directory of deduplicated, replayable failures."""

    def __init__(self, root: "Path | str" = "fuzz-corpus") -> None:
        self.root = Path(root)

    # -- writing ---------------------------------------------------------

    def persist(self, record: FailureRecord) -> Tuple[Path, bool]:
        """Write the record; returns ``(bucket_dir, newly_created)``.

        A failure whose bucket already exists is *not* rewritten (first
        reproducer wins — it is already minimal or being minimized), which
        keeps long fuzzing sessions from churning the corpus.
        """
        bucket_dir = self.root / record.bucket
        if (bucket_dir / "repro.json").exists():
            return bucket_dir, False
        bucket_dir.mkdir(parents=True, exist_ok=True)
        meta = asdict(record)
        meta["bucket"] = record.bucket
        # Large artifacts live next to the metadata, not inside it.
        for key, filename in (
            ("source", "input.vpr"),
            ("certificate_text", "mutated.cert"),
            ("minimized_source", "minimized.vpr"),
            ("minimized_certificate", "minimized.cert"),
        ):
            value = meta.pop(key)
            if value is not None:
                (bucket_dir / filename).write_text(value, encoding="utf-8")
                meta[key + "_file"] = filename
        (bucket_dir / "repro.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return bucket_dir, True

    # -- reading ---------------------------------------------------------

    def buckets(self) -> List[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / "repro.json").is_file()
        )

    @staticmethod
    def load(path: "Path | str") -> FailureRecord:
        """Load a persisted failure from a bucket dir or its repro.json."""
        path = Path(path)
        if path.is_dir():
            path = path / "repro.json"
        meta = json.loads(path.read_text(encoding="utf-8"))
        bucket_dir = path.parent
        fields: Dict[str, object] = {
            "outcome": meta["outcome"],
            "detail": meta["detail"],
            "case": meta.get("case", {}),
            "mutator": meta.get("mutator"),
        }
        for key, default_name in (
            ("source", "input.vpr"),
            ("certificate_text", "mutated.cert"),
            ("minimized_source", "minimized.vpr"),
            ("minimized_certificate", "minimized.cert"),
        ):
            filename = meta.get(key + "_file", default_name)
            artifact = bucket_dir / filename
            fields[key] = (
                artifact.read_text(encoding="utf-8") if artifact.is_file() else None
            )
        if fields["source"] is None:
            raise FileNotFoundError(f"{bucket_dir}: missing input.vpr")
        return FailureRecord(**fields)  # type: ignore[arg-type]
