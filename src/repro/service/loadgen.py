"""Load generator: replay the harness corpus against a running server.

Trust: **advisory** — measurement tooling; its reports (latency,
throughput, ``error_trace_ids``) describe the service, never steer it.

``repro loadgen`` drives ``POST /v1/certify`` with the same 72-program
corpus the evaluation harness measures (Tables 1–6), at a target
concurrency, and emits a JSON latency report: p50/p95/p99, throughput,
the cache-hit split (memory/disk/miss), and optionally a single-shot CLI
baseline for the speedup claim.  Reports land in
``benchmarks/results/`` by default so serving performance is tracked
alongside the paper tables.

Worker threads each own a keep-alive :class:`ServiceClient` and pull
request indices from a shared queue; 429 backpressure responses are
honoured by sleeping out the server's ``Retry-After`` hint and retrying,
so the generator measures *goodput* under admission control rather than
hammering a full queue.
"""

from __future__ import annotations

import json
import math
import queue
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .client import ServiceClient, ServiceError, ServiceThrottled

#: Default report location (relative to the current working directory).
DEFAULT_REPORT = Path("benchmarks") / "results" / "loadgen_report.json"


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 8421
    #: Total requests to send (corpus programs are replayed round-robin).
    requests: int = 144
    concurrency: int = 8
    #: Restrict to one suite (Viper/Gobra/VerCors/MPP); None = all 72 files.
    suite: Optional[str] = None
    timeout: float = 60.0
    #: Send each distinct program once (unmeasured) before the run, so the
    #: measured section reports warm-cache behaviour.
    warmup: bool = False
    #: Also time N single-shot CLI invocations for the speedup baseline.
    baseline: int = 0
    #: Mix N lint-defective requests into the run (spread evenly).  Each is
    #: a corpus program with a seeded permission-flow defect the admission
    #: analyzer provably rejects, so the run exercises the 422 fast path.
    defects: int = 0
    report_path: Optional[str] = str(DEFAULT_REPORT)


@dataclass
class _Sample:
    seconds: float
    ok: bool
    rejected: bool
    cache: str
    retries: int = 0
    #: 422 from the admission analyzer (the lint fast path).
    lint_rejected: bool = False
    #: HTTP status of the final (non-throttled) response.
    status: int = 0
    #: Server-assigned trace id (every certify response carries one; with
    #: --trace-dir set on the server, errored ids map to persisted traces).
    trace_id: str = ""
    #: Serving node name, when the request went through the cluster router
    #: (it stamps each proxied response); empty against a single node.
    node: str = ""


@dataclass
class _WorkerState:
    samples: List[_Sample] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    throttled: int = 0


def corpus_payloads(suite: Optional[str] = None) -> List[Dict[str, Any]]:
    """The replay set: one certify body per corpus program."""
    from ..harness import full_corpus, suite_files

    if suite:
        files = suite_files(suite)
    else:
        files = [f for file_list in full_corpus().values() for f in file_list]
    return [{"source": f.source} for f in files]


#: Seeded defect appended to a corpus program to build the "bad" corpus:
#: a write under a provably-half permission, which the admission analyzer
#: rejects (VPR008, error severity) before any untrusted stage runs.
_DEFECT_SNIPPET = """
field lintbad: Int

method lint_defect_writer(q: Ref)
  requires acc(q.lintbad, 1/2)
  ensures acc(q.lintbad, 1/2)
{
  q.lintbad := 1
}
"""


def defective_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of ``payload`` with a seeded lint defect appended."""
    bad = dict(payload)
    bad["source"] = payload["source"] + _DEFECT_SNIPPET
    return bad


def request_sequence(
    payloads: List[Dict[str, Any]], total: int, defects: int
) -> List[Dict[str, Any]]:
    """The per-request payload schedule: corpus round-robin with ``defects``
    defective requests spread evenly through the run."""
    sequence = [payloads[i % len(payloads)] for i in range(total)]
    defects = max(0, min(defects, total))
    if defects:
        step = total / defects
        for k in range(defects):
            index = min(total - 1, int(k * step))
            sequence[index] = defective_payload(sequence[index])
    return sequence


def percentile(values: List[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by the nearest-rank method."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _drive(
    config: LoadgenConfig, payloads: List[Dict[str, Any]], total: int
) -> List[_WorkerState]:
    indices: "queue.Queue[int]" = queue.Queue()
    for i in range(total):
        indices.put(i)
    states = [_WorkerState() for _ in range(config.concurrency)]

    def worker(state: _WorkerState) -> None:
        with ServiceClient(config.host, config.port, timeout=config.timeout) as client:
            while True:
                try:
                    index = indices.get_nowait()
                except queue.Empty:
                    return
                payload = payloads[index % len(payloads)]
                retries = 0
                started = time.perf_counter()
                while True:
                    try:
                        response = client.certify(**payload)
                    except ServiceThrottled as throttled:
                        state.throttled += 1
                        retries += 1
                        if retries > 20:
                            state.errors.append(f"gave up after 20 throttles: {throttled}")
                            break
                        time.sleep(min(throttled.retry_after or 1.0, 2.0))
                        continue
                    except ServiceError as error:
                        state.errors.append(str(error))
                        break
                    state.samples.append(_Sample(
                        seconds=time.perf_counter() - started,
                        ok=bool(response.get("ok")),
                        rejected=bool(response.get("rejected")),
                        cache=str(response.get("cache", "miss")),
                        retries=retries,
                        lint_rejected=(
                            response.get("_status") == 422
                            and response.get("error_stage") == "analyze"
                        ),
                        status=int(response.get("_status", 0) or 0),
                        trace_id=str(response.get("trace_id", "")),
                        node=str(response.get("node", "")),
                    ))
                    break

    threads = [
        threading.Thread(target=worker, args=(state,), daemon=True)
        for state in states
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return states


def measure_cli_baseline(samples: int) -> Dict[str, Any]:
    """Time single-shot ``repro certify`` subprocesses on a corpus file.

    This is the number the service throughput claim is measured against:
    each invocation pays interpreter startup + imports + a cold pipeline.
    """
    payload = corpus_payloads("Viper")[0]
    durations: List[float] = []
    with tempfile.NamedTemporaryFile("w", suffix=".vpr", delete=False) as handle:
        handle.write(payload["source"])
        path = handle.name
    try:
        for _ in range(samples):
            started = time.perf_counter()
            result = subprocess.run(
                [sys.executable, "-m", "repro.cli", "certify", path],
                capture_output=True, text=True,
            )
            durations.append(time.perf_counter() - started)
            if result.returncode != 0:
                return {"samples": samples, "error":
                        f"baseline CLI failed rc={result.returncode}: {result.stderr[:200]}"}
    finally:
        Path(path).unlink(missing_ok=True)
    mean = sum(durations) / len(durations)
    return {
        "samples": samples,
        "single_shot_seconds_mean": round(mean, 4),
        "single_shot_rps": round(1.0 / mean, 3) if mean else 0.0,
    }


def run_loadgen(config: LoadgenConfig) -> Dict[str, Any]:
    """Run the load test and return (and optionally persist) the report."""
    payloads = corpus_payloads(config.suite)
    probe = ServiceClient(config.host, config.port, timeout=config.timeout)
    if not probe.wait_ready(timeout=10.0):
        raise ServiceError(
            f"no server answering on {config.host}:{config.port} "
            "(start one with `repro serve`)"
        )

    if config.warmup:
        for payload in payloads:
            try:
                probe.certify(**payload)
            except ServiceError:
                pass

    sequence = request_sequence(payloads, config.requests, config.defects)
    started = time.perf_counter()
    states = _drive(config, sequence, config.requests)
    duration = time.perf_counter() - started

    samples = [s for state in states for s in state.samples]
    errors = [e for state in states for e in state.errors]
    throttled = sum(state.throttled for state in states)
    latencies = [s.seconds for s in samples]
    cache_split = {"memory": 0, "disk": 0, "miss": 0}
    for sample in samples:
        cache_split[sample.cache] = cache_split.get(sample.cache, 0) + 1
    hits = cache_split["memory"] + cache_split["disk"]

    try:
        health = probe.healthz()
        health.pop("_status", None)
    except ServiceError:
        health = {}
    probe.close()

    report: Dict[str, Any] = {
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "host": config.host,
            "port": config.port,
            "requests": config.requests,
            "concurrency": config.concurrency,
            "suite": config.suite or "all",
            "corpus_files": len(payloads),
            "warmup": config.warmup,
            "defects": config.defects,
        },
        "duration_seconds": round(duration, 4),
        "throughput_rps": round(len(samples) / duration, 3) if duration else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 50) * 1000, 3),
            "p90": round(percentile(latencies, 90) * 1000, 3),
            "p95": round(percentile(latencies, 95) * 1000, 3),
            "p99": round(percentile(latencies, 99) * 1000, 3),
            "mean": round(sum(latencies) / len(latencies) * 1000, 3) if latencies else 0.0,
            "max": round(max(latencies) * 1000, 3) if latencies else 0.0,
        },
        "outcomes": {
            "completed": len(samples),
            "ok": sum(1 for s in samples if s.ok),
            "rejected": sum(1 for s in samples if s.rejected),
            "lint_rejected": sum(1 for s in samples if s.lint_rejected),
            "throttled_retries": throttled,
            "errors": len(errors),
            "error_samples": errors[:5],
            # 5xx/504 responses, with their trace ids: when the server ran
            # with --trace-dir, each id names a persisted trace file.
            "server_errors": sum(1 for s in samples if s.status >= 500),
            "error_trace_ids": sorted(
                {s.trace_id for s in samples if s.status >= 500 and s.trace_id}
            ),
        },
        "cache": {
            **cache_split,
            "hits": hits,
            "hit_rate": round(hits / len(samples), 4) if samples else 0.0,
        },
        "server": health,
    }
    node_split: Dict[str, int] = {}
    for sample in samples:
        if sample.node:
            node_split[sample.node] = node_split.get(sample.node, 0) + 1
    if node_split:
        # Present only behind the cluster router, which stamps every
        # proxied response with the serving node's name.
        report["nodes"] = dict(sorted(node_split.items()))
    if config.baseline:
        baseline = measure_cli_baseline(config.baseline)
        report["baseline"] = baseline
        rps = baseline.get("single_shot_rps")
        if rps:
            report["baseline"]["service_speedup"] = round(
                report["throughput_rps"] / rps, 2
            )

    if config.report_path:
        path = Path(config.report_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        report["report_path"] = str(path)
    return report


def summarise(report: Dict[str, Any]) -> str:
    """A short human-readable digest of a loadgen report."""
    latency = report["latency_ms"]
    outcomes = report["outcomes"]
    cache = report["cache"]
    lines = [
        f"loadgen: {outcomes['completed']} requests in "
        f"{report['duration_seconds']}s → {report['throughput_rps']} req/s "
        f"at concurrency {report['meta']['concurrency']}",
        f"  latency ms: p50={latency['p50']} p95={latency['p95']} "
        f"p99={latency['p99']} max={latency['max']}",
        f"  outcomes: ok={outcomes['ok']} rejected={outcomes['rejected']} "
        f"lint-rejected={outcomes.get('lint_rejected', 0)} "
        f"errors={outcomes['errors']} throttled-retries={outcomes['throttled_retries']}",
        f"  cache: memory={cache['memory']} disk={cache['disk']} "
        f"miss={cache['miss']} hit-rate={cache['hit_rate']}",
    ]
    nodes = report.get("nodes")
    if nodes:
        split = " ".join(f"{name}={count}" for name, count in nodes.items())
        lines.append(f"  nodes: {split}")
    baseline = report.get("baseline")
    if baseline and "single_shot_rps" in baseline:
        lines.append(
            f"  baseline: single-shot CLI {baseline['single_shot_rps']} req/s "
            f"→ service speedup ×{baseline.get('service_speedup', '?')}"
        )
    if report.get("report_path"):
        lines.append(f"  report: {report['report_path']}")
    return "\n".join(lines)
