"""Admission control: bounded queue, request limits, graceful drain.

Trust: **advisory** — admission decides *whether* work runs, never what
a verdict is; its worst failure rejects a good request (availability),
not accepts a bad one.

The server must stay responsive under overload instead of queueing
unboundedly.  This module owns the three policies:

* **backpressure** — at most ``max_pending`` requests may be admitted
  (queued + in flight); excess requests are rejected up front with
  HTTP 429 and a ``Retry-After`` hint, which the load generator and the
  stdlib client both honour;
* **request limits** — per-request caps on source size, batch width, and
  the semantic-oracle path budget, rejected with HTTP 413/400 before any
  work is scheduled;
* **graceful drain** — on SIGTERM/SIGINT the controller stops admitting
  (503 for newcomers), and :meth:`AdmissionController.wait_idle` lets the
  server wait for in-flight work to finish before flushing caches and
  exiting (143 / 130).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RequestLimits:
    """Static per-request caps checked before admission."""

    #: Largest accepted Viper source, in UTF-8 bytes.
    max_source_bytes: int = 256 * 1024
    #: Largest accepted HTTP body, in bytes (covers batch envelopes).
    max_body_bytes: int = 4 * 1024 * 1024
    #: Most programs per /v1/batch request.
    max_batch: int = 32
    #: Cap on the per-method state budget a client may request for the
    #: semantic oracle (path explosion guard).
    max_oracle_states: int = 64

    def check_source(self, source: str) -> Optional[str]:
        """None if acceptable, else a rejection message."""
        size = len(source.encode("utf-8"))
        if size > self.max_source_bytes:
            return (
                f"source is {size} bytes; the limit is "
                f"{self.max_source_bytes} (max-source-size)"
            )
        return None

    def check_batch(self, count: int) -> Optional[str]:
        if count > self.max_batch:
            return f"batch has {count} requests; the limit is {self.max_batch}"
        if count < 1:
            return "batch must contain at least one request"
        return None

    def clamp_oracle_states(self, requested: Optional[int]) -> int:
        """The oracle path budget actually granted for a request."""
        if requested is None or requested < 1:
            return 0
        return min(int(requested), self.max_oracle_states)


class AdmissionController:
    """Bounded admission with queue-depth accounting and drain support.

    Counts two populations: *pending* (admitted, includes queued and
    executing) and *in-flight* (currently executing in the worker pool).
    ``queue_depth`` is their difference — what ``/metrics`` exposes as
    the backlog gauge.
    """

    def __init__(self, max_pending: int = 64, retry_after: float = 1.0):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.retry_after = retry_after
        self._pending = 0
        self._in_flight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    # -- admission ---------------------------------------------------------

    def try_admit(self, weight: int = 1) -> bool:
        """Admit ``weight`` units of work, or refuse (caller sends 429)."""
        if self._draining:
            return False
        if self._pending + weight > self.max_pending:
            return False
        self._pending += weight
        self._idle.clear()
        return True

    def release(self, weight: int = 1) -> None:
        """A previously admitted unit finished (any outcome)."""
        self._pending = max(0, self._pending - weight)
        if self._pending == 0:
            self._idle.set()

    # -- execution accounting ---------------------------------------------

    def enter_flight(self) -> None:
        self._in_flight += 1

    def exit_flight(self) -> None:
        self._in_flight = max(0, self._in_flight - 1)

    # -- gauges ------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Admitted but not yet executing."""
        return max(0, self._pending - self._in_flight)

    # -- drain -------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting; outstanding work keeps running."""
        self._draining = True
        if self._pending == 0:
            self._idle.set()

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Wait until all admitted work has finished; False on timeout."""
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False
