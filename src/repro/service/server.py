"""The certification server: an asyncio HTTP/1.1 JSON front door.

Stdlib-only.  The event loop owns connection handling, admission, and
metrics; all pipeline work happens in the persistent
:class:`~repro.service.pool.WorkerPool` so the loop stays responsive
while translations certify across cores.

Endpoints::

    POST /v1/certify    {"source": "...", "options": {...}?,
                         "include_certificate": bool?, "include_boogie": bool?,
                         "oracle_states": int?}
    POST /v1/translate  {"source": "...", "options": {...}?}
    POST /v1/batch      {"requests": [<certify/translate bodies>...]}
    GET  /healthz       liveness + drain state + pool/cache stats
    GET  /metrics       Prometheus text format
    GET  /v1/perf       rolling per-stage timings + baseline drift ratios

Status codes: 200 verdicts (including kernel *rejections* — those are
application results, carried as ``ok: false``), 400 malformed requests,
404 unknown routes, 413 over the source/body limits, 422 pipeline
diagnostics (parse/type/translate errors), 429 + ``Retry-After`` under
backpressure, 503 while draining, 504 per-request deadline expiry.

HTTP support is deliberately minimal but honest: keep-alive with
pipelining-safe pushback, ``Content-Length`` bodies (no chunked
encoding), and cancellation of queued work when the client disconnects
mid-request.

Every ``/v1/certify`` and ``/v1/translate`` response carries a
``trace_id`` (echoed as an ``X-Trace-Id`` header).  With ``--trace-dir``
set the whole request additionally runs under a ``request`` span —
admission, pool dispatch, worker handling, and every pipeline stage and
method unit share that trace — and the :class:`RequestTraceStore`
persists the N slowest plus every errored request as Chrome-loadable
trace files (docs/OBSERVABILITY.md).  Tracing is **advisory**: span
bookkeeping happens around the verdict path, never inside it.

When a request arrives with a ``traceparent`` *HTTP header* (the cluster
router sends one), the server joins that trace instead of minting a new
one, and with ``X-Trace-Return: spans`` it additionally ships its
collected spans back in the response's ``trace`` field — the same
fold-and-strip contract the worker honours towards the server, one hop
up.  One trace then covers router → node → worker → every stage.

Trust: **untrusted** front door — nothing here is load-bearing for
soundness; verdicts come from the worker's fresh reparse+kernel run.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..trace import (
    RequestTraceStore,
    Span,
    SpanContext,
    TraceCollector,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
)
from .admission import AdmissionController, RequestLimits
from .httpcore import (
    MAX_HEADER_BYTES,
    BadRequest,
    Connection,
    Request,
    json_response,
    read_request,
    write_response,
)
from .metrics import ServiceMetrics
from .pool import PoolConfig, PoolTimeout, WorkerCrash, WorkerPool

#: Back-compat aliases — the HTTP plumbing moved to
#: :mod:`repro.service.httpcore` so the cluster router shares it.
_BadRequest = BadRequest
_Request = Request
_Connection = Connection


@dataclass
class ServerConfig:
    """Static configuration for one :class:`CertificationService`."""

    host: str = "127.0.0.1"
    port: int = 8421
    #: Worker processes (0 = one per CPU, 1 = single in-process thread).
    jobs: Optional[int] = 0
    #: Force the in-process thread pool (single worker semantics).
    use_threads: bool = False
    #: Admission bound on queued + in-flight requests.
    queue_limit: int = 64
    #: Per-request wall-clock deadline, seconds.
    request_timeout: float = 120.0
    #: Recycle worker processes after N dispatched jobs (0 disables).
    recycle_after: int = 500
    #: Disk cache root (None disables the persistent tier).
    cache_dir: Optional[str] = None
    cache_max_bytes: int = 64 * 1024 * 1024
    memory_cache_size: int = 256
    limits: RequestLimits = field(default_factory=RequestLimits)
    #: Grace period for in-flight work during shutdown, seconds.
    drain_grace: float = 10.0
    #: How long the listener stays open *after* drain begins, seconds,
    #: so health probes observe ``draining`` (503 + Retry-After) and a
    #: router can de-route this node before its socket closes.
    drain_notice: float = 0.5
    quiet: bool = True
    #: Directory for persisted request traces (None disables tracing).
    trace_dir: Optional[str] = None
    #: Keep the traces of the N slowest requests on disk.
    trace_sample: int = 10
    #: Additionally persist this fraction of all requests (0.0–1.0),
    #: chosen deterministically by trace-id hash.
    trace_rate: float = 0.0
    #: Salt for the deterministic hash-rate sampler.
    trace_seed: int = 0
    #: A bench history JSONL (``repro bench record`` output); enables the
    #: ``GET /v1/perf`` drift ratios against its per-stage medians and the
    #: ``repro_stage_seconds_baseline_ratio`` gauges.
    perf_baseline: Optional[str] = None
    #: Per-request stage timings kept in the rolling perf window.
    perf_window: int = 256


class CertificationService:
    """The long-running certification-as-a-service server."""

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        limits = self.config.limits
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(max_pending=self.config.queue_limit)
        self.pool = WorkerPool(
            PoolConfig(
                jobs=self.config.jobs,
                use_threads=self.config.use_threads,
                recycle_after=self.config.recycle_after or None,
                request_timeout=self.config.request_timeout,
                worker_config={
                    "cache_dir": self.config.cache_dir,
                    "cache_max_bytes": self.config.cache_max_bytes,
                    "memory_cache_size": self.config.memory_cache_size,
                    "max_source_bytes": limits.max_source_bytes,
                    "max_body_bytes": limits.max_body_bytes,
                    "max_batch": limits.max_batch,
                    "max_oracle_states": limits.max_oracle_states,
                },
            )
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._exit_code = 0
        self._started = time.time()
        self._cache_lookups = 0
        self._cache_hits = 0
        self.port: Optional[int] = None
        self.trace_store: Optional[RequestTraceStore] = None
        if self.config.trace_dir:
            self.trace_store = RequestTraceStore(
                self.config.trace_dir,
                capacity=self.config.trace_sample,
                rate=self.config.trace_rate,
                seed=self.config.trace_seed,
            )
        self.perf_window = self._make_perf_window()
        self._register_gauges()

    def _make_perf_window(self) -> "RollingStageWindow":
        """The rolling per-request stage window (advisory, always on).

        The baseline load is best-effort: a missing or corrupt history
        file logs and leaves the window baseline-less (ratios render as
        nan) instead of refusing to serve — perf drift reporting must
        never take certification down.
        """
        from ..perf import HistoryError, RollingStageWindow, load_baseline

        baseline: Dict[str, float] = {}
        info: Dict[str, Any] = {}
        if self.config.perf_baseline:
            try:
                baseline, fingerprint = load_baseline(self.config.perf_baseline)
                info = {
                    "path": self.config.perf_baseline,
                    "fingerprint": fingerprint,
                }
            except (OSError, HistoryError) as error:
                info = {"path": self.config.perf_baseline, "error": str(error)}
                if not self.config.quiet:
                    print(f"perf baseline unavailable: {error}")
        return RollingStageWindow(
            maxlen=self.config.perf_window,
            baseline=baseline,
            baseline_info=info,
        )

    # -- metrics wiring ----------------------------------------------------

    def _register_gauges(self) -> None:
        m = self.metrics
        m.register_gauge(
            "repro_queue_depth", lambda: self.admission.queue_depth,
            "Admitted requests waiting for a worker.",
        )
        m.register_gauge(
            "repro_in_flight", lambda: self.admission.in_flight,
            "Requests currently executing in the worker pool.",
        )
        m.register_gauge(
            "repro_pending", lambda: self.admission.pending,
            "Admitted requests (queued + in flight).",
        )
        m.register_gauge(
            "repro_cache_hit_rate", self._hit_rate,
            "Fraction of certify/translate lookups served by a cache tier.",
        )
        m.register_gauge(
            "repro_pool_workers", lambda: self.pool.workers,
            "Configured worker count.",
        )
        m.register_gauge(
            "repro_uptime_seconds", lambda: time.time() - self._started,
            "Seconds since the service started.",
        )
        m.register_gauge(
            "repro_draining", lambda: 1.0 if self.admission.draining else 0.0,
            "1 while the service is draining for shutdown.",
        )
        for stage in sorted(self.perf_window.baseline):
            m.register_gauge(
                "repro_stage_seconds_baseline_ratio",
                (lambda s=stage: self.perf_window.ratio(s)),
                "Rolling median stage seconds over the recorded baseline "
                "median (nan = no window data yet).",
                labels={"stage": stage},
            )

    def _hit_rate(self) -> float:
        if not self._cache_lookups:
            return 0.0
        return self._cache_hits / self._cache_lookups

    def _note_result(self, endpoint: str, response: Dict[str, Any]) -> None:
        tier = response.get("cache", "miss")
        self._cache_lookups += 1
        if tier != "miss":
            self._cache_hits += 1
        self.metrics.inc(
            "repro_cache_requests_total", labels={"tier": tier},
            help="Cache tier outcomes per request (memory/disk/miss).",
        )
        self.metrics.record_stage_seconds(response.get("stage_seconds", {}))
        self.perf_window.observe(response.get("stage_seconds", {}))
        self.metrics.record_worker_counters(response.get("counters", {}))
        unit_cache = response.get("unit_cache")
        if unit_cache:
            # Method-level hit accounting: one count per unit, labelled by
            # the tier that served it ("fresh" = rebuilt).
            for unit_tier, count in unit_cache.get("tiers", {}).items():
                self.metrics.inc(
                    "repro_unit_cache_hits_total",
                    amount=float(count),
                    labels={"tier": unit_tier},
                    help="Method units served per cache tier (fresh = rebuilt).",
                )
            self.metrics.inc(
                "repro_units_rebuilt_total",
                amount=float(unit_cache.get("rebuilt", 0)),
                help="Method units whose untrusted stages were re-run.",
            )
        verdict = "ok" if response.get("ok") else (
            "rejected" if response.get("rejected") else "error"
        )
        self.metrics.inc(
            "repro_verdicts_total", labels={"endpoint": endpoint, "verdict": verdict},
            help="Application verdicts per endpoint.",
        )
        if response.get("error_stage") == "analyze":
            # The admission fast path turned the request away before any
            # untrusted stage ran.
            self.metrics.inc(
                "repro_lint_rejections_total",
                help="Requests rejected at admission by the static analyzer.",
            )
            for finding in response.get("findings", ()):
                code = finding.get("code")
                if code:
                    self.metrics.inc(
                        "repro_lint_findings_total", labels={"code": code},
                        help="Findings on lint-rejected requests, by check ID.",
                    )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Bind, start the pool, and return the actual listening port."""
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(f"repro.service listening on http://{self.config.host}:{self.port} "
                  f"(pool={self.pool.mode}×{self.pool.workers}, "
                  f"cache={self.config.cache_dir or 'memory-only'})")
        return self.port

    def request_shutdown(self, exit_code: int = 0) -> None:
        """Initiate a graceful drain (signal handlers call this)."""
        self._exit_code = exit_code
        self._shutdown.set()

    async def serve_until_shutdown(self) -> int:
        """Block until shutdown is requested, then drain and clean up."""
        await self._shutdown.wait()
        self._log("repro.service draining…")
        self.admission.begin_drain()
        if self.config.drain_notice > 0 and self._server is not None:
            # Advertise the drain before closing the socket: health
            # probes landing in this window see 503 + Retry-After, so a
            # router stops sending new work instead of eating resets.
            await asyncio.sleep(self.config.drain_notice)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.admission.wait_idle(self.config.drain_grace)
        if not drained:
            self._log(f"drain grace ({self.config.drain_grace}s) expired with "
                      f"{self.admission.pending} request(s) outstanding")
        self.pool.shutdown(wait=False)
        self._log(f"repro.service stopped (exit {self._exit_code})")
        return self._exit_code

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(message, flush=True)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader)
        try:
            while True:
                try:
                    request = await self._read_request(conn)
                except _BadRequest as error:
                    await self._write_json(
                        writer, error.status, {"ok": False, "error": str(error)},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch_watching_disconnect(request, conn)
                if response is None:  # client went away mid-request
                    break
                status, payload, content_type, headers = response
                keep_alive = request.keep_alive and not self.admission.draining
                try:
                    await self._write_response(
                        writer, status, payload, content_type, headers, keep_alive
                    )
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, conn: _Connection) -> Optional[_Request]:
        return await read_request(
            conn, self.config.limits.max_body_bytes, MAX_HEADER_BYTES
        )

    async def _dispatch_watching_disconnect(
        self, request: _Request, conn: _Connection
    ) -> Optional[Tuple[int, bytes, str, Dict[str, str]]]:
        """Dispatch, cancelling the work if the client disconnects.

        While the handler runs we watch the socket for one byte: EOF means
        the client hung up (cancel + stop); actual data is the start of a
        pipelined request and is pushed back for the next read.
        """
        job = asyncio.ensure_future(self._dispatch(request))
        watch = asyncio.ensure_future(conn.reader.read(1))
        await asyncio.wait({job, watch}, return_when=asyncio.FIRST_COMPLETED)

        if (
            watch.done()
            and not watch.cancelled()
            and not job.done()
            and watch.result() == b""
        ):
            # EOF before the response: the client went away — cancel the
            # queued/awaited pool work instead of finishing it for nobody.
            job.cancel()
            try:
                await job
            except asyncio.CancelledError:
                pass
            except Exception:  # pragma: no cover - cancelled mid-raise
                pass
            self.metrics.inc(
                "repro_disconnects_total",
                help="Requests abandoned by the client before completion.",
            )
            return None

        # Settle the watcher *before* the next socket read (two readers on
        # one StreamReader is a RuntimeError) and keep any pipelined byte.
        if not watch.done():
            watch.cancel()
        try:
            data = await watch
        except (asyncio.CancelledError, ConnectionError, OSError):
            data = b""
        if data:
            conn.push_back(data)
        return await job

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: _Request) -> Tuple[int, bytes, str, Dict[str, str]]:
        started = time.perf_counter()
        route = (request.method, request.path)
        try:
            if route == ("GET", "/healthz"):
                result = self._handle_healthz()
            elif route == ("GET", "/metrics"):
                if "application/openmetrics-text" in request.headers.get("accept", ""):
                    # OpenMetrics negotiation: only this variant carries
                    # ` # {trace_id="..."} value` exemplars on histogram
                    # buckets; the default 0.0.4 text stays exemplar-free.
                    result = (
                        200,
                        self.metrics.render(exemplars=True).encode("utf-8"),
                        "application/openmetrics-text; version=1.0.0; charset=utf-8",
                        {},
                    )
                else:
                    result = (200, self.metrics.render().encode("utf-8"),
                              "text/plain; version=0.0.4; charset=utf-8", {})
            elif route == ("POST", "/v1/certify"):
                result = await self._handle_single(request, "certify")
            elif route == ("POST", "/v1/translate"):
                result = await self._handle_single(request, "translate")
            elif route == ("GET", "/v1/perf"):
                result = self._json(200, self.perf_window.snapshot())
            elif route == ("POST", "/v1/batch"):
                result = await self._handle_batch(request)
            elif request.path in ("/healthz", "/metrics", "/v1/certify",
                                  "/v1/translate", "/v1/batch", "/v1/perf"):
                result = self._json(405, {"ok": False, "error": "method not allowed"})
            else:
                result = self._json(404, {"ok": False, "error": f"no route {request.path}"})
        except PoolTimeout as error:
            result = self._json(504, {"ok": False, "error": str(error)})
        except asyncio.CancelledError:
            raise
        except Exception as error:  # pragma: no cover - last-resort containment
            result = self._json(500, {"ok": False, "error": f"internal error: {error}"})
        status = result[0]
        elapsed = time.perf_counter() - started
        self.metrics.inc(
            "repro_requests_total",
            labels={"endpoint": request.path, "status": str(status)},
            help="HTTP requests by endpoint and status.",
        )
        self.metrics.observe(
            "repro_request_seconds", elapsed, labels={"endpoint": request.path},
            help="End-to-end request latency in seconds.",
            exemplar=result[3].get("X-Trace-Id"),
        )
        return result

    def _json(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        return json_response(status, payload, headers)

    def _parse_body(self, request: _Request) -> Dict[str, Any]:
        if not request.body:
            raise _BadRequest("request body must be a JSON object")
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    def _backpressure(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        if self.admission.draining:
            self.metrics.inc("repro_rejected_total", labels={"reason": "draining"},
                             help="Requests refused at admission.")
            return self._json(503, {"ok": False, "error": "service is draining"},
                              {"Retry-After": "1"})
        self.metrics.inc("repro_rejected_total", labels={"reason": "backpressure"},
                         help="Requests refused at admission.")
        retry_after = max(1, int(self.admission.retry_after))
        return self._json(
            429,
            {"ok": False,
             "error": f"queue full ({self.admission.pending}/{self.admission.max_pending})",
             "retry_after": retry_after},
            {"Retry-After": str(retry_after)},
        )

    async def _handle_single(
        self, request: _Request, action: str
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        try:
            payload = self._parse_body(request)
        except _BadRequest as error:
            return self._json(error.status, {"ok": False, "error": str(error)})
        payload["action"] = action
        # Every single-document request gets a trace id (response field +
        # X-Trace-Id header).  A router hop can hand us its context via a
        # traceparent *header*; we join that trace instead of minting one,
        # and with X-Trace-Return: spans we ship our spans back in the
        # response for the caller to fold — the same contract the worker
        # honours towards this server, one hop up.
        incoming: Optional[SpanContext] = parse_traceparent(
            request.headers.get("traceparent")
        )
        return_spans = (
            request.headers.get("x-trace-return", "").strip().lower() == "spans"
        )
        trace_id = incoming.trace_id if incoming is not None else new_trace_id()
        collector: Optional[TraceCollector] = None
        root: Optional[Span] = None
        pool_span: Optional[Span] = None
        if self.trace_store is not None or (return_spans and incoming is not None):
            collector = TraceCollector()
            root = Span.start(
                "request", parent=incoming, trace_id=trace_id,
                attributes={"endpoint": request.path, "action": action},
            )
            admit_span = Span.start("admission", parent=root.context())
        admitted = self.admission.try_admit()
        if root is not None:
            admit_span.end()
            collector.add(admit_span)
        if not admitted:
            result = self._backpressure()
            if root is not None:
                self._finish_trace(root, collector, int(result[0]), {})
            return result
        try:
            if root is not None:
                pool_span = Span.start("pool.submit", parent=root.context())
                payload["traceparent"] = format_traceparent(pool_span.context())
            response = await self._execute(payload)
        finally:
            self.admission.release()
        if root is not None:
            pool_span.end()
            if int(response.get("status", 200)) == 504:
                pool_span.set_error("pool deadline expired")
            collector.add(pool_span)
            # Worker-side spans (worker.handle, stage.*, unit.*) travel
            # back inside the response; fold them into this trace.
            for item in response.pop("trace", None) or ():
                collector.add(Span.from_dict(item))
        self._note_result(request.path, response)
        response["trace_id"] = trace_id
        status = int(response.pop("status", 200))
        if root is not None:
            self._finish_trace(root, collector, status, response)
            if return_spans:
                response["trace"] = [span.to_dict() for span in collector.spans]
        return self._json(status, response, {"X-Trace-Id": trace_id})

    def _finish_trace(
        self,
        root: Span,
        collector: TraceCollector,
        status: int,
        response: Dict[str, Any],
    ) -> None:
        """Close the root span and offer the trace to the persistence store."""
        root.attributes["status"] = status
        if status >= 500:
            root.set_error(
                str(response.get("error", ""))[:200] or f"HTTP {status}"
            )
        root.end()
        collector.add(root)
        if self.trace_store is None:
            # Traced only for a span-returning caller; nothing persists here.
            return
        for reason in self.trace_store.offer(root, collector.spans):
            self.metrics.inc(
                "repro_traces_persisted_total", labels={"reason": reason},
                help="Request traces persisted to --trace-dir, by keep reason.",
            )

    async def _handle_batch(
        self, request: _Request
    ) -> Tuple[int, bytes, str, Dict[str, str]]:
        try:
            payload = self._parse_body(request)
        except _BadRequest as error:
            return self._json(error.status, {"ok": False, "error": str(error)})
        items = payload.get("requests")
        if not isinstance(items, list):
            return self._json(400, {"ok": False, "error": "'requests' must be a list"})
        limit_error = self.config.limits.check_batch(len(items))
        if limit_error:
            return self._json(413, {"ok": False, "error": limit_error})
        if not self.admission.try_admit(weight=len(items)):
            return self._backpressure()
        try:
            jobs = []
            for item in items:
                job = dict(item) if isinstance(item, dict) else {}
                job.setdefault("action", "certify")
                jobs.append(self._execute(job))
            responses = await asyncio.gather(*jobs)
        finally:
            self.admission.release(weight=len(items))
        for response in responses:
            self._note_result("/v1/batch", response)
            response.pop("status", None)
        return self._json(
            200,
            {"ok": all(r.get("ok") for r in responses),
             "count": len(responses), "results": responses},
        )

    async def _execute(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.admission.enter_flight()
        try:
            return await self.pool.submit(payload)
        except PoolTimeout as error:
            return {"ok": False, "action": payload.get("action", "?"),
                    "cache": "miss", "status": 504, "error": str(error),
                    "error_stage": None, "stage_seconds": {}, "counters": {},
                    "artifacts": {}}
        except WorkerCrash as error:
            # A worker died mid-job.  The pool already recycled itself;
            # this request fails cleanly (5xx) and the next one succeeds.
            self.metrics.inc(
                "repro_worker_crashes_total",
                help="Pool workers that died mid-job (pool recycled).",
            )
            return {"ok": False, "action": payload.get("action", "?"),
                    "cache": "miss", "status": 500, "error": str(error),
                    "error_stage": None, "stage_seconds": {}, "counters": {},
                    "artifacts": {}}
        finally:
            self.admission.exit_flight()

    def _handle_healthz(self) -> Tuple[int, bytes, str, Dict[str, str]]:
        draining = self.admission.draining
        payload = {
            "status": "draining" if draining else "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
            "pool": {"mode": self.pool.mode, "workers": self.pool.workers,
                     **self.pool.stats.to_dict()},
            "admission": {
                "pending": self.admission.pending,
                "in_flight": self.admission.in_flight,
                "queue_depth": self.admission.queue_depth,
                "limit": self.admission.max_pending,
            },
            "cache": {
                "lookups": self._cache_lookups,
                "hits": self._cache_hits,
                "hit_rate": round(self._hit_rate(), 4),
                "disk_dir": self.config.cache_dir,
            },
        }
        if draining:
            # Retry-After tells pollers (and the cluster router) when to
            # look again; the router de-routes on sight of "draining".
            return self._json(503, payload, {"Retry-After": "1"})
        return self._json(200, payload)

    # -- response writing --------------------------------------------------

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        await write_response(writer, status, body, content_type, headers, keep_alive)

    async def _write_json(
        self, writer: asyncio.StreamWriter, status: int,
        payload: Dict[str, Any], keep_alive: bool,
    ) -> None:
        _status, body, content_type, headers = self._json(status, payload)
        await self._write_response(writer, status, body, content_type, headers, keep_alive)


# ---------------------------------------------------------------------------
# Entry points: blocking CLI server and the background test/library server.
# ---------------------------------------------------------------------------


async def _amain(config: ServerConfig) -> int:
    service = CertificationService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    installed = []
    for signum, exit_code in ((signal.SIGINT, 130), (signal.SIGTERM, 143)):
        try:
            loop.add_signal_handler(signum, service.request_shutdown, exit_code)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            pass
    try:
        return await service.serve_until_shutdown()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def run_server(config: Optional[ServerConfig] = None) -> int:
    """Run the server until SIGINT (exit 130) or SIGTERM (exit 143).

    The shutdown path drains in-flight work within ``drain_grace``
    seconds; disk-cache entries are written through synchronously during
    operation, so nothing is lost on exit.
    """
    return asyncio.run(_amain(config or ServerConfig(quiet=False)))


class BackgroundServer:
    """Run a :class:`CertificationService` on a background thread.

    For tests and embedding::

        with BackgroundServer(ServerConfig(port=0, use_threads=True)) as server:
            client = ServiceClient(port=server.port)
            ...
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig(port=0)
        self.service: Optional[CertificationService] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("background server did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("background server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        async def body() -> int:
            self.service = CertificationService(self.config)
            self._loop = asyncio.get_running_loop()
            try:
                self.port = await self.service.start()
            except BaseException as error:
                self._startup_error = error
                self._ready.set()
                raise
            self._ready.set()
            return await self.service.serve_until_shutdown()

        try:
            asyncio.run(body())
        except BaseException:
            self._ready.set()

    def stop(self) -> None:
        if self._loop is not None and self.service is not None:
            try:
                self._loop.call_soon_threadsafe(self.service.request_shutdown, 0)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
