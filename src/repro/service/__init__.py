"""repro.service — certification-as-a-service.

Trust: **untrusted-but-checked** — the serving layer changes performance,
never the trust argument: only untrusted artifact text is cached, and
the trusted reparse+check path runs fresh per request
(docs/SERVICE.md § Trust, docs/TRUSTED_BASE.md).

A long-running, stdlib-only HTTP server that amortises process startup
and keeps warm state across requests, turning the paper's per-run
validation pipeline into a serving system:

* :mod:`~repro.service.server` — an asyncio HTTP/1.1 JSON server
  (``POST /v1/certify``, ``POST /v1/translate``, ``POST /v1/batch``,
  ``GET /healthz``, ``GET /metrics``),
* :mod:`~repro.service.pool` — a persistent worker-process pool built on
  the :mod:`repro.pipeline.executor` worker discipline (module-level
  picklable workers, serial fallback) with per-request timeouts and
  worker recycling,
* :mod:`~repro.service.diskcache` — a disk-backed tier under the
  in-memory :class:`~repro.pipeline.cache.ArtifactCache`: content-
  addressed files keyed by ``(source digest, options digest)``, atomic
  write-rename, corruption-tolerant load, an LRU size bound — warm state
  survives restarts,
* :mod:`~repro.service.admission` — bounded request queue with
  backpressure (429 + ``Retry-After``), request limits, graceful drain,
* :mod:`~repro.service.metrics` — Prometheus text-format counters,
  gauges, and per-stage latency histograms fed from
  :class:`~repro.pipeline.instrumentation.PipelineInstrumentation`,
* :mod:`~repro.service.client` / :mod:`~repro.service.loadgen` — a
  stdlib client and the ``repro loadgen`` corpus replayer.

Trust argument (see ``docs/SERVICE.md`` and ``docs/TRUSTED_BASE.md``):
the disk cache stores **only untrusted artifacts** (the Boogie text and
the certificate text).  The trusted path — certificate re-parse plus the
independent kernel check — executes fresh on *every* request, cached or
not, so a corrupted or poisoned cache can at worst cause spurious
rejections, never a false acceptance.
"""

from .admission import AdmissionController, RequestLimits  # noqa: F401
from .client import ServiceClient, ServiceError  # noqa: F401
from .diskcache import DiskCache, DiskCacheStats, options_digest  # noqa: F401
from .metrics import Histogram, ServiceMetrics  # noqa: F401
from .pool import PoolConfig, WorkerPool  # noqa: F401
from .server import (  # noqa: F401
    BackgroundServer,
    CertificationService,
    ServerConfig,
    run_server,
)
