"""A stdlib client for the certification service.

Trust: **advisory** — client-side tooling; it relays the server's
verdicts and cannot influence them.

Built on :mod:`http.client` with a persistent keep-alive connection per
client instance; thread-*unsafe* by design (the load generator gives each
worker thread its own client, mirroring how a connection pool would be
used in production).
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional


class ServiceError(Exception):
    """A transport- or protocol-level client failure."""

    def __init__(self, message: str, status: Optional[int] = None,
                 retry_after: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class ServiceThrottled(ServiceError):
    """The server returned 429/503 with a Retry-After hint."""


class ServiceClient:
    """Keep-alive JSON client for one server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- connection management --------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- low-level request -------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        retried = False
        while True:
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError) as error:
                self.close()
                # A request on a *reused* keep-alive connection can land
                # exactly as the server times out the idle socket —
                # BadStatusLine('') or ECONNRESET.  That says nothing
                # about server health, so reconnect and retry once.  A
                # failure on a fresh connection surfaces immediately:
                # retrying it would only double the connect timeout.
                if reused and not retried:
                    retried = True
                    continue
                raise ServiceError(f"request failed: {error}") from error
        status = response.status
        retry_after: Optional[float] = None
        header = response.getheader("Retry-After")
        if header:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        if status in (429, 503):
            raise ServiceThrottled(
                f"HTTP {status}: {raw[:200].decode('utf-8', 'replace')}",
                status=status, retry_after=retry_after or 1.0,
            )
        content_type = response.getheader("Content-Type", "")
        if "json" in content_type:
            try:
                decoded: Dict[str, Any] = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ServiceError(f"bad JSON from server: {error}", status=status)
            decoded["_status"] = status
            return decoded
        return {"_status": status, "_text": raw.decode("utf-8", "replace")}

    # -- endpoints ---------------------------------------------------------

    def certify(self, source: str, options: Optional[Dict[str, bool]] = None,
                **extra: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"source": source}
        if options:
            payload["options"] = options
        payload.update(extra)
        return self._request("POST", "/v1/certify", payload)

    def translate(self, source: str,
                  options: Optional[Dict[str, bool]] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"source": source}
        if options:
            payload["options"] = options
        return self._request("POST", "/v1/translate", payload)

    def batch(self, requests: List[Dict[str, Any]]) -> Dict[str, Any]:
        return self._request("POST", "/v1/batch", {"requests": requests})

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        result = self._request("GET", "/metrics")
        return result.get("_text", "")

    # -- convenience -------------------------------------------------------

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> bool:
        """Poll ``/healthz`` until the server answers (or the timeout)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            try:
                health = self.healthz()
                if health.get("status") in ("ok", "draining"):
                    return True
            except ServiceError:
                time.sleep(interval)
        return False
