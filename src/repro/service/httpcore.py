"""Minimal shared HTTP/1.1 plumbing for the service and the cluster router.

Trust: **untrusted** transport — byte shuffling only; nothing here is
load-bearing for soundness.

Both :mod:`repro.service.server` (a certification node) and
:mod:`repro.cluster.router` (the sharding front door) speak the same
deliberately small HTTP dialect: ``Content-Length`` bodies, keep-alive
with pushback-capable buffered reads, no chunked encoding.  This module
is the single implementation both sides build on, so the node and the
router can never disagree about framing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

MAX_HEADER_BYTES = 16 * 1024

STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: (status, body bytes, content type, extra headers) — the tuple every
#: request handler returns.
Response = Tuple[int, bytes, str, Dict[str, str]]


class BadRequest(Exception):
    """A malformed or over-limit request (carries the HTTP status)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


class Connection:
    """A buffered reader with pushback (for disconnect-watch pipelining)."""

    def __init__(self, reader: asyncio.StreamReader):
        self.reader = reader
        self.buffer = b""

    def push_back(self, data: bytes) -> None:
        self.buffer = data + self.buffer

    async def _fill(self) -> bool:
        chunk = await self.reader.read(65536)
        if not chunk:
            return False
        self.buffer += chunk
        return True

    async def read_until(self, marker: bytes, limit: int) -> Optional[bytes]:
        """Bytes through ``marker``; None on immediate EOF; raises on limit."""
        while marker not in self.buffer:
            if len(self.buffer) > limit:
                raise BadRequest("headers too large", status=413)
            if not await self._fill():
                if not self.buffer:
                    return None
                raise BadRequest("connection closed mid-request")
        index = self.buffer.index(marker) + len(marker)
        head, self.buffer = self.buffer[:index], self.buffer[index:]
        return head

    async def read_exact(self, count: int) -> bytes:
        while len(self.buffer) < count:
            if not await self._fill():
                raise BadRequest("connection closed mid-body")
        body, self.buffer = self.buffer[:count], self.buffer[count:]
        return body


async def read_request(
    conn: Connection, max_body_bytes: int, max_header_bytes: int = MAX_HEADER_BYTES
) -> Optional[Request]:
    """Read one request off the connection (None on clean EOF)."""
    head = await conn.read_until(b"\r\n\r\n", max_header_bytes)
    if head is None:
        return None
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise BadRequest("malformed request line") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise BadRequest(f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > max_body_bytes:
        raise BadRequest(
            f"body of {length} bytes exceeds the {max_body_bytes}-byte limit",
            status=413,
        )
    body = await conn.read_exact(length) if length else b""
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def json_response(
    status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
) -> Response:
    body = json.dumps(payload, sort_keys=False).encode("utf-8")
    return status, body, "application/json; charset=utf-8", dict(headers or {})


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str,
    headers: Dict[str, str],
    keep_alive: bool,
) -> None:
    reason = STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()
